//! The store server: serves category listings, app metadata, APKs, OBBs
//! and bundles over TCP.
//!
//! APKs are assembled on demand; unique-model artifacts are memoised so
//! duplicated models across apps are byte-identical (which is precisely
//! what makes the §4.5 checksum analysis work) without re-encoding.

use crate::chaos::{FaultAction, FaultPlan};
use crate::corpus::{AppSpec, StoreCorpus};
use crate::net::{Endpoint, SimNet};
use crate::proto::{
    read_request, write_response, Request, Response, CONNECTION_ID_HEADER, CRC_HEADER,
    FULL_CRC_HEADER, RANGE_START_HEADER,
};
use crate::reactor::{ReactorMode, Served};
use crate::route::Route;
use crate::{categories::CATEGORIES, Result};
use gaugenn_apk::crc32::crc32;
use gaugenn_apk::bundle::{AssetPack, BundleBuilder, Delivery};
use gaugenn_apk::obb::{build_obb, ObbKind};
use gaugenn_index::{wire, CorpusIndex};
use gaugenn_modelfmt::ModelArtifact;
use mio::{Parker, SimReactor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum apps returned per category listing — the store's hard page
/// ceiling ("the list of the top free apps per category … returns a
/// maximum of 500 apps", §3.1).
pub const MAX_PER_CATEGORY: usize = 500;

/// Optional server attachments, beyond the corpus itself.
#[derive(Default)]
pub struct ServerOptions {
    /// Chaos [`FaultPlan`] consulted on every request.
    pub chaos: Option<FaultPlan>,
    /// Corpus index answering the `/query/*` route family. Shared
    /// immutably across connection threads — queries are read-only, so
    /// no locking is needed and responses cannot depend on request
    /// interleaving (the determinism contract).
    pub index: Option<Arc<CorpusIndex>>,
    /// Serving loop override. `None` resolves via `GAUGENN_REACTOR`, then
    /// the platform default (epoll on Linux, threaded elsewhere).
    pub reactor: Option<ReactorMode>,
    /// Seed for the sim reactor's delivery-order rotation (and thus its
    /// event digest). Ignored by the other modes.
    pub reactor_seed: u64,
}

struct Shared {
    corpus: StoreCorpus,
    artifact_cache: Mutex<HashMap<usize, Arc<ModelArtifact>>>,
    requests_served: Mutex<u64>,
    chaos: Option<FaultPlan>,
    index: Option<Arc<CorpusIndex>>,
}

impl Shared {
    fn artifact(&self, id: usize) -> Arc<ModelArtifact> {
        if let Some(a) = self.artifact_cache.lock().get(&id) {
            return a.clone();
        }
        // Build outside the lock: artifact generation is deterministic, so
        // a rare double-build is harmless.
        let built = Arc::new(self.corpus.pool[id].artifact(&self.corpus.pool));
        self.artifact_cache
            .lock()
            .entry(id)
            .or_insert(built)
            .clone()
    }
}

/// A running store server. Dropping it stops the serving loop.
pub struct StoreServer {
    addr: SocketAddr,
    endpoint: Endpoint,
    mode: ReactorMode,
    stop: Arc<AtomicBool>,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    /// Sim mode: wakes the loop out of its park on stop.
    parker: Option<Arc<Parker>>,
    /// Sim mode: the reactor's running event-stream digest.
    digest: Option<Arc<AtomicU64>>,
}

/// Widen the kernel accept backlog past std's default (128). Benches
/// open hundreds of connections in one burst; a SYN dropped by a full
/// backlog retransmits after a second — longer than the crawler's 2 s
/// connect timeout. The raw `listen(2)` re-call lives in the vendored
/// reactor shim (this crate forbids `unsafe`); errors are harmless and
/// ignored.
#[cfg(unix)]
fn widen_backlog(listener: &TcpListener) {
    use std::os::fd::AsRawFd;
    mio::widen_backlog(listener.as_raw_fd(), 4096);
}

#[cfg(not(unix))]
fn widen_backlog(_listener: &TcpListener) {}

impl StoreServer {
    /// Start serving `corpus` on an ephemeral loopback port.
    pub fn start(corpus: StoreCorpus) -> Result<StoreServer> {
        Self::start_with(corpus, ServerOptions::default())
    }

    /// Start serving `corpus` with a chaos [`FaultPlan`] consulted on
    /// every request (resets, truncations, stalls, transient statuses,
    /// payload corruption — see [`crate::chaos`]).
    pub fn start_with_chaos(corpus: StoreCorpus, plan: FaultPlan) -> Result<StoreServer> {
        Self::start_with(
            corpus,
            ServerOptions {
                chaos: Some(plan),
                ..ServerOptions::default()
            },
        )
    }

    /// Start serving `corpus` with full [`ServerOptions`] (chaos plan,
    /// corpus index for the `/query/*` routes, reactor selection).
    pub fn start_with(corpus: StoreCorpus, options: ServerOptions) -> Result<StoreServer> {
        let mode = ReactorMode::resolve(options.reactor);
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            corpus,
            artifact_cache: Mutex::new(HashMap::new()),
            requests_served: Mutex::new(0),
            chaos: options.chaos,
            index: options.index,
        });
        match mode {
            ReactorMode::Sim => Ok(Self::start_sim(shared, stop, options.reactor_seed)),
            ReactorMode::Epoll => Self::start_epoll(shared, stop),
            ReactorMode::Threaded => Self::start_threaded(shared, stop),
        }
    }

    fn start_sim(shared: Arc<Shared>, stop: Arc<AtomicBool>, seed: u64) -> StoreServer {
        let parker = Parker::new();
        let net = SimNet::new(Arc::clone(&parker));
        let reactor = SimReactor::with_parker(seed, Arc::clone(&parker));
        let digest = reactor.digest_handle();
        let t_shared = Arc::clone(&shared);
        let t_stop = Arc::clone(&stop);
        let t_net = net.clone();
        let accept_thread = std::thread::spawn(move || {
            crate::reactor::run_sim_loop(t_net, t_stop, reactor, move |req| {
                serve_request(&t_shared, req)
            });
        });
        StoreServer {
            // Sim servers have no socket; the endpoint is the only way in.
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            endpoint: Endpoint::Sim(net),
            mode: ReactorMode::Sim,
            stop,
            shared,
            accept_thread: Some(accept_thread),
            parker: Some(parker),
            digest: Some(digest),
        }
    }

    #[cfg(target_os = "linux")]
    fn start_epoll(shared: Arc<Shared>, stop: Arc<AtomicBool>) -> Result<StoreServer> {
        // Probe epoll availability up front so a sandboxed kernel falls
        // back to the threaded loop instead of dying on the loop thread.
        if mio::EpollReactor::new().is_err() {
            return Self::start_threaded(shared, stop);
        }
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        widen_backlog(&listener);
        let addr = listener.local_addr()?;
        let t_shared = Arc::clone(&shared);
        let t_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            let _ = crate::reactor::run_epoll_loop(listener, t_stop, move |req| {
                serve_request(&t_shared, req)
            });
        });
        Ok(StoreServer {
            addr,
            endpoint: Endpoint::Tcp(addr),
            mode: ReactorMode::Epoll,
            stop,
            shared,
            accept_thread: Some(accept_thread),
            parker: None,
            digest: None,
        })
    }

    #[cfg(not(target_os = "linux"))]
    fn start_epoll(shared: Arc<Shared>, stop: Arc<AtomicBool>) -> Result<StoreServer> {
        Self::start_threaded(shared, stop)
    }

    fn start_threaded(shared: Arc<Shared>, stop: Arc<AtomicBool>) -> Result<StoreServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        widen_backlog(&listener);
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let t_stop = stop.clone();
        let t_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || {
            while !t_stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let conn_shared = t_shared.clone();
                        let conn_stop = t_stop.clone();
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &conn_shared, &conn_stop);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(StoreServer {
            addr,
            endpoint: Endpoint::Tcp(addr),
            mode: ReactorMode::Threaded,
            stop,
            shared,
            accept_thread: Some(accept_thread),
            parker: None,
            digest: None,
        })
    }

    /// Address to point the crawler at. Only meaningful for TCP-backed
    /// modes (threaded/epoll); sim servers are reachable via
    /// [`StoreServer::endpoint`] alone.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The endpoint clients should dial — works across every reactor
    /// mode, unlike [`StoreServer::addr`].
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// The serving loop this server actually runs (after fallbacks).
    pub fn mode(&self) -> ReactorMode {
        self.mode
    }

    /// Sim mode only: the reactor's running FNV digest over the delivered
    /// event stream — the replay-determinism witness.
    pub fn reactor_digest(&self) -> Option<u64> {
        self.digest.as_ref().map(|d| d.load(Ordering::SeqCst))
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        *self.shared.requests_served.lock()
    }

    /// The chaos plan, when the server was started with one.
    pub fn chaos(&self) -> Option<&FaultPlan> {
        self.shared.chaos.as_ref()
    }

    /// Stop accepting and join the serving loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(p) = &self.parker {
            p.notify();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The boxed per-request decision hook a [`LockstepServer`] steps with.
type LockstepServe = Box<dyn FnMut(&Request) -> Served>;

/// A sim store server the *caller* steps — no serving thread, no wall
/// clock. Built for lockstep runs against the non-blocking client
/// lanes ([`crate::reactor_client::drive_lanes`] takes `&mut || s.step()`
/// as its `server_step`): client and server alternate inside one thread,
/// so the complete multi-connection schedule — accept order, event
/// delivery, stall-timer expiry — is a pure function of the two reactor
/// seeds and replays bit-for-bit, digests included.
pub struct LockstepServer {
    endpoint: Endpoint,
    sloop: crate::reactor::SimServerLoop<LockstepServe>,
    shared: Arc<Shared>,
    digest: Arc<AtomicU64>,
}

impl LockstepServer {
    /// Build a steppable sim server over `corpus`. `options.reactor` is
    /// ignored (a lockstep server is sim by construction);
    /// `options.reactor_seed`, chaos plan and index apply as usual.
    pub fn start(corpus: StoreCorpus, options: ServerOptions) -> LockstepServer {
        let shared = Arc::new(Shared {
            corpus,
            artifact_cache: Mutex::new(HashMap::new()),
            requests_served: Mutex::new(0),
            chaos: options.chaos,
            index: options.index,
        });
        let parker = Parker::new();
        let net = SimNet::new(Arc::clone(&parker));
        let reactor = SimReactor::with_parker(options.reactor_seed, parker);
        let digest = reactor.digest_handle();
        let t_shared = Arc::clone(&shared);
        let serve: Box<dyn FnMut(&Request) -> Served> =
            Box::new(move |req| serve_request(&t_shared, req));
        let sloop = crate::reactor::SimServerLoop::new(net.clone(), reactor, serve);
        LockstepServer {
            endpoint: Endpoint::Sim(net),
            sloop,
            shared,
            digest,
        }
    }

    /// The endpoint clients dial (sim only).
    pub fn endpoint(&self) -> Endpoint {
        self.endpoint.clone()
    }

    /// Run one poll/dispatch round with a zero timeout. Returns the
    /// number of events and timer fires handled — `0` means the server
    /// is drained and waiting on its clients.
    pub fn step(&mut self) -> usize {
        self.sloop.step(Some(Duration::ZERO))
    }

    /// The reactor's running FNV digest over the delivered event stream.
    pub fn reactor_digest(&self) -> u64 {
        self.digest.load(Ordering::SeqCst)
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        *self.shared.requests_served.lock()
    }
}

/// Serialize a response to its wire frame. Infallible for in-memory
/// writes; returns the bytes.
fn frame_of(resp: &Response) -> Vec<u8> {
    let mut frame = Vec::with_capacity(resp.body.len() + 128);
    // Vec writes cannot fail; a defensive empty frame would be caught by
    // the client's framing check.
    let _ = write_response(&mut frame, resp);
    frame
}

/// Answer one request: route dispatch, range resume, integrity header and
/// the chaos decision, reduced to a [`Served`] verdict every serving loop
/// (threaded, epoll, sim) executes identically. This is *the* place
/// response bytes are decided — which is what makes them a pure function
/// of (corpus, index, chaos plan, request), independent of the loop and
/// of event interleaving.
fn serve_request(shared: &Shared, req: &Request) -> Served {
    *shared.requests_served.lock() += 1;
    let parsed = Route::parse(&req.path);
    let mut resp = match &parsed {
        Some(r) => route(shared, req, r),
        None => Response::not_found(req.path_only()),
    };
    // Range resume: a client that already holds a verified prefix asks
    // for the suffix; the full-body checksum lets it validate the
    // stitched result. Applied before the integrity header so that
    // CRC_HEADER covers exactly the bytes served.
    if resp.status == 200 {
        if let Some(start) = req
            .header(RANGE_START_HEADER)
            .and_then(|v| v.parse::<usize>().ok())
        {
            if start > 0 && start < resp.body.len() {
                resp.headers
                    .push((FULL_CRC_HEADER.into(), format!("{:08x}", crc32(&resp.body))));
                resp.headers
                    .push((RANGE_START_HEADER.into(), start.to_string()));
                resp.body.drain(..start);
            }
            // start == 0 or beyond the body: serve the full body with
            // no range echo; the client treats it as a fresh download.
        }
    }
    // Integrity header: lets the crawler detect silent payload
    // corruption (chaos-injected or otherwise) without trusting the
    // transport.
    resp.headers
        .push((CRC_HEADER.into(), format!("{:08x}", crc32(&resp.body))));
    let conn_id = req
        .header(CONNECTION_ID_HEADER)
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    let action = match (&shared.chaos, &parsed) {
        (Some(plan), Some(r)) => plan.decide(conn_id, r),
        _ => FaultAction::None,
    };
    match action {
        FaultAction::None => Served::Frame(frame_of(&resp)),
        FaultAction::Reset => Served::Reset,
        FaultAction::Truncate { keep_permille } => {
            let frame = frame_of(&resp);
            let keep = (frame.len() * keep_permille as usize / 1000).max(1);
            Served::FrameThenClose(frame[..keep.min(frame.len() - 1)].to_vec())
        }
        FaultAction::Stall { ms } => Served::Stall { ms },
        FaultAction::Status(status) => {
            let mut t = Response {
                status,
                headers: vec![],
                body: b"injected transient failure".to_vec(),
            };
            t.headers
                .push((CRC_HEADER.into(), format!("{:08x}", crc32(&t.body))));
            Served::Frame(frame_of(&t))
        }
        FaultAction::Corrupt { xor } => {
            // Flip body bytes *after* the checksum header was set, so
            // the frame stays well-formed but the payload lies.
            for b in resp.body.iter_mut() {
                *b ^= xor;
            }
            Served::Frame(frame_of(&resp))
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, stop: &AtomicBool) -> Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    // Responses are written as several small frames; without TCP_NODELAY
    // Nagle + delayed-ACK add ~40 ms to every request on loopback.
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = std::io::BufWriter::new(stream);
    use std::io::Write;
    while !stop.load(Ordering::Relaxed) {
        let Some(req) = read_request(&mut reader)? else {
            return Ok(()); // client closed keep-alive
        };
        match serve_request(shared, &req) {
            Served::Frame(frame) => {
                writer.write_all(&frame)?;
                writer.flush()?;
            }
            Served::FrameThenClose(frame) => {
                writer.write_all(&frame)?;
                writer.flush()?;
                return Ok(()); // close mid-frame
            }
            Served::Reset => return Ok(()), // close without a byte
            Served::Stall { ms } => {
                // Hold the socket silent, then close: the client sees a
                // read timeout or an EOF mid-response, whichever first.
                std::thread::sleep(Duration::from_millis(ms));
                return Ok(());
            }
        }
    }
    Ok(())
}

fn route(shared: &Shared, req: &Request, route: &Route) -> Response {
    // The real store varies responses by user-agent/locale; we require the
    // headers (a crawler that forgets them is told so) but serve one
    // variant — the §4.2 finding is precisely that responses do not vary
    // by device profile.
    if req.header("user-agent").is_none() {
        return Response::bad_request("missing User-Agent");
    }
    let corpus = &shared.corpus;
    match route {
        Route::Categories => {
            let body = CATEGORIES
                .iter()
                .map(|c| c.name)
                .collect::<Vec<_>>()
                .join("\n");
            Response::ok(body.into_bytes())
        }
        Route::Category { name, start, count } => {
            let apps = corpus.apps_in(name);
            if apps.is_empty() && crate::categories::category_index(name).is_none() {
                return Response::not_found(name);
            }
            let count = (*count).min(MAX_PER_CATEGORY);
            let end = (start + count).min(apps.len()).min(MAX_PER_CATEGORY);
            let page = if *start < end { &apps[*start..end] } else { &[] };
            let body = page
                .iter()
                .map(|a| a.package.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            Response::ok(body.into_bytes())
        }
        Route::App { package } => match corpus.app(package) {
            Some(app) => Response::ok(meta_body(app).into_bytes()),
            None => Response::not_found(package),
        },
        Route::Apk { package } => match corpus.app(package) {
            Some(app) => {
                let bytes = corpus.build_apk(app, &mut |id| (*shared.artifact(id)).clone());
                Response::ok(bytes)
            }
            None => Response::not_found(package),
        },
        Route::Obb { package } => match corpus.app(package) {
            Some(app) if app.has_obb => {
                let (name, bytes) = build_obb(
                    ObbKind::Main,
                    app.version_code,
                    &app.package,
                    &[
                        ("textures/atlas0.tex", vec![0xA5; 4096]),
                        ("audio/theme.pcm", vec![0x11; 2048]),
                    ],
                )
                // gaugelint: allow(unwrap-in-fault-path) — provably infallible: fixed-size literal assets cannot overflow the OBB container
                .expect("obb assembly is infallible for fixed inputs");
                let mut resp = Response::ok(bytes);
                resp.headers.push(("x-obb-name".into(), name));
                resp
            }
            Some(_) => Response::not_found("no expansion files"),
            None => Response::not_found(package),
        },
        Route::Bundle { package } => match corpus.app(package) {
            Some(app) if app.has_bundle => {
                let base = corpus.build_apk(app, &mut |id| (*shared.artifact(id)).clone());
                let mut bb = BundleBuilder::new(base);
                bb.add_pack(AssetPack {
                    name: "hires_textures".into(),
                    delivery: Delivery::OnDemand,
                    targeting: String::new(),
                    files: vec![("pack0.tex".into(), vec![0x77; 4096])],
                });
                match bb.finish() {
                    Ok(bytes) => Response::ok(bytes),
                    Err(e) => Response::bad_request(&e.to_string()),
                }
            }
            Some(_) => Response::not_found("not distributed as a bundle"),
            None => Response::not_found(package),
        },
        // The /query/* family answers from the attached corpus index.
        // Ranking happens inside the index (a total order) and rendering
        // consumes the ranked documents verbatim, so the response bytes
        // depend only on (index contents, query) — never on which worker
        // thread serves the connection.
        Route::QueryModels(q) => match &shared.index {
            Some(index) => {
                let docs = index.query_models(q);
                Response::ok(wire::render_models(&docs, q.snapshot.as_deref()).into_bytes())
            }
            None => Response::not_found("no corpus index attached"),
        },
        Route::QueryApps(q) => match &shared.index {
            Some(index) => {
                let docs = index.query_apps(q);
                Response::ok(wire::render_apps(&docs, q.snapshot.as_deref()).into_bytes())
            }
            None => Response::not_found("no corpus index attached"),
        },
        Route::QueryStats => match &shared.index {
            Some(index) => Response::ok(index.stats_text().into_bytes()),
            None => Response::not_found("no corpus index attached"),
        },
    }
}

fn meta_body(app: &AppSpec) -> String {
    format!(
        "package={}\ntitle={}\ncategory={}\ndownloads={}\nrating={:.2}\nversion={}\nhas_obb={}\nhas_bundle={}\n",
        app.package,
        app.title,
        CATEGORIES[app.category].name,
        app.downloads,
        app.rating,
        app.version_code,
        app.has_obb,
        app.has_bundle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::proto::{read_response, write_request};

    fn start_tiny() -> StoreServer {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        StoreServer::start(corpus).unwrap()
    }

    fn get(addr: SocketAddr, path: &str, headers: &[(&str, &str)]) -> Response {
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        write_request(&mut w, path, headers).unwrap();
        read_response(&mut r).unwrap()
    }

    const UA: (&str, &str) = ("User-Agent", "test/1.0");

    #[test]
    fn serves_categories_and_listings() {
        let server = start_tiny();
        let resp = get(server.addr(), "/categories", &[UA]);
        assert_eq!(resp.status, 200);
        let cats = resp.text();
        assert!(cats.lines().any(|l| l == "communication"));
        let listing = get(server.addr(), "/category/communication?start=0&count=10", &[UA]);
        assert_eq!(listing.status, 200);
        assert!(!listing.text().is_empty());
    }

    #[test]
    fn requires_user_agent() {
        let server = start_tiny();
        let resp = get(server.addr(), "/categories", &[("X-Locale", "en_GB")]);
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn serves_metadata_and_apk() {
        let server = start_tiny();
        let listing = get(server.addr(), "/category/communication?start=0&count=1", &[UA]);
        let pkg = listing.text().lines().next().unwrap().to_string();
        let meta = get(server.addr(), &format!("/app/{pkg}"), &[UA]);
        assert!(meta.text().contains(&format!("package={pkg}")));
        let apk = get(server.addr(), &format!("/apk/{pkg}"), &[UA]);
        assert_eq!(apk.status, 200);
        let parsed = gaugenn_apk::Apk::parse(&apk.body).unwrap();
        assert_eq!(parsed.package(), pkg);
    }

    #[test]
    fn unknown_paths_and_packages_404() {
        let server = start_tiny();
        assert_eq!(get(server.addr(), "/nope", &[UA]).status, 404);
        assert_eq!(get(server.addr(), "/app/com.missing.app", &[UA]).status, 404);
        assert_eq!(get(server.addr(), "/category/notacategory", &[UA]).status, 404);
    }

    #[test]
    fn apk_bytes_identical_across_downloads() {
        // Duplicated models must be byte-identical across fetches; the
        // md5 dedup analysis depends on it.
        let server = start_tiny();
        let listing = get(server.addr(), "/category/communication?start=0&count=1", &[UA]);
        let pkg = listing.text().lines().next().unwrap().to_string();
        let a = get(server.addr(), &format!("/apk/{pkg}"), &[UA]);
        let b = get(server.addr(), &format!("/apk/{pkg}"), &[UA]);
        assert_eq!(a.body, b.body);
    }

    #[test]
    fn keepalive_serves_multiple_requests() {
        let server = start_tiny();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut r = BufReader::new(stream.try_clone().unwrap());
        let mut w = stream;
        for _ in 0..3 {
            write_request(&mut w, "/categories", &[UA]).unwrap();
            let resp = read_response(&mut r).unwrap();
            assert_eq!(resp.status, 200);
        }
        assert!(server.requests_served() >= 3);
    }

    #[test]
    fn range_requests_serve_the_suffix_with_full_crc() {
        let server = start_tiny();
        let listing = get(server.addr(), "/category/communication?start=0&count=1", &[UA]);
        let pkg = listing.text().lines().next().unwrap().to_string();
        let full = get(server.addr(), &format!("/apk/{pkg}"), &[UA]);
        assert!(full.body.len() > 1000, "need a body worth ranging");
        let ranged = get(
            server.addr(),
            &format!("/apk/{pkg}"),
            &[UA, (RANGE_START_HEADER, "1000")],
        );
        assert_eq!(ranged.status, 200);
        assert_eq!(ranged.body, full.body[1000..].to_vec());
        let header = |r: &Response, k: &str| {
            r.headers
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(header(&ranged, RANGE_START_HEADER).as_deref(), Some("1000"));
        assert_eq!(
            header(&ranged, FULL_CRC_HEADER),
            Some(format!("{:08x}", crc32(&full.body))),
            "full-body checksum advertised for stitch validation"
        );
        assert_eq!(
            header(&ranged, CRC_HEADER),
            Some(format!("{:08x}", crc32(&ranged.body))),
            "per-response checksum covers the served slice"
        );
        // Offsets at/after the end fall back to a full, un-echoed body.
        let past = get(
            server.addr(),
            &format!("/apk/{pkg}"),
            &[UA, (RANGE_START_HEADER, "99999999")],
        );
        assert_eq!(past.body, full.body);
        assert_eq!(header(&past, RANGE_START_HEADER), None);
        assert_eq!(header(&past, FULL_CRC_HEADER), None);
    }

    #[test]
    fn device_profile_does_not_change_the_apk() {
        // §4.2: "we downloaded an extra snapshot with a three-generations
        // older device profile and found no evidence of device-specific
        // model customisation" — the server must behave that way.
        let server = start_tiny();
        let listing = get(server.addr(), "/category/communication?start=0&count=1", &[UA]);
        let pkg = listing.text().lines().next().unwrap().to_string();
        let new_dev = get(
            server.addr(),
            &format!("/apk/{pkg}"),
            &[UA, ("X-Device-Profile", "SM-G977B")],
        );
        let old_dev = get(
            server.addr(),
            &format!("/apk/{pkg}"),
            &[UA, ("X-Device-Profile", "SM-G935F")],
        );
        assert_eq!(new_dev.body, old_dev.body);
    }
}
