//! Typed request routes.
//!
//! One `Route` value is the single source of truth for a store endpoint:
//! the crawler renders it onto the wire ([`Route::wire_path`]), the
//! server parses it back for dispatch ([`Route::parse`]), and the chaos
//! planner keys fault schedules on it ([`Route::fault_key`]). Before this
//! enum the three sides each carried their own `format!`/`starts_with`
//! strings, which could (and did) drift.

use crate::proto::{decode_component, encode_component};
use gaugenn_index::{AppQuery, ModelQuery};
use std::fmt;

/// Default listing page size when a category request carries no `count`.
pub const DEFAULT_PAGE_SIZE: usize = 100;

/// A store endpoint, fully typed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Route {
    /// `GET /categories` — enumerate category names.
    Categories,
    /// `GET /category/{name}?start=&count=` — one listing page.
    Category {
        /// Decoded category name (may contain spaces/`&`).
        name: String,
        /// First index of the page.
        start: usize,
        /// Page length requested.
        count: usize,
    },
    /// `GET /app/{package}` — app metadata.
    App {
        /// Package name.
        package: String,
    },
    /// `GET /apk/{package}` — base APK bytes.
    Apk {
        /// Package name.
        package: String,
    },
    /// `GET /obb/{package}` — main OBB expansion file.
    Obb {
        /// Package name.
        package: String,
    },
    /// `GET /bundle/{package}` — app-bundle form.
    Bundle {
        /// Package name.
        package: String,
    },
    /// `GET /query/models?...` — corpus index model query.
    QueryModels(ModelQuery),
    /// `GET /query/apps?...` — corpus index app query.
    QueryApps(AppQuery),
    /// `GET /query/stats` — corpus index statistics.
    QueryStats,
}

impl Route {
    /// The full wire path, query string included, components
    /// percent-encoded.
    pub fn wire_path(&self) -> String {
        match self {
            Route::Categories => "/categories".into(),
            Route::Category { name, start, count } => format!(
                "/category/{}?start={start}&count={count}",
                encode_component(name)
            ),
            Route::App { package } => format!("/app/{}", encode_component(package)),
            Route::Apk { package } => format!("/apk/{}", encode_component(package)),
            Route::Obb { package } => format!("/obb/{}", encode_component(package)),
            Route::Bundle { package } => format!("/bundle/{}", encode_component(package)),
            Route::QueryModels(q) => render_query("/query/models", &q.to_pairs()),
            Route::QueryApps(q) => render_query("/query/apps", &q.to_pairs()),
            Route::QueryStats => "/query/stats".into(),
        }
    }

    /// The schedule key for chaos/backoff decisions: the wire path with
    /// the query stripped, so every page of one category (and every
    /// range-resumed retry of one APK) shares a single fault schedule.
    pub fn fault_key(&self) -> String {
        let wire = self.wire_path();
        match wire.split_once('?') {
            Some((path, _)) => path.to_string(),
            None => wire,
        }
    }

    /// Parse a wire path (as found in a request line) back into a route.
    /// Returns `None` for paths outside the store's surface — the server
    /// answers those with a 404.
    pub fn parse(path: &str) -> Option<Route> {
        let (path_only, query) = match path.split_once('?') {
            Some((p, q)) => (p, Some(q)),
            None => (path, None),
        };
        let q = |key: &str| -> Option<&str> {
            query?
                .split('&')
                .filter_map(|kv| kv.split_once('='))
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v)
        };
        if path_only == "/categories" {
            return Some(Route::Categories);
        }
        if path_only.starts_with("/query/") {
            // Query routes keep *all* pairs in order (multi-valued keys
            // repeat); values are percent-decoded here, at the wire
            // boundary, so the typed queries hold decoded text.
            let pairs = query
                .unwrap_or("")
                .split('&')
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k, decode_component(v)));
            return match path_only {
                "/query/models" => Some(Route::QueryModels(ModelQuery::from_pairs(pairs))),
                "/query/apps" => Some(Route::QueryApps(AppQuery::from_pairs(pairs))),
                "/query/stats" => Some(Route::QueryStats),
                _ => None,
            };
        }
        if let Some(rest) = path_only.strip_prefix("/category/") {
            return Some(Route::Category {
                name: decode_component(rest),
                start: q("start").and_then(|v| v.parse().ok()).unwrap_or(0),
                count: q("count")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_PAGE_SIZE),
            });
        }
        let pkg_route = |prefix: &str, build: fn(String) -> Route| -> Option<Route> {
            path_only
                .strip_prefix(prefix)
                .filter(|rest| !rest.is_empty())
                .map(|rest| build(decode_component(rest)))
        };
        pkg_route("/app/", |package| Route::App { package })
            .or_else(|| pkg_route("/apk/", |package| Route::Apk { package }))
            .or_else(|| pkg_route("/obb/", |package| Route::Obb { package }))
            .or_else(|| pkg_route("/bundle/", |package| Route::Bundle { package }))
    }
}

/// Render a query route's wire path: the canonical ordered pairs with
/// percent-encoded values. An empty pair list renders the bare path, so
/// `parse(wire_path(r)) == r` holds for default queries too.
fn render_query(path: &str, pairs: &[(&'static str, String)]) -> String {
    if pairs.is_empty() {
        return path.to_string();
    }
    let qs: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{k}={}", encode_component(v)))
        .collect();
    format!("{path}?{}", qs.join("&"))
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.wire_path())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_paths_roundtrip_through_parse() {
        let routes = [
            Route::Categories,
            Route::Category {
                name: "health & fitness".into(),
                start: 40,
                count: 20,
            },
            Route::App {
                package: "com.example.app".into(),
            },
            Route::Apk {
                package: "com.example.app".into(),
            },
            Route::Obb {
                package: "com.example.app".into(),
            },
            Route::Bundle {
                package: "com.example.app".into(),
            },
        ];
        for r in routes {
            assert_eq!(Route::parse(&r.wire_path()), Some(r.clone()), "{r}");
        }
    }

    #[test]
    fn category_query_defaults_apply() {
        assert_eq!(
            Route::parse("/category/finance"),
            Some(Route::Category {
                name: "finance".into(),
                start: 0,
                count: DEFAULT_PAGE_SIZE,
            })
        );
        assert_eq!(
            Route::parse("/category/finance?start=7"),
            Some(Route::Category {
                name: "finance".into(),
                start: 7,
                count: DEFAULT_PAGE_SIZE,
            })
        );
    }

    #[test]
    fn fault_key_strips_the_query() {
        let a = Route::Category {
            name: "games".into(),
            start: 0,
            count: 2,
        };
        let b = Route::Category {
            name: "games".into(),
            start: 2,
            count: 2,
        };
        assert_eq!(a.fault_key(), b.fault_key(), "pages share one schedule");
        assert_eq!(a.fault_key(), "/category/games");
        assert_eq!(
            Route::Apk {
                package: "com.x".into()
            }
            .fault_key(),
            "/apk/com.x"
        );
    }

    #[test]
    fn encoded_components_survive() {
        let r = Route::Category {
            name: "maps & navigation".into(),
            start: 0,
            count: 100,
        };
        let wire = r.wire_path();
        assert!(!wire.contains(' ') && !wire.contains('&') || wire.contains("start="));
        assert!(wire.starts_with("/category/maps%20%26%20navigation"));
        assert_eq!(Route::parse(&wire), Some(r));
    }

    #[test]
    fn foreign_paths_are_rejected()  {
        for p in ["/nope", "/", "", "/app/", "/apkX/com.x", "/categories/extra", "/query/nope"] {
            assert_eq!(Route::parse(p), None, "{p:?}");
        }
    }

    #[test]
    fn query_routes_roundtrip_with_encoded_values() {
        let routes = [
            Route::QueryStats,
            Route::QueryModels(ModelQuery::default()),
            Route::QueryApps(AppQuery::default()),
            Route::QueryModels(ModelQuery {
                frameworks: vec!["tflite".into(), "caffe".into()],
                tasks: vec!["object detection".into()],
                quantised: Some(true),
                snapshot: Some("Apr 2021".into()),
                min_flops: Some(1_000_000),
                limit: Some(25),
                ..ModelQuery::default()
            }),
            Route::QueryApps(AppQuery {
                categories: vec!["health & fitness".into()],
                ml_only: true,
                cloud: Some(false),
                snapshot: Some("Feb 2020".into()),
                limit: Some(10),
            }),
        ];
        for r in routes {
            let wire = r.wire_path();
            assert!(!wire.contains(' '), "{wire}");
            assert_eq!(Route::parse(&wire), Some(r.clone()), "{wire}");
        }
        // Spaces in task/snapshot values are percent-encoded on the wire.
        let wire = Route::QueryModels(ModelQuery {
            tasks: vec!["object detection".into()],
            ..ModelQuery::default()
        })
        .wire_path();
        assert_eq!(wire, "/query/models?task=object%20detection");
    }

    #[test]
    fn query_fault_key_is_shared_across_parameters() {
        let a = Route::QueryModels(ModelQuery {
            limit: Some(1),
            ..ModelQuery::default()
        });
        let b = Route::QueryModels(ModelQuery {
            frameworks: vec!["tflite".into()],
            ..ModelQuery::default()
        });
        assert_eq!(a.fault_key(), b.fault_key());
        assert_eq!(a.fault_key(), "/query/models");
        assert_eq!(Route::QueryStats.fault_key(), "/query/stats");
    }
}
