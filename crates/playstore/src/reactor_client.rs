//! Non-blocking client connection state machines over the reactor.
//!
//! The blocking [`crate::crawler::Crawler`] parks one OS thread per
//! connection: every read blocks until the store answers, so a pool
//! worker drives exactly one in-flight request. This module is the
//! client-side mirror of the server's `ConnSm`/`Served` split
//! ([`crate::reactor`]): each connection is a [`ClientSm`] — a small
//! state machine that owns a write buffer, an accumulating read buffer
//! and the shared [`crate::crawler::RequestSm`] retry core — and a
//! single driver thread ([`drive_lanes`]) multiplexes hundreds of them
//! over one readiness loop (kernel epoll for TCP endpoints, the seeded
//! deterministic [`mio::SimReactor`] for in-process sim endpoints).
//!
//! Determinism and parity both fall out of sharing the exact same
//! building blocks as the blocking path: requests are framed by
//! [`crate::proto::write_request`] with the identical header set,
//! responses accumulate until [`crate::proto::response_frame_complete`]
//! says the buffer is decidable and are then *replayed* through the
//! blocking parser by [`crate::proto::finish_response_frame`] (same
//! outcomes, same error strings, byte for byte), and every retry,
//! backoff draw, admission charge and counter bump goes through the one
//! shared `RequestSm`. A lane therefore produces the same
//! [`CrawlStats`] on the same `(connection id, route)` history as a
//! blocking crawler would — which is what lets the pool swap transports
//! without changing a single merged byte.
//!
//! Delays never block the driver: with [`RetryPolicy::real_sleep`] off
//! (the default) backoff/throttle charges are accounted on the logical
//! clock exactly as the blocking path does, and with it on they are
//! armed on the loop's [`mio::TimerWheel`] instead of `thread::sleep`,
//! so one lane waiting out a 429 never stalls its neighbours.

use crate::admission::AdmissionController;
use crate::crawler::{
    obb_entry, parse_app_meta, parse_listing, request_headers, verify_body_crc, AppMeta,
    AttemptPrep, AttemptVerdict, AdmitVerdict, CrawlStage, CrawlStats, CrawledApp, CrawlerConfig,
    DropOut, RequestSm, RetryPolicy,
};
use crate::net::{Endpoint, SimClientHandle};
use crate::proto::{
    finish_response_frame, response_frame_complete, write_request, ReadOutcome, Response,
};
use crate::route::Route;
use crate::{Result, StoreError};
use mio::{Events, Interest, Parker, Reactor, TimerWheel, Token};
use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// How many bytes one readiness-driven read pulls at a time (matches the
/// server-side `ConnSm` chunk size).
const READ_CHUNK: usize = 16 * 1024;

/// Consecutive zero-progress lockstep rounds tolerated before the driver
/// declares a deadlock (no events, no timers, nothing served).
const LOCKSTEP_STUCK_LIMIT: u32 = 3;

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// The request plan one lane works through. The driver calls
/// [`LaneJob::next_request`] whenever the lane is free, issues the route
/// through the full retry/admission machinery, and hands the final
/// outcome (a 200 response, or the typed error after every retry) to
/// [`LaneJob::on_result`] — exactly once per issued request, in issue
/// order.
pub trait LaneJob {
    /// The next route to fetch, with its resumability flag (`true` keeps
    /// truncated prefixes and range-resumes them — the large binary
    /// payloads). `None` ends the lane.
    fn next_request(&mut self, stats: &mut CrawlStats) -> Option<(Route, bool)>;

    /// Deliver the outcome of the most recently issued request.
    fn on_result(&mut self, result: Result<Response>);
}

/// The simplest job: replay a fixed route list in order and keep every
/// outcome. What the query swarm and the in-flight scaling tests drive.
#[derive(Debug, Default)]
pub struct RouteListJob {
    routes: Vec<(Route, bool)>,
    next: usize,
    results: Vec<Result<Response>>,
}

impl RouteListJob {
    /// A job that fetches `routes` in order.
    pub fn new(routes: Vec<(Route, bool)>) -> RouteListJob {
        RouteListJob {
            routes,
            next: 0,
            results: Vec::new(),
        }
    }

    /// The outcomes, in issue order (one per planned route).
    pub fn into_results(self) -> Vec<Result<Response>> {
        self.results
    }
}

impl LaneJob for RouteListJob {
    fn next_request(&mut self, _stats: &mut CrawlStats) -> Option<(Route, bool)> {
        let r = self.routes.get(self.next).cloned()?;
        self.next += 1;
        Some(r)
    }

    fn on_result(&mut self, result: Result<Response>) {
        self.results.push(result);
    }
}

/// One category's crawl output, tagged with its global plan index so the
/// pool can merge shards from many lanes back into plan order.
pub(crate) struct LaneShard {
    /// Position of this category in the pool's global plan.
    pub(crate) index: usize,
    /// Successfully crawled apps, listing order.
    pub(crate) apps: Vec<CrawledApp>,
    /// Apps (or the listing itself) that failed permanently.
    pub(crate) dropouts: Vec<DropOut>,
}

/// Where a [`CrawlLaneJob`] is in its category walk. `Await*` variants
/// mark an outstanding request (only [`LaneJob::on_result`] may run);
/// the rest are actions [`LaneJob::next_request`] steps through.
enum CrawlJobState {
    /// Open the next assigned category (or finish).
    NextCategory,
    /// Emit the next listing page request.
    PageReady,
    /// A listing page is outstanding.
    AwaitListing,
    /// Advance to the next listed package (cache-check, then metadata).
    NextApp,
    /// A metadata request is outstanding.
    AwaitMeta,
    /// Emit the APK download.
    PendingApk {
        meta: AppMeta,
    },
    /// The APK download is outstanding.
    AwaitApk {
        meta: AppMeta,
    },
    /// Emit the OBB download.
    PendingObb {
        meta: AppMeta,
        apk: Vec<u8>,
    },
    /// The OBB download is outstanding.
    AwaitObb {
        meta: AppMeta,
        apk: Vec<u8>,
    },
    /// Emit the bundle download.
    PendingBundle {
        meta: AppMeta,
        apk: Vec<u8>,
        obbs: Vec<(String, Vec<u8>)>,
    },
    /// The bundle download is outstanding.
    AwaitBundle {
        meta: AppMeta,
        apk: Vec<u8>,
        obbs: Vec<(String, Vec<u8>)>,
    },
    /// Every assigned category crawled.
    Done,
}

/// A crawl plan for one lane: walk the assigned categories exactly the
/// way [`crate::crawler::Crawler::crawl_category`] does — page the
/// listing to the 500 cap, then metadata → APK → OBB → bundle per listed
/// app, resume-cache hits served without network requests, permanent
/// failures recorded as [`DropOut`]s — but expressed as a pull-driven
/// job so the request sequence (and therefore every counter and fault
/// draw) is identical to the blocking walk on the same connection id.
pub(crate) struct CrawlLaneJob {
    /// `(global plan index, category name)` in crawl order.
    cats: Vec<(usize, String)>,
    page_size: usize,
    resume: Option<Arc<BTreeMap<String, CrawledApp>>>,
    state: CrawlJobState,
    /// Cursor into `cats`.
    ci: usize,
    /// Listing accumulator for the category being paged.
    listing: Vec<String>,
    listing_start: usize,
    /// Packages of the current category, and the cursor into them.
    pkgs: Vec<String>,
    pi: usize,
    shards: Vec<LaneShard>,
}

impl CrawlLaneJob {
    pub(crate) fn new(
        cats: Vec<(usize, String)>,
        page_size: usize,
        resume: Option<Arc<BTreeMap<String, CrawledApp>>>,
    ) -> CrawlLaneJob {
        CrawlLaneJob {
            cats,
            page_size,
            resume,
            state: CrawlJobState::NextCategory,
            ci: 0,
            listing: Vec::new(),
            listing_start: 0,
            pkgs: Vec::new(),
            pi: 0,
            shards: Vec::new(),
        }
    }

    /// The finished shards, one per assigned category, in crawl order.
    pub(crate) fn into_shards(self) -> Vec<LaneShard> {
        self.shards
    }

    fn category(&self) -> &str {
        &self.cats[self.ci].1
    }

    fn dropout(&mut self, package: String, stage: CrawlStage, error: &StoreError) {
        let shard = self
            .shards
            .last_mut()
            // gaugelint: allow(unwrap-in-fault-path) — provably infallible: NextCategory pushes the shard before any route of that category is issued
            .expect("a shard is opened before any request of its category");
        shard.dropouts.push(DropOut {
            package,
            stage,
            error: error.to_string(),
        });
    }

    fn finish_app(&mut self, meta: AppMeta, apk: Vec<u8>, obbs: Vec<(String, Vec<u8>)>, bundle: Option<Vec<u8>>) {
        let shard = self
            .shards
            .last_mut()
            // gaugelint: allow(unwrap-in-fault-path) — provably infallible: NextCategory pushes the shard before any route of that category is issued
            .expect("a shard is opened before any request of its category");
        shard.apps.push(CrawledApp {
            meta,
            apk,
            obbs,
            bundle,
        });
        self.pi += 1;
        self.state = CrawlJobState::NextApp;
    }

    fn app_dropout(&mut self, stage: CrawlStage, error: &StoreError) {
        let pkg = self.pkgs[self.pi].clone();
        self.dropout(pkg, stage, error);
        self.pi += 1;
        self.state = CrawlJobState::NextApp;
    }
}

impl LaneJob for CrawlLaneJob {
    fn next_request(&mut self, stats: &mut CrawlStats) -> Option<(Route, bool)> {
        loop {
            match std::mem::replace(&mut self.state, CrawlJobState::Done) {
                CrawlJobState::NextCategory => {
                    if self.ci == self.cats.len() {
                        self.state = CrawlJobState::Done;
                        return None;
                    }
                    self.shards.push(LaneShard {
                        index: self.cats[self.ci].0,
                        apps: Vec::new(),
                        dropouts: Vec::new(),
                    });
                    self.listing.clear();
                    self.listing_start = 0;
                    self.state = CrawlJobState::PageReady;
                }
                CrawlJobState::PageReady => {
                    let route = Route::Category {
                        name: self.category().to_string(),
                        start: self.listing_start,
                        count: self.page_size,
                    };
                    self.state = CrawlJobState::AwaitListing;
                    return Some((route, false));
                }
                CrawlJobState::NextApp => {
                    if self.pi == self.pkgs.len() {
                        self.ci += 1;
                        self.state = CrawlJobState::NextCategory;
                        continue;
                    }
                    let pkg = self.pkgs[self.pi].clone();
                    if let Some(app) = self.resume.as_ref().and_then(|r| r.get(&pkg)) {
                        let app = app.clone();
                        stats.journal_restores += 1;
                        let shard = self
                            .shards
                            .last_mut()
                            // gaugelint: allow(unwrap-in-fault-path) — provably infallible: NextCategory pushes the shard before any route of that category is issued
                            .expect("a shard is opened before any request of its category");
                        shard.apps.push(app);
                        self.pi += 1;
                        self.state = CrawlJobState::NextApp;
                        continue;
                    }
                    self.state = CrawlJobState::AwaitMeta;
                    return Some((Route::App { package: pkg }, false));
                }
                CrawlJobState::PendingApk { meta } => {
                    let route = Route::Apk {
                        package: meta.package.clone(),
                    };
                    self.state = CrawlJobState::AwaitApk { meta };
                    return Some((route, true));
                }
                CrawlJobState::PendingObb { meta, apk } => {
                    let route = Route::Obb {
                        package: meta.package.clone(),
                    };
                    self.state = CrawlJobState::AwaitObb { meta, apk };
                    return Some((route, true));
                }
                CrawlJobState::PendingBundle { meta, apk, obbs } => {
                    let route = Route::Bundle {
                        package: meta.package.clone(),
                    };
                    self.state = CrawlJobState::AwaitBundle { meta, apk, obbs };
                    return Some((route, true));
                }
                CrawlJobState::Done => {
                    self.state = CrawlJobState::Done;
                    return None;
                }
                _ => unreachable!("next_request called while a request is outstanding"),
            }
        }
    }

    fn on_result(&mut self, result: Result<Response>) {
        match std::mem::replace(&mut self.state, CrawlJobState::Done) {
            CrawlJobState::AwaitListing => match result {
                Ok(resp) => {
                    let page = parse_listing(&resp.text());
                    if page.is_empty() {
                        self.pkgs = std::mem::take(&mut self.listing);
                        self.pi = 0;
                        self.state = CrawlJobState::NextApp;
                        return;
                    }
                    self.listing_start += page.len();
                    self.listing.extend(page);
                    if self.listing.len() >= crate::server::MAX_PER_CATEGORY {
                        self.listing.truncate(crate::server::MAX_PER_CATEGORY);
                        self.pkgs = std::mem::take(&mut self.listing);
                        self.pi = 0;
                        self.state = CrawlJobState::NextApp;
                    } else {
                        self.state = CrawlJobState::PageReady;
                    }
                }
                Err(e) => {
                    let cat = self.category().to_string();
                    self.dropout(format!("category:{cat}"), CrawlStage::Listing, &e);
                    self.ci += 1;
                    self.state = CrawlJobState::NextCategory;
                }
            },
            CrawlJobState::AwaitMeta => match result {
                Ok(resp) => match parse_app_meta(&resp.text()) {
                    Ok(meta) => self.state = CrawlJobState::PendingApk { meta },
                    Err(e) => self.app_dropout(CrawlStage::Meta, &e),
                },
                Err(e) => self.app_dropout(CrawlStage::Meta, &e),
            },
            CrawlJobState::AwaitApk { meta } => match result {
                Ok(resp) => {
                    let apk = resp.body;
                    if meta.has_obb {
                        self.state = CrawlJobState::PendingObb { meta, apk };
                    } else if meta.has_bundle {
                        self.state = CrawlJobState::PendingBundle {
                            meta,
                            apk,
                            obbs: Vec::new(),
                        };
                    } else {
                        self.finish_app(meta, apk, Vec::new(), None);
                    }
                }
                Err(e) => self.app_dropout(CrawlStage::Apk, &e),
            },
            CrawlJobState::AwaitObb { meta, apk } => match result {
                Ok(resp) => {
                    let obbs = vec![obb_entry(resp, &meta.package, meta.version_code)];
                    if meta.has_bundle {
                        self.state = CrawlJobState::PendingBundle { meta, apk, obbs };
                    } else {
                        self.finish_app(meta, apk, obbs, None);
                    }
                }
                Err(e) => self.app_dropout(CrawlStage::Obb, &e),
            },
            CrawlJobState::AwaitBundle { meta, apk, obbs } => match result {
                Ok(resp) => self.finish_app(meta, apk, obbs, Some(resp.body)),
                Err(e) => self.app_dropout(CrawlStage::Bundle, &e),
            },
            _ => unreachable!("on_result delivered with no request outstanding"),
        }
    }
}

// ---------------------------------------------------------------------------
// The lane state machine
// ---------------------------------------------------------------------------

/// Non-blocking transport half of one lane.
enum ClientIo {
    /// A kernel TCP socket in non-blocking mode.
    Tcp(std::net::TcpStream),
    /// An in-process sim pipe pair.
    Sim(SimClientHandle),
}

impl ClientIo {
    fn try_read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientIo::Tcp(s) => io::Read::read(s, buf),
            ClientIo::Sim(h) => h.try_read(buf),
        }
    }

    fn try_write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientIo::Tcp(s) => io::Write::write(s, buf),
            ClientIo::Sim(h) => h.try_write(buf),
        }
    }

    fn shutdown(&mut self) {
        match self {
            ClientIo::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            ClientIo::Sim(h) => h.close(),
        }
    }
}

/// Where a lane is between driver wake-ups. Blocked states only —
/// transient decisions (attempt prep, admission, building the request
/// frame) run to completion inside one pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No request outstanding (between jobs steps).
    Idle,
    /// Waiting out a retry backoff on the timer wheel.
    Backoff,
    /// Waiting out a breaker-advertised retry-after on the timer wheel.
    BreakerWait,
    /// Waiting out an admission pacing charge on the timer wheel.
    ThrottleWait,
    /// TCP connect in flight; the reactor reports writability when the
    /// handshake settles.
    Connecting,
    /// Request frame partially written; waiting for send-buffer room.
    Writing,
    /// Accumulating the response frame; waiting for bytes.
    Reading,
    /// The job returned `None`; the lane is done.
    Finished,
}

/// Which decision a pump resumes at (set by the event or timer that woke
/// the lane).
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Ask the job for the next request.
    TakeJob,
    /// Begin the next attempt (backoff accounting).
    Begin,
    /// Run admission and build the request frame.
    Admit,
    /// Connect if needed, then write.
    Send,
    /// Continue the in-flight I/O (write/read) for the current phase.
    Drive,
}

/// One connection lane: a [`LaneJob`] plan, the shared [`RequestSm`]
/// retry core, and the non-blocking transport buffers. The client-side
/// mirror of the server's `ConnSm`.
struct ClientSm<J> {
    job: J,
    connection_id: u64,
    conn_id_str: String,
    retry: RetryPolicy,
    stats: CrawlStats,
    phase: Phase,
    sm: Option<RequestSm>,
    io: Option<ClientIo>,
    write_buf: Vec<u8>,
    written: usize,
    read_buf: Vec<u8>,
    /// Whether this lane ever connected — the first dial is free, every
    /// later one is a reconnect (parity with the blocking crawler's
    /// eager-dial-then-invalidate accounting).
    connected_before: bool,
    registered: Interest,
}

impl<J: LaneJob> ClientSm<J> {
    fn new(connection_id: u64, retry: RetryPolicy, job: J) -> ClientSm<J> {
        ClientSm {
            job,
            connection_id,
            conn_id_str: connection_id.to_string(),
            retry,
            stats: CrawlStats::default(),
            phase: Phase::Idle,
            sm: None,
            io: None,
            write_buf: Vec::new(),
            written: 0,
            read_buf: Vec::new(),
            connected_before: false,
            registered: Interest::NONE,
        }
    }

    fn in_flight(&self) -> bool {
        matches!(self.phase, Phase::Connecting | Phase::Writing | Phase::Reading)
    }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// One lane's configuration handed to [`drive_lanes`].
pub struct LaneSpec<J> {
    /// Connection id: announced to the server, folded into backoff
    /// jitter, and the key of this connection's chaos schedule.
    pub connection_id: u64,
    /// Retry/backoff policy (per lane, so swarms can vary jitter seeds).
    pub retry: RetryPolicy,
    /// The request plan.
    pub job: J,
}

/// Shared configuration for a [`drive_lanes`] run.
pub struct LaneOpts {
    /// Identity headers and page size (same set the blocking crawler
    /// sends).
    pub config: CrawlerConfig,
    /// Store-wide admission controller shared across lanes and workers.
    pub admission: Option<Arc<AdmissionController>>,
    /// TCP connect deadline.
    pub connect_timeout: Duration,
    /// TCP per-read deadline (sim lanes run on the logical clock and
    /// need none — a stalled sim peer always ends in a close).
    pub read_timeout: Duration,
    /// Seed for the deterministic sim reactor (event delivery order and
    /// the replay digest).
    pub sim_seed: u64,
}

impl Default for LaneOpts {
    fn default() -> LaneOpts {
        LaneOpts {
            config: CrawlerConfig::default(),
            admission: None,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            sim_seed: 0,
        }
    }
}

/// One lane's final state after [`drive_lanes`] returns.
pub struct LaneOutcome<J> {
    /// The lane's connection id.
    pub connection_id: u64,
    /// The finished job (results inside).
    pub job: J,
    /// The lane's resilience counters — same semantics as the blocking
    /// crawler's on the same request history.
    pub stats: CrawlStats,
}

/// What one [`drive_lanes`] run looked like from the loop's seat.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Most lanes simultaneously between connect-start and final byte.
    pub peak_in_flight: usize,
    /// Poll rounds the driver ran.
    pub rounds: u64,
    /// Sim reactor event-stream digest (0 under epoll): same seed + same
    /// schedule ⇒ same digest, the replay-determinism witness.
    pub digest: u64,
}

/// Whether this host can drive non-blocking lanes against a TCP
/// endpoint (sim endpoints always can, on their deterministic reactor).
/// Callers that want the event-driven client with a graceful threaded
/// fallback — the pool, the benches — probe this instead of letting
/// [`drive_lanes`] fail.
pub fn nonblocking_tcp_available() -> bool {
    mio::EpollReactor::new().is_ok()
}

/// The readiness substrate a lane set runs on.
enum ClientReactor {
    Epoll(mio::EpollReactor),
    Sim(mio::SimReactor),
}

impl ClientReactor {
    fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        match self {
            ClientReactor::Epoll(r) => r.poll(events, timeout),
            ClientReactor::Sim(r) => r.poll(events, timeout),
        }
    }

    fn set_interest(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        match self {
            ClientReactor::Epoll(r) => r.set_interest(token, interest),
            ClientReactor::Sim(r) => r.set_interest(token, interest),
        }
    }

    fn deregister(&mut self, token: Token) -> io::Result<()> {
        match self {
            ClientReactor::Epoll(r) => r.deregister(token),
            ClientReactor::Sim(r) => r.deregister(token),
        }
    }
}

/// Everything a pump needs besides the lane itself. `now` is the loop
/// clock: wall milliseconds under epoll, logical ticks under sim.
struct DriverCtx<'a> {
    endpoint: &'a Endpoint,
    reactor: &'a mut ClientReactor,
    wheel: &'a mut TimerWheel,
    opts: &'a LaneOpts,
    client_parker: Option<Arc<Parker>>,
    now: u64,
    tcp: bool,
}

#[cfg(target_os = "linux")]
fn stream_fd(stream: &std::net::TcpStream) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

#[cfg(not(target_os = "linux"))]
fn stream_fd(_stream: &std::net::TcpStream) -> i32 {
    -1
}

fn close_io<J>(lane: &mut ClientSm<J>, ctx: &mut DriverCtx<'_>, token: Token) {
    if let Some(mut io) = lane.io.take() {
        let _ = ctx.reactor.deregister(token);
        io.shutdown();
        lane.registered = Interest::NONE;
    }
}

/// Open the lane's transport. `Ok(true)` means a TCP handshake is in
/// flight (the lane parks in [`Phase::Connecting`] until the reactor
/// reports writability); `Ok(false)` means the transport is ready now.
fn open_io<J>(
    lane: &mut ClientSm<J>,
    ctx: &mut DriverCtx<'_>,
    token: Token,
) -> std::result::Result<bool, StoreError> {
    if lane.connected_before {
        lane.stats.reconnects += 1;
    } else {
        lane.connected_before = true;
    }
    match (ctx.endpoint, &mut *ctx.reactor) {
        (Endpoint::Tcp(addr), ClientReactor::Epoll(ep)) => {
            let stream = mio::tcp_connect_nonblocking(*addr)?;
            ep.register_fd(stream_fd(&stream), token, Interest::WRITABLE)?;
            lane.io = Some(ClientIo::Tcp(stream));
            lane.registered = Interest::WRITABLE;
            Ok(true)
        }
        (Endpoint::Sim(net), ClientReactor::Sim(sr)) => {
            let handle = net.connect_nonblocking();
            if let Some(p) = &ctx.client_parker {
                handle.watch(Arc::clone(p));
            }
            sr.register(token, Arc::new(handle.clone()), Interest::NONE);
            lane.io = Some(ClientIo::Sim(handle));
            lane.registered = Interest::NONE;
            Ok(false)
        }
        _ => Err(StoreError::Protocol(
            "lane endpoint does not match the reactor substrate".into(),
        )),
    }
}

/// Resolve one attempt's transport outcome through the shared retry
/// core and report where the pump should resume.
fn absorb<J: LaneJob>(
    lane: &mut ClientSm<J>,
    ctx: &mut DriverCtx<'_>,
    token: Token,
    result: Result<ReadOutcome>,
) -> Step {
    ctx.wheel.cancel(token);
    lane.read_buf.clear();
    // gaugelint: allow(unwrap-in-fault-path) — provably infallible: absorb is only reached while a RequestSm is in flight
    let mut sm = lane.sm.take().expect("a request is in flight");
    match sm.absorb(result, ctx.opts.admission.as_deref(), &mut lane.stats) {
        AttemptVerdict::Done(resp) => {
            lane.job.on_result(Ok(resp));
            Step::TakeJob
        }
        AttemptVerdict::Fatal { error, invalidate } => {
            if invalidate {
                close_io(lane, ctx, token);
            }
            lane.job.on_result(Err(error));
            Step::TakeJob
        }
        AttemptVerdict::Retry { invalidate } => {
            if invalidate {
                close_io(lane, ctx, token);
            }
            lane.sm = Some(sm);
            Step::Begin
        }
    }
}

/// Finish an accumulated response buffer the way the blocking exchange
/// would have (replay through the blocking parser, then the integrity
/// check) and absorb the outcome.
fn finish_frame<J: LaneJob>(
    lane: &mut ClientSm<J>,
    ctx: &mut DriverCtx<'_>,
    token: Token,
    io_err: Option<io::Error>,
) -> Step {
    // gaugelint: allow(unwrap-in-fault-path) — provably infallible: finish_frame is only reached from Phase::Reading, which always has a RequestSm
    let wire = lane.sm.as_ref().expect("a request is in flight").wire_path().to_string();
    let result = finish_response_frame(&lane.read_buf, io_err).and_then(|outcome| {
        if let ReadOutcome::Complete(resp) = &outcome {
            verify_body_crc(resp, &wire)?;
        }
        Ok(outcome)
    });
    absorb(lane, ctx, token, result)
}

/// Drive one lane as far as it can go without blocking, starting at
/// `start`. On return the lane is parked in a blocked [`Phase`] (or
/// [`Phase::Finished`]); the caller settles reactor interest afterwards.
fn pump_lane<J: LaneJob>(
    lane: &mut ClientSm<J>,
    ctx: &mut DriverCtx<'_>,
    token: Token,
    start: Step,
) {
    let mut step = start;
    loop {
        match step {
            Step::TakeJob => {
                lane.phase = Phase::Idle;
                match lane.job.next_request(&mut lane.stats) {
                    None => {
                        close_io(lane, ctx, token);
                        ctx.wheel.cancel(token);
                        lane.phase = Phase::Finished;
                        return;
                    }
                    Some((route, resumable)) => {
                        lane.sm = Some(RequestSm::new(&route, resumable, lane.retry.max_attempts));
                        step = Step::Begin;
                    }
                }
            }
            Step::Begin => {
                // gaugelint: allow(unwrap-in-fault-path) — provably infallible: Begin is only entered with a RequestSm installed
                let sm = lane.sm.as_mut().expect("a request is in flight");
                match sm.begin_attempt(&lane.retry, lane.connection_id, &mut lane.stats) {
                    AttemptPrep::Exhausted(e) => {
                        lane.sm = None;
                        lane.job.on_result(Err(e));
                        step = Step::TakeJob;
                    }
                    AttemptPrep::Backoff { delay_ms } => {
                        if lane.retry.real_sleep && delay_ms > 0 {
                            ctx.wheel.arm(token, ctx.now + delay_ms);
                            lane.phase = Phase::Backoff;
                            return;
                        }
                        step = Step::Admit;
                    }
                }
            }
            Step::Admit => {
                // gaugelint: allow(unwrap-in-fault-path) — provably infallible: Admit is only entered with a RequestSm installed
                let sm = lane.sm.as_mut().expect("a request is in flight");
                match sm.admit(
                    ctx.opts.admission.as_deref(),
                    lane.connection_id,
                    &mut lane.stats,
                ) {
                    AdmitVerdict::Rejected { retry_after_ms } => {
                        if lane.retry.real_sleep && retry_after_ms > 0 {
                            ctx.wheel.arm(token, ctx.now + retry_after_ms);
                            lane.phase = Phase::BreakerWait;
                            return;
                        }
                        step = Step::Begin;
                    }
                    AdmitVerdict::Proceed {
                        range_start,
                        throttle_ms,
                    } => {
                        lane.write_buf.clear();
                        lane.written = 0;
                        let range = range_start.map(|n| n.to_string());
                        let headers =
                            request_headers(&ctx.opts.config, &lane.conn_id_str, range.as_deref());
                        if let Err(e) = write_request(&mut lane.write_buf, sm.wire_path(), &headers)
                        {
                            // Unreachable for a Vec sink; routed through the
                            // retry core anyway so nothing panics.
                            step = absorb(lane, ctx, token, Err(e));
                            continue;
                        }
                        if lane.retry.real_sleep && throttle_ms > 0 {
                            ctx.wheel.arm(token, ctx.now + throttle_ms);
                            lane.phase = Phase::ThrottleWait;
                            return;
                        }
                        step = Step::Send;
                    }
                }
            }
            Step::Send => {
                if lane.io.is_none() {
                    match open_io(lane, ctx, token) {
                        Ok(true) => {
                            let connect_ms = ctx.opts.connect_timeout.as_millis().max(1) as u64;
                            ctx.wheel.arm(token, ctx.now + connect_ms);
                            lane.phase = Phase::Connecting;
                            return;
                        }
                        Ok(false) => {}
                        Err(e) => {
                            step = absorb(lane, ctx, token, Err(e));
                            continue;
                        }
                    }
                }
                lane.phase = Phase::Writing;
                step = Step::Drive;
            }
            Step::Drive => match lane.phase {
                Phase::Writing => {
                    // gaugelint: allow(unwrap-in-fault-path) — provably infallible: Writing always has a transport (opened in Send)
                    let io = lane.io.as_mut().expect("writing lane has a transport");
                    let mut result = None;
                    while lane.written < lane.write_buf.len() {
                        match io.try_write(&lane.write_buf[lane.written..]) {
                            Ok(0) => {
                                result = Some(Err(io::Error::new(
                                    io::ErrorKind::WriteZero,
                                    "failed to write whole buffer",
                                )
                                .into()));
                                break;
                            }
                            Ok(n) => lane.written += n,
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => {
                                result = Some(Err(e.into()));
                                break;
                            }
                        }
                    }
                    match result {
                        Some(r) => step = absorb(lane, ctx, token, r),
                        None => {
                            lane.read_buf.clear();
                            lane.phase = Phase::Reading;
                            if ctx.tcp {
                                let read_ms = ctx.opts.read_timeout.as_millis().max(1) as u64;
                                ctx.wheel.arm(token, ctx.now + read_ms);
                            }
                        }
                    }
                }
                Phase::Reading => {
                    let io_err = loop {
                        if response_frame_complete(&lane.read_buf) {
                            break None;
                        }
                        let mut chunk = [0u8; READ_CHUNK];
                        // gaugelint: allow(unwrap-in-fault-path) — provably infallible: Reading always has a transport (opened in Send)
                        let io = lane.io.as_mut().expect("reading lane has a transport");
                        match io.try_read(&mut chunk) {
                            Ok(0) => break None,
                            Ok(n) => {
                                lane.read_buf.extend_from_slice(&chunk[..n]);
                                if ctx.tcp {
                                    let read_ms =
                                        ctx.opts.read_timeout.as_millis().max(1) as u64;
                                    ctx.wheel.arm(token, ctx.now + read_ms);
                                }
                            }
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                            Err(e) => break Some(e),
                        }
                    };
                    step = finish_frame(lane, ctx, token, io_err);
                }
                _ => return,
            },
        }
    }
}

/// Settle this lane's reactor interest to match its parked phase.
fn settle_lane<J>(lane: &mut ClientSm<J>, reactor: &mut ClientReactor, token: Token) {
    if lane.io.is_none() {
        return;
    }
    let desired = match lane.phase {
        Phase::Connecting | Phase::Writing => Interest::WRITABLE,
        Phase::Reading => Interest::READABLE,
        _ => Interest::NONE,
    };
    if desired != lane.registered {
        let _ = reactor.set_interest(token, desired);
        lane.registered = desired;
    }
}

/// A timer fired for this lane: resume the pump at the decision the
/// deadline was guarding.
fn on_lane_timer<J: LaneJob>(lane: &mut ClientSm<J>, ctx: &mut DriverCtx<'_>, token: Token) {
    match lane.phase {
        Phase::Backoff => pump_lane(lane, ctx, token, Step::Admit),
        Phase::BreakerWait => pump_lane(lane, ctx, token, Step::Begin),
        Phase::ThrottleWait => pump_lane(lane, ctx, token, Step::Send),
        Phase::Connecting => {
            let step = absorb(
                lane,
                ctx,
                token,
                Err(io::Error::new(io::ErrorKind::TimedOut, "connect timed out").into()),
            );
            pump_lane(lane, ctx, token, step);
        }
        Phase::Reading => {
            let step = absorb(
                lane,
                ctx,
                token,
                Err(io::Error::new(io::ErrorKind::TimedOut, "client read timed out").into()),
            );
            pump_lane(lane, ctx, token, step);
        }
        _ => {}
    }
}

/// An I/O event woke this lane: settle the connect handshake if one is
/// in flight, then continue the lane's I/O.
fn on_lane_event<J: LaneJob>(lane: &mut ClientSm<J>, ctx: &mut DriverCtx<'_>, token: Token) {
    if lane.phase == Phase::Connecting {
        let fd = match &lane.io {
            Some(ClientIo::Tcp(s)) => stream_fd(s),
            _ => {
                // Sim lanes never park in Connecting.
                pump_lane(lane, ctx, token, Step::Drive);
                return;
            }
        };
        match mio::take_socket_error(fd) {
            Ok(()) => {
                ctx.wheel.cancel(token);
                lane.phase = Phase::Writing;
                pump_lane(lane, ctx, token, Step::Drive);
            }
            Err(e) => {
                let step = absorb(lane, ctx, token, Err(e.into()));
                pump_lane(lane, ctx, token, step);
            }
        }
        return;
    }
    pump_lane(lane, ctx, token, Step::Drive);
}

/// Drive a set of [`ClientSm`] lanes to completion over one readiness
/// loop — the non-blocking replacement for one-thread-per-connection.
///
/// The substrate follows the endpoint: TCP endpoints run on kernel epoll
/// (Linux; construction fails elsewhere so callers can fall back to the
/// threaded path), sim endpoints on the seeded deterministic
/// [`mio::SimReactor`]. With `server_step` the driver runs in *lockstep*
/// against an in-process steppable sim server: each round first drains
/// the server, then polls the client reactor with a zero timeout — no
/// threads, no wall clock, so the full multi-connection schedule (event
/// order included, witnessed by [`DriveReport::digest`]) replays
/// bit-for-bit from the seed. Without it the server runs in its own
/// thread and sim lanes park on a shared [`Parker`] that server writes
/// notify.
///
/// Lanes are pumped eagerly before the first poll, so every lane's first
/// request is on the wire (in flight) before any response is read —
/// one worker really does hold `lanes.len()` concurrent connections.
pub fn drive_lanes<J: LaneJob>(
    endpoint: &Endpoint,
    specs: Vec<LaneSpec<J>>,
    opts: &LaneOpts,
    mut server_step: Option<&mut dyn FnMut() -> usize>,
) -> Result<(Vec<LaneOutcome<J>>, DriveReport)> {
    let lockstep = server_step.is_some();
    let (mut reactor, client_parker, digest) = match endpoint {
        Endpoint::Tcp(_) => (ClientReactor::Epoll(mio::EpollReactor::new()?), None, None),
        Endpoint::Sim(_) => {
            let parker = Parker::new();
            let sim = mio::SimReactor::with_parker(opts.sim_seed, Arc::clone(&parker));
            let digest = sim.digest_handle();
            (ClientReactor::Sim(sim), Some(parker), Some(digest))
        }
    };
    let tcp = matches!(endpoint, Endpoint::Tcp(_));
    // The loop clock: wall milliseconds under epoll, logical ticks under
    // sim (empty polls jump to the next armed deadline; busy polls tick).
    // gaugelint: deterministic-via(clock) — the lane deadline clock is inherently wall-time under epoll; the deterministic path (sim) uses a logical clock
    let t0 = std::time::Instant::now();
    let mut lanes: Vec<ClientSm<J>> = specs
        .into_iter()
        .map(|s| ClientSm::new(s.connection_id, s.retry, s.job))
        .collect();
    let mut wheel = TimerWheel::new();
    let mut events = Events::new();
    let mut clock: u64 = 0;
    let mut report = DriveReport::default();
    let mut stuck: u32 = 0;
    let mut scratch: Vec<Token> = Vec::new();

    {
        let mut ctx = DriverCtx {
            endpoint,
            reactor: &mut reactor,
            wheel: &mut wheel,
            opts,
            client_parker: client_parker.clone(),
            now: clock,
            tcp,
        };
        for (i, lane) in lanes.iter_mut().enumerate() {
            pump_lane(lane, &mut ctx, Token(i), Step::TakeJob);
        }
    }
    for (i, lane) in lanes.iter_mut().enumerate() {
        settle_lane(lane, &mut reactor, Token(i));
    }

    loop {
        let in_flight = lanes.iter().filter(|l| l.in_flight()).count();
        report.peak_in_flight = report.peak_in_flight.max(in_flight);
        if lanes.iter().all(|l| l.phase == Phase::Finished) {
            break;
        }

        let mut served = 0usize;
        if let Some(step) = server_step.as_deref_mut() {
            loop {
                let n = step();
                served += n;
                if n == 0 {
                    break;
                }
            }
        }

        let timeout = if lockstep {
            Some(Duration::ZERO)
        } else if tcp {
            let ahead = wheel
                .next_deadline()
                .map(|d| d.saturating_sub(clock))
                .unwrap_or(25);
            Some(Duration::from_millis(ahead.clamp(1, 25)))
        } else {
            Some(Duration::from_millis(2))
        };
        let n = reactor.poll(&mut events, timeout)?;
        report.rounds += 1;

        if tcp {
            clock = t0.elapsed().as_millis() as u64;
        } else if n == 0 {
            if let Some(d) = wheel.next_deadline() {
                clock = clock.max(d);
            }
        } else {
            clock += 1;
        }

        let fired = wheel.expire(clock);
        let fired_count = fired.len();
        {
            let mut ctx = DriverCtx {
                endpoint,
                reactor: &mut reactor,
                wheel: &mut wheel,
                opts,
                client_parker: client_parker.clone(),
                now: clock,
                tcp,
            };
            for token in fired {
                if let Some(lane) = lanes.get_mut(token.0) {
                    on_lane_timer(lane, &mut ctx, token);
                }
            }
            scratch.clear();
            scratch.extend(events.iter().map(|ev| ev.token));
            for &token in scratch.iter() {
                if let Some(lane) = lanes.get_mut(token.0) {
                    on_lane_event(lane, &mut ctx, token);
                }
            }
        }
        for (i, lane) in lanes.iter_mut().enumerate() {
            settle_lane(lane, &mut reactor, Token(i));
        }

        if lockstep && n == 0 && fired_count == 0 && served == 0 {
            stuck += 1;
            if stuck >= LOCKSTEP_STUCK_LIMIT {
                return Err(StoreError::Protocol(
                    "lockstep client reactor deadlocked: lanes pending with no events, timers or server progress"
                        .into(),
                ));
            }
        } else {
            stuck = 0;
        }
    }

    let digest = digest.map_or(0, |d| d.load(std::sync::atomic::Ordering::SeqCst));
    report.digest = digest;
    let outcomes = lanes
        .into_iter()
        .map(|l| LaneOutcome {
            connection_id: l.connection_id,
            job: l.job,
            stats: l.stats,
        })
        .collect();
    Ok((outcomes, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultPlan, FaultPlanConfig};
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::crawler::Crawler;
    use crate::reactor::ReactorMode;
    use crate::server::{ServerOptions, StoreServer};

    fn sim_server(chaos: Option<FaultPlan>) -> StoreServer {
        StoreServer::start_with(
            generate(CorpusScale::Tiny, Snapshot::Y2021, 7),
            ServerOptions {
                chaos,
                reactor: Some(ReactorMode::Sim),
                ..ServerOptions::default()
            },
        )
        .unwrap()
    }

    fn spec(id: u64, routes: Vec<(Route, bool)>) -> LaneSpec<RouteListJob> {
        LaneSpec {
            connection_id: id,
            retry: RetryPolicy::default(),
            job: RouteListJob::new(routes),
        }
    }

    #[test]
    fn route_list_lanes_match_blocking_fetches() {
        let server = sim_server(None);
        let routes: Vec<(Route, bool)> = vec![
            (Route::Categories, false),
            (
                Route::Category {
                    name: "finance".into(),
                    start: 0,
                    count: 100,
                },
                false,
            ),
            (Route::Categories, false),
        ];
        let specs = (1..=4u64).map(|id| spec(id, routes.clone())).collect();
        let (outcomes, report) =
            drive_lanes(&server.endpoint(), specs, &LaneOpts::default(), None).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(report.peak_in_flight >= 1);

        let mut blocking = Crawler::builder_at(server.endpoint())
            .connection_id(1)
            .build()
            .unwrap();
        let want: Vec<Vec<u8>> = routes
            .iter()
            .map(|(r, _)| blocking.fetch(r).unwrap().body)
            .collect();
        for o in outcomes {
            let results = o.job.into_results();
            assert_eq!(results.len(), routes.len());
            for (got, want) in results.iter().zip(&want) {
                assert_eq!(&got.as_ref().unwrap().body, want);
            }
            assert_eq!(o.stats.requests, routes.len() as u64);
            assert_eq!(o.stats.retries, 0);
            assert_eq!(o.stats.reconnects, 0, "keep-alive lanes never re-dial");
        }
    }

    /// The crawl job on a lane must replay the blocking walk exactly:
    /// same apps, same dropouts, same counters, calm or chaotic.
    fn assert_lane_matches_blocking(chaos: Option<FaultPlanConfig>) {
        let plan = chaos.clone().map(FaultPlan::new);
        let server = sim_server(plan);
        let cats = Crawler::builder_at(server.endpoint())
            .connection_id(0)
            .build()
            .unwrap()
            .categories()
            .unwrap();
        let assigned: Vec<(usize, String)> = cats.iter().cloned().enumerate().collect();

        let specs = vec![LaneSpec {
            connection_id: 1,
            retry: RetryPolicy::default(),
            job: CrawlLaneJob::new(assigned, CrawlerConfig::default().page_size, None),
        }];
        let (mut outcomes, _) =
            drive_lanes(&server.endpoint(), specs, &LaneOpts::default(), None).unwrap();
        let lane = outcomes.remove(0);
        let shards = lane.job.into_shards();

        let plan = chaos.map(FaultPlan::new);
        let server2 = sim_server(plan);
        let mut blocking = Crawler::builder_at(server2.endpoint())
            .connection_id(1)
            .build()
            .unwrap();
        let mut want_apps = Vec::new();
        let mut want_drops = Vec::new();
        for cat in &cats {
            let (a, d) = blocking.crawl_category(cat);
            want_apps.extend(a);
            want_drops.extend(d);
        }

        let got_apps: Vec<_> = shards.iter().flat_map(|s| s.apps.clone()).collect();
        let got_drops: Vec<_> = shards.iter().flat_map(|s| s.dropouts.clone()).collect();
        assert_eq!(got_apps, want_apps);
        assert_eq!(got_drops, want_drops);
        assert_eq!(&lane.stats, blocking.stats());
    }

    #[test]
    fn crawl_lane_matches_blocking_walk_calm() {
        assert_lane_matches_blocking(None);
    }

    #[test]
    fn crawl_lane_matches_blocking_walk_under_chaos() {
        assert_lane_matches_blocking(Some(FaultPlanConfig {
            seed: 0xC0FFEE,
            fault_permille: 250,
            ..FaultPlanConfig::default()
        }));
    }

    /// One lockstep run: no threads, no wall clock. Returns the client
    /// event digest, the server event digest and every response body.
    fn lockstep_run(client_seed: u64, server_seed: u64, chaos: bool) -> (u64, u64, Vec<Vec<u8>>) {
        let chaos = chaos.then(|| {
            FaultPlan::new(FaultPlanConfig {
                seed: 0xFEED,
                fault_permille: 300,
                ..FaultPlanConfig::default()
            })
        });
        let mut server = crate::server::LockstepServer::start(
            generate(CorpusScale::Tiny, Snapshot::Y2021, 7),
            ServerOptions {
                chaos,
                reactor_seed: server_seed,
                ..ServerOptions::default()
            },
        );
        let routes = vec![
            (Route::Categories, false),
            (
                Route::Category {
                    name: "finance".into(),
                    start: 0,
                    count: 100,
                },
                false,
            ),
        ];
        let specs = (1..=8u64).map(|id| spec(id, routes.clone())).collect();
        let opts = LaneOpts {
            sim_seed: client_seed,
            ..LaneOpts::default()
        };
        let endpoint = server.endpoint();
        let (outcomes, report) =
            drive_lanes(&endpoint, specs, &opts, Some(&mut || server.step())).unwrap();
        let bodies = outcomes
            .into_iter()
            .flat_map(|o| o.job.into_results())
            .map(|r| r.unwrap().body)
            .collect();
        (report.digest, server.reactor_digest(), bodies)
    }

    #[test]
    fn lockstep_replays_bit_for_bit_from_the_seeds() {
        let a = lockstep_run(5, 7, false);
        let b = lockstep_run(5, 7, false);
        assert_eq!(a, b, "same seeds must replay the same schedule");
        assert_ne!(a.0, 0, "client digest records delivered events");
    }

    #[test]
    fn lockstep_replays_bit_for_bit_under_chaos() {
        let a = lockstep_run(9, 3, true);
        let b = lockstep_run(9, 3, true);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_chaos_retries_through_the_lane_and_still_answers() {
        let cfg = FaultPlanConfig {
            seed: 11,
            fault_permille: 400,
            ..FaultPlanConfig::default()
        };
        let server = sim_server(Some(FaultPlan::new(cfg)));
        let routes = vec![(Route::Categories, false); 8];
        let specs = vec![spec(3, routes)];
        let (mut outcomes, _) =
            drive_lanes(&server.endpoint(), specs, &LaneOpts::default(), None).unwrap();
        let o = outcomes.remove(0);
        assert!(o.stats.retries > 0, "chaos at 40% must force retries");
        assert!(o.stats.requests >= 8 + o.stats.retries);
        for r in o.job.into_results() {
            // Bounded chaos (fewer faults per route than attempts) always
            // recovers — every planned route still answers.
            assert!(r.is_ok(), "{r:?}");
        }
    }
}
