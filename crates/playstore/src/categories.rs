//! Play Store categories and per-category DNN densities.
//!
//! The weights below shape Fig. 4 (models per category, 2021) and Fig. 5
//! (models added/removed between snapshots): communication and finance
//! lead in 2021 — a pandemic-era reshuffle away from 2020's
//! photography-first ranking — while lifestyle, food & drink and Wear
//! shrink (§4.4, §4.6).

/// One Play Store category row with its model-count weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Category {
    /// Store display name.
    pub name: &'static str,
    /// Relative weight for DNN model instances in the 2021 snapshot.
    pub models_2021: u32,
    /// Relative weight for DNN model instances in the 2020 snapshot.
    pub models_2020: u32,
    /// Relative weight for cloud-ML-API-using apps (Fig. 15).
    pub cloud_apps: u32,
}

/// The full category roster (34 categories, enough that 500-app pages
/// cover the paper's 16.6 k-app snapshot).
pub const CATEGORIES: [Category; 34] = [
    Category { name: "communication", models_2021: 283, models_2020: 90, cloud_apps: 60 },
    Category { name: "finance", models_2021: 230, models_2020: 85, cloud_apps: 75 },
    Category { name: "photography", models_2021: 180, models_2020: 140, cloud_apps: 50 },
    Category { name: "beauty", models_2021: 130, models_2020: 95, cloud_apps: 25 },
    Category { name: "social", models_2021: 120, models_2020: 70, cloud_apps: 45 },
    Category { name: "productivity", models_2021: 90, models_2020: 55, cloud_apps: 40 },
    Category { name: "tools", models_2021: 80, models_2020: 50, cloud_apps: 35 },
    Category { name: "video players", models_2021: 70, models_2020: 40, cloud_apps: 20 },
    Category { name: "health & fitness", models_2021: 60, models_2020: 18, cloud_apps: 22 },
    Category { name: "business", models_2021: 50, models_2020: 30, cloud_apps: 30 },
    Category { name: "shopping", models_2021: 45, models_2020: 28, cloud_apps: 28 },
    Category { name: "medical", models_2021: 45, models_2020: 12, cloud_apps: 15 },
    Category { name: "education", models_2021: 40, models_2020: 22, cloud_apps: 18 },
    Category { name: "entertainment", models_2021: 35, models_2020: 20, cloud_apps: 16 },
    Category { name: "maps & navigation", models_2021: 30, models_2020: 18, cloud_apps: 12 },
    Category { name: "music & audio", models_2021: 25, models_2020: 15, cloud_apps: 10 },
    Category { name: "news & magazines", models_2021: 20, models_2020: 12, cloud_apps: 8 },
    Category { name: "sports", models_2021: 18, models_2020: 10, cloud_apps: 6 },
    Category { name: "travel & local", models_2021: 15, models_2020: 8, cloud_apps: 9 },
    Category { name: "dating", models_2021: 14, models_2020: 8, cloud_apps: 5 },
    Category { name: "parenting", models_2021: 12, models_2020: 7, cloud_apps: 3 },
    Category { name: "books & reference", models_2021: 12, models_2020: 6, cloud_apps: 4 },
    Category { name: "food & drink", models_2021: 10, models_2020: 22, cloud_apps: 4 },
    Category { name: "personalization", models_2021: 9, models_2020: 6, cloud_apps: 2 },
    Category { name: "art & design", models_2021: 8, models_2020: 5, cloud_apps: 2 },
    Category { name: "lifestyle", models_2021: 8, models_2020: 28, cloud_apps: 3 },
    Category { name: "auto & vehicles", models_2021: 6, models_2020: 3, cloud_apps: 2 },
    Category { name: "house & home", models_2021: 5, models_2020: 3, cloud_apps: 1 },
    Category { name: "weather", models_2021: 5, models_2020: 2, cloud_apps: 1 },
    Category { name: "android wear", models_2021: 4, models_2020: 12, cloud_apps: 1 },
    Category { name: "events", models_2021: 3, models_2020: 1, cloud_apps: 1 },
    Category { name: "comics", models_2021: 2, models_2020: 1, cloud_apps: 0 },
    Category { name: "libraries & demo", models_2021: 2, models_2020: 1, cloud_apps: 0 },
    Category { name: "games", models_2021: 0, models_2020: 0, cloud_apps: 4 },
];

/// Apportion `total` units across `weights` with the largest-remainder
/// method (exact total, deterministic).
pub fn apportion(weights: &[u32], total: u32) -> Vec<u32> {
    let sum: u64 = weights.iter().map(|&w| w as u64).sum();
    if sum == 0 || total == 0 {
        return vec![0; weights.len()];
    }
    let mut out: Vec<u32> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, u64)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = w as u64 * total as u64;
        let floor = exact / sum;
        out.push(floor as u32);
        assigned += floor;
        remainders.push((i, exact % sum));
    }
    // Hand out the leftover units to the largest remainders (ties by
    // index for determinism).
    remainders.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let leftover = (total as u64 - assigned) as usize;
    for &(i, _) in remainders.iter().take(leftover) {
        out[i] += 1;
    }
    out
}

/// Index of a category by name.
pub fn category_index(name: &str) -> Option<usize> {
    CATEGORIES.iter().position(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_exact_total() {
        let w = [3, 1, 1];
        let a = apportion(&w, 10);
        assert_eq!(a.iter().sum::<u32>(), 10);
        assert_eq!(a[0], 6);
    }

    #[test]
    fn apportion_zero_cases() {
        assert_eq!(apportion(&[0, 0], 5), vec![0, 0]);
        assert_eq!(apportion(&[1, 2], 0), vec![0, 0]);
    }

    #[test]
    fn apportion_deterministic_ties() {
        let a = apportion(&[1, 1, 1], 2);
        let b = apportion(&[1, 1, 1], 2);
        assert_eq!(a, b);
        assert_eq!(a.iter().sum::<u32>(), 2);
    }

    #[test]
    fn fig4_ranking_2021() {
        // communication and finance lead in '21; photography led in '20.
        let top21 = CATEGORIES
            .iter()
            .max_by_key(|c| c.models_2021)
            .unwrap()
            .name;
        assert_eq!(top21, "communication");
        let top20 = CATEGORIES
            .iter()
            .max_by_key(|c| c.models_2020)
            .unwrap()
            .name;
        assert_eq!(top20, "photography");
    }

    #[test]
    fn fig5_decliners() {
        for name in ["lifestyle", "food & drink", "android wear"] {
            let c = CATEGORIES.iter().find(|c| c.name == name).unwrap();
            assert!(
                c.models_2021 < c.models_2020,
                "{name} should decline between snapshots"
            );
        }
    }

    #[test]
    fn category_lookup() {
        assert_eq!(category_index("communication"), Some(0));
        assert_eq!(category_index("nonexistent"), None);
    }
}
