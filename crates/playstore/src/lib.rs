//! # gaugenn-playstore — synthetic Google Play Store + crawler
//!
//! The study's input is the Google Play Store: two snapshots of the top
//! free apps per category (up to 500 each), taken in February 2020 and
//! April 2021 (§4.1). That corpus is not downloadable here, so this crate
//! builds a *store you must still crawl*:
//!
//! * [`categories`] — the Play category roster and the per-category model
//!   densities that shape Figs. 4 and 5.
//! * [`corpus`] — the deterministic corpus generator: app population, the
//!   unique-model pool with its duplication / fine-tuning / quantisation
//!   structure (§4.5, §6.1), cloud-API usage (§6.4), obfuscated-model apps
//!   and the hardware-acceleration adopters (§6.3).
//! * [`proto`] — a small HTTP/1.0-flavoured wire protocol.
//! * [`server`] — a TCP server that serves category listings, app
//!   metadata, APKs (assembled on demand), OBBs and bundles; it honours
//!   user-agent / locale / device-profile headers the way the real store
//!   API shapes responses.
//! * [`crawler`] — the gaugeNN crawler client that walks categories and
//!   downloads everything, mimicking "the web API calls made from the
//!   Google Play store of a typical mobile device" (§3.1).
//!
//! Ground truth (which app got which model) never crosses the wire in
//! analysable form: the pipeline must re-derive every statistic from the
//! downloaded binary artefacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod categories;
pub mod chaos;
pub mod corpus;
pub mod crawler;
pub mod net;
pub mod pool;
pub mod proto;
pub mod query;
pub mod reactor;
pub mod reactor_client;
pub mod route;
pub mod server;

pub use admission::{Admission, AdmissionConfig, AdmissionController, AdmissionStats, BreakerState};
pub use chaos::{FaultKind, FaultPlan, FaultPlanConfig};
pub use corpus::{CorpusScale, Snapshot, StoreCorpus};
pub use crawler::{
    CrawlOutcome, CrawlStage, CrawlStats, CrawledApp, Crawler, CrawlerBuilder, DropOut, RetryPolicy,
};
pub use net::{Endpoint, SimClientHandle, SimNet, SimStream, Transport};
pub use pool::{CrawlPool, CrawlPoolConfig, PoolOutcome, WorkerReport};
pub use query::{QueryClient, QueryClientBuilder, QuerySwarm, SwarmReplay};
pub use reactor::{ReactorMode, Served, REACTOR_ENV};
pub use reactor_client::{
    drive_lanes, nonblocking_tcp_available, DriveReport, LaneJob, LaneOpts, LaneOutcome, LaneSpec,
    RouteListJob,
};
pub use route::Route;
pub use server::{LockstepServer, ServerOptions, StoreServer};

/// Errors from the store substrate.
#[derive(Debug)]
pub enum StoreError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Protocol violation (bad request/response framing).
    Protocol(String),
    /// Requested entity does not exist.
    NotFound(String),
    /// Corpus generation failed (e.g. model encode error).
    Corpus(String),
    /// Transient server-side status (429/503/5xx) — retriable.
    Transient {
        /// The status code served.
        status: u16,
        /// The request path.
        path: String,
    },
    /// Body-integrity check failed (checksum mismatch) — retriable.
    Integrity {
        /// The request path.
        path: String,
    },
    /// The store-wide circuit breaker is open: the request was not sent.
    /// Retriable — the breaker half-opens once its cool-down elapses.
    CircuitOpen {
        /// The request path (query stripped).
        path: String,
    },
    /// A request kept failing after every retry attempt.
    RetriesExhausted {
        /// The request path.
        path: String,
        /// Attempts made.
        attempts: u32,
        /// Final error, stringified.
        last: String,
    },
}

impl StoreError {
    /// Whether retrying the same request may succeed: IO and framing
    /// errors (broken/desynced streams), throttling statuses and
    /// integrity failures are transient; missing entities are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StoreError::Io(_)
                | StoreError::Protocol(_)
                | StoreError::Transient { .. }
                | StoreError::Integrity { .. }
                | StoreError::CircuitOpen { .. }
        )
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Protocol(r) => write!(f, "protocol error: {r}"),
            StoreError::NotFound(e) => write!(f, "not found: {e}"),
            StoreError::Corpus(r) => write!(f, "corpus error: {r}"),
            StoreError::Transient { status, path } => {
                write!(f, "transient status {status} on {path}")
            }
            StoreError::Integrity { path } => {
                write!(f, "body checksum mismatch on {path}")
            }
            StoreError::CircuitOpen { path } => {
                write!(f, "circuit breaker open, request to {path} not sent")
            }
            StoreError::RetriesExhausted {
                path,
                attempts,
                last,
            } => write!(f, "{path} failed after {attempts} attempts: {last}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;
