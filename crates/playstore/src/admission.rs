//! Store-wide admission control for concurrent crawls.
//!
//! Every [`crate::pool::CrawlPool`] worker shares one
//! [`AdmissionController`]: a token-bucket rate limiter that paces the
//! fleet once its burst allowance is spent, and a circuit breaker that
//! opens under sustained 429/503 storms, half-opens after a cool-down,
//! and closes again after enough successful probes.
//!
//! Both mechanisms run on a *logical* millisecond clock, like the
//! crawler's backoff accounting: pacing charges and cool-downs are
//! recorded (and advanced) rather than slept, so chaos tests stay fast
//! and the controller's aggregate counters are reproducible. Callers that
//! talk to a real endpoint can sleep the advertised waits
//! ([`Admission::Granted::throttle_ms`] / retry-after) themselves — the
//! crawler does exactly that when [`crate::crawler::RetryPolicy`] has
//! `real_sleep` set.
//!
//! Determinism note: the merged totals (requests admitted, total pacing
//! charge) are independent of worker interleaving, because each admit
//! consumes exactly one token and pays a fixed charge once the bucket is
//! dry. The breaker's consecutive-failure window *is* shared state, so
//! when it actually opens, which worker gets rejected depends on thread
//! scheduling — by default the determinism guarantee for concurrent chaos
//! crawls therefore holds for any run in which the breaker stays closed
//! (the default thresholds are far above what a bounded, per-route-limited
//! fault plan can produce).
//!
//! # Deterministic open-breaker mode
//!
//! [`AdmissionConfig::deterministic_open`] extends the guarantee to storm
//! scenarios. Instead of racing workers against a shared logical
//! cool-down clock, each open of the breaker starts a new *epoch* with a
//! fixed per-worker rejection budget of `ceil(cooldown_ms /
//! retry_after_ms)`: a worker's first `budget` attempts in the epoch are
//! rejected and every later attempt is admitted (the first worker to
//! exhaust its budget becomes the half-open probe). A worker's verdict
//! sequence is thus a pure function of its own attempt count within the
//! epoch — workers that started paying keep paying even if another
//! worker's probes already closed the breaker — so the aggregate
//! rejection/admission totals cannot depend on thread interleaving.
//! Callers identify themselves via [`AdmissionController::admit_for`]
//! (the crawler passes its connection id).

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Tunables for the [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Requests admitted without pacing before the bucket runs dry.
    pub burst: u64,
    /// Logical pacing charge per admitted request once the bucket is
    /// empty, in milliseconds (the bucket refills at 1 token per
    /// `throttle_ms` of logical time, i.e. the paced steady-state rate).
    pub throttle_ms: u64,
    /// Consecutive transient-status failures (429/503/5xx) that open the
    /// breaker.
    pub failure_threshold: u32,
    /// Logical cool-down an open breaker holds before half-opening.
    pub cooldown_ms: u64,
    /// Wait advised to callers rejected by an open breaker, in
    /// milliseconds; each rejection also advances the logical clock by
    /// this much, which is what eventually reaches the half-open point.
    pub retry_after_ms: u64,
    /// Successful half-open probes required to close the breaker.
    pub success_threshold: u32,
    /// Per-worker rejection budgets while the breaker is open (see the
    /// module docs): totals stay interleaving-independent even through a
    /// storm. Off by default — the legacy shared-clock cool-down remains
    /// the single-caller behaviour.
    pub deterministic_open: bool,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            burst: 256,
            throttle_ms: 2,
            // High enough that a bounded fault plan (faults capped per
            // route, retries interleaved with successes) never opens the
            // breaker by accident; storms that *should* open it are
            // hundreds of consecutive transient statuses.
            failure_threshold: 32,
            cooldown_ms: 100,
            retry_after_ms: 20,
            success_threshold: 2,
            deterministic_open: false,
        }
    }
}

/// Circuit-breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are rejected until the cool-down elapses.
    Open,
    /// Cool-down elapsed: probes are admitted, watching for recovery.
    HalfOpen,
}

/// Verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed, after accounting (or sleeping) the pacing charge.
    Granted {
        /// Rate-limiter pacing charge, ms (0 while the burst lasts).
        throttle_ms: u64,
    },
    /// Breaker is open: do not send, account this wait instead.
    Rejected {
        /// Advised wait before the next attempt, ms.
        retry_after_ms: u64,
    },
}

/// Aggregate counters, observable from [`crate::crawler::CrawlStats`]
/// consumers via [`AdmissionController::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests admitted (throttled or not).
    pub admitted: u64,
    /// Admitted requests that paid a pacing charge.
    pub throttled: u64,
    /// Total pacing charge across all admits, ms.
    pub throttle_ms_total: u64,
    /// Requests rejected by an open breaker.
    pub rejections: u64,
    /// Closed/half-open → open transitions.
    pub breaker_opens: u64,
    /// Half-open → closed transitions.
    pub breaker_closes: u64,
}

#[derive(Debug)]
struct State {
    tokens: u64,
    clock_ms: u64,
    breaker: BreakerState,
    consecutive_failures: u32,
    open_until_ms: u64,
    half_open_successes: u32,
    /// Open-epoch counter: bumped on every closed/half-open → open
    /// transition so per-worker budgets reset for each storm.
    open_epoch: u64,
    /// worker id → (epoch the count belongs to, rejections paid in it).
    /// Stale epochs reset lazily on the worker's next attempt.
    open_paid: BTreeMap<u64, (u64, u32)>,
    stats: AdmissionStats,
}

/// The shared rate limiter + circuit breaker. Wrap it in an `Arc` and
/// hand a clone to every worker's [`crate::crawler::CrawlerBuilder`].
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<State>,
}

impl AdmissionController {
    /// Build a controller.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        let tokens = cfg.burst;
        AdmissionController {
            cfg,
            state: Mutex::new(State {
                tokens,
                clock_ms: 0,
                breaker: BreakerState::Closed,
                consecutive_failures: 0,
                open_until_ms: 0,
                half_open_successes: 0,
                open_epoch: 0,
                open_paid: BTreeMap::new(),
                stats: AdmissionStats::default(),
            }),
        }
    }

    /// The configuration this controller runs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Rejections a worker pays per open epoch in deterministic mode:
    /// the cool-down expressed in whole retry-after waits.
    fn open_budget(&self) -> u32 {
        let per = self.cfg.retry_after_ms.max(1);
        (self.cfg.cooldown_ms.div_ceil(per)).max(1) as u32
    }

    /// Rule on one request, anonymously (worker id 0). See
    /// [`AdmissionController::admit_for`].
    pub fn admit(&self) -> Admission {
        self.admit_for(0)
    }

    /// Rule on one request from `worker`. Call before every attempt;
    /// follow up with [`AdmissionController::report_success`] or
    /// [`AdmissionController::report_transient`] so the breaker sees the
    /// outcome. The worker id only matters in deterministic-open mode,
    /// where it keys the per-worker rejection budget.
    pub fn admit_for(&self, worker: u64) -> Admission {
        let mut st = self.state.lock();
        if self.cfg.deterministic_open {
            // A worker participates in the budget protocol if the breaker
            // is open or half-open (the storm is still in progress), or
            // if it already started paying this epoch (it finishes its
            // budget even after another worker's probes closed the
            // breaker). That makes a worker's verdict sequence a pure
            // function of its own attempt count within the epoch.
            let epoch = st.open_epoch;
            let budget = self.open_budget();
            let paying = st
                .open_paid
                .get(&worker)
                .is_some_and(|&(e, n)| e == epoch && n < budget);
            if st.breaker != BreakerState::Closed || paying {
                let entry = st.open_paid.entry(worker).or_insert((epoch, 0));
                if entry.0 != epoch {
                    *entry = (epoch, 0);
                }
                if entry.1 < budget {
                    entry.1 += 1;
                    st.stats.rejections += 1;
                    return Admission::Rejected {
                        retry_after_ms: self.cfg.retry_after_ms,
                    };
                }
                // Budget paid in full: this worker's next attempt is the
                // half-open probe (or a normal request if another worker
                // already half-opened/closed the breaker).
                if st.breaker == BreakerState::Open {
                    st.breaker = BreakerState::HalfOpen;
                    st.half_open_successes = 0;
                }
            }
        } else if st.breaker == BreakerState::Open {
            // Each rejection advances the logical clock; once the
            // cool-down point is reached the *next* caller becomes the
            // half-open probe.
            st.clock_ms += self.cfg.retry_after_ms;
            if st.clock_ms >= st.open_until_ms {
                st.breaker = BreakerState::HalfOpen;
                st.half_open_successes = 0;
            } else {
                st.stats.rejections += 1;
                return Admission::Rejected {
                    retry_after_ms: self.cfg.retry_after_ms,
                };
            }
        }
        let throttle_ms = if st.tokens > 0 {
            st.tokens -= 1;
            0
        } else {
            st.clock_ms += self.cfg.throttle_ms;
            st.stats.throttled += 1;
            st.stats.throttle_ms_total += self.cfg.throttle_ms;
            self.cfg.throttle_ms
        };
        st.stats.admitted += 1;
        Admission::Granted { throttle_ms }
    }

    /// Record a successful exchange (a 200 came back).
    pub fn report_success(&self) {
        let mut st = self.state.lock();
        st.consecutive_failures = 0;
        if st.breaker == BreakerState::HalfOpen {
            st.half_open_successes += 1;
            if st.half_open_successes >= self.cfg.success_threshold {
                st.breaker = BreakerState::Closed;
                st.stats.breaker_closes += 1;
            }
        }
    }

    /// Record a transient-status failure (429/503/5xx). Enough of these
    /// in a row open the breaker; one during half-open re-opens it.
    pub fn report_transient(&self) {
        let mut st = self.state.lock();
        match st.breaker {
            BreakerState::Open => {}
            BreakerState::HalfOpen => self.open(&mut st),
            BreakerState::Closed => {
                st.consecutive_failures += 1;
                if st.consecutive_failures >= self.cfg.failure_threshold {
                    self.open(&mut st);
                }
            }
        }
    }

    fn open(&self, st: &mut State) {
        st.breaker = BreakerState::Open;
        st.open_until_ms = st.clock_ms + self.cfg.cooldown_ms;
        st.consecutive_failures = 0;
        st.open_epoch += 1;
        st.stats.breaker_opens += 1;
    }

    /// Current breaker state.
    pub fn state(&self) -> BreakerState {
        self.state.lock().breaker
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            burst: 4,
            throttle_ms: 3,
            failure_threshold: 3,
            cooldown_ms: 40,
            retry_after_ms: 20,
            success_threshold: 2,
            deterministic_open: false,
        }
    }

    #[test]
    fn burst_then_paced() {
        let c = AdmissionController::new(cfg());
        for i in 0..4 {
            assert_eq!(c.admit(), Admission::Granted { throttle_ms: 0 }, "{i}");
        }
        for i in 0..5 {
            assert_eq!(c.admit(), Admission::Granted { throttle_ms: 3 }, "{i}");
        }
        let s = c.stats();
        assert_eq!(s.admitted, 9);
        assert_eq!(s.throttled, 5);
        assert_eq!(s.throttle_ms_total, 15);
    }

    #[test]
    fn breaker_opens_under_429_storm_and_recovers() {
        let c = AdmissionController::new(cfg());
        // Sustained storm: three consecutive transient statuses open it.
        for _ in 0..3 {
            assert!(matches!(c.admit(), Admission::Granted { .. }));
            c.report_transient();
        }
        assert_eq!(c.state(), BreakerState::Open);
        // During the cool-down, requests are rejected with a retry-after.
        let r = c.admit();
        assert_eq!(r, Admission::Rejected { retry_after_ms: 20 });
        assert_eq!(c.state(), BreakerState::Open);
        // cooldown 40ms at 20ms per rejection: the second admit after the
        // open crosses the cool-down point and is let through as the
        // half-open probe.
        assert!(matches!(c.admit(), Admission::Granted { .. }));
        assert_eq!(c.state(), BreakerState::HalfOpen);
        // Two successful probes close it.
        c.report_success();
        assert_eq!(c.state(), BreakerState::HalfOpen);
        assert!(matches!(c.admit(), Admission::Granted { .. }));
        c.report_success();
        assert_eq!(c.state(), BreakerState::Closed);
        let s = c.stats();
        assert_eq!(s.breaker_opens, 1);
        assert_eq!(s.breaker_closes, 1);
        assert_eq!(s.rejections, 1);
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let c = AdmissionController::new(cfg());
        for _ in 0..3 {
            c.admit();
            c.report_transient();
        }
        while c.state() == BreakerState::Open {
            c.admit();
        }
        assert_eq!(c.state(), BreakerState::HalfOpen);
        c.report_transient();
        assert_eq!(c.state(), BreakerState::Open, "bad probe reopens");
        assert_eq!(c.stats().breaker_opens, 2);
    }

    #[test]
    fn successes_reset_the_failure_window() {
        let c = AdmissionController::new(cfg());
        // Alternating failure/success never accumulates to the threshold.
        for _ in 0..20 {
            c.admit();
            c.report_transient();
            c.admit();
            c.report_success();
        }
        assert_eq!(c.state(), BreakerState::Closed);
        assert_eq!(c.stats().breaker_opens, 0);
    }

    #[test]
    fn deterministic_open_storm_totals_are_interleaving_independent() {
        // Open the breaker, then storm it with 4 workers x 6 attempts in
        // two very different interleavings: fully sequential, and fully
        // threaded. With per-worker budgets (ceil(40/20) = 2 rejections
        // each) the aggregate stats must match exactly.
        let det = AdmissionConfig {
            deterministic_open: true,
            ..cfg()
        };
        let storm = |threaded: bool| -> AdmissionStats {
            let c = AdmissionController::new(det.clone());
            for _ in 0..3 {
                c.admit_for(99);
                c.report_transient();
            }
            assert_eq!(c.state(), BreakerState::Open);
            if threaded {
                let cref = &c;
                std::thread::scope(|s| {
                    for w in 0..4u64 {
                        s.spawn(move || {
                            for _ in 0..6 {
                                cref.admit_for(w);
                            }
                        });
                    }
                });
            } else {
                for w in 0..4u64 {
                    for _ in 0..6 {
                        c.admit_for(w);
                    }
                }
            }
            c.stats()
        };
        let seq = storm(false);
        let par = storm(true);
        assert_eq!(seq, par, "storm totals must not depend on interleaving");
        // Every worker pays exactly its 2-rejection budget and gets its
        // remaining 4 attempts admitted.
        assert_eq!(seq.rejections, 4 * 2);
        assert_eq!(seq.admitted, 3 + 4 * 4);
        assert_eq!(seq.breaker_opens, 1);
    }

    #[test]
    fn deterministic_open_worker_verdicts_are_a_pure_function_of_attempts() {
        let c = AdmissionController::new(AdmissionConfig {
            deterministic_open: true,
            ..cfg()
        });
        for _ in 0..3 {
            c.admit_for(0);
            c.report_transient();
        }
        // Worker 7: exactly budget (=2) rejections, then granted.
        assert!(matches!(c.admit_for(7), Admission::Rejected { .. }));
        assert!(matches!(c.admit_for(7), Admission::Rejected { .. }));
        assert!(matches!(c.admit_for(7), Admission::Granted { .. }));
        assert_eq!(c.state(), BreakerState::HalfOpen);
        // Worker 8 arrives after the half-open transition but still pays
        // its own budget before being admitted — its verdict sequence
        // cannot depend on what worker 7 did first.
        assert!(matches!(c.admit_for(8), Admission::Rejected { .. }));
        assert!(matches!(c.admit_for(8), Admission::Rejected { .. }));
        assert!(matches!(c.admit_for(8), Admission::Granted { .. }));
        // A fresh storm starts a fresh epoch with fresh budgets.
        c.report_transient(); // half-open probe failed: reopen
        assert_eq!(c.state(), BreakerState::Open);
        assert!(matches!(c.admit_for(7), Admission::Rejected { .. }));
        assert_eq!(c.stats().breaker_opens, 2);
    }

    #[test]
    fn totals_are_interleaving_independent() {
        // The invariant the pool's determinism rests on: N admits cost the
        // same aggregate pacing charge no matter how callers interleave.
        let a = AdmissionController::new(cfg());
        for _ in 0..50 {
            a.admit();
        }
        let b = AdmissionController::new(cfg());
        let bref = &b;
        std::thread::scope(|s| {
            for _ in 0..5 {
                s.spawn(move || {
                    for _ in 0..10 {
                        bref.admit();
                    }
                });
            }
        });
        assert_eq!(a.stats(), b.stats());
    }
}
