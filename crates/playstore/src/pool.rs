//! Sharded concurrent crawl pool.
//!
//! A [`CrawlPool`] partitions the store's category space across N worker
//! threads. Each worker owns a private [`Crawler`] (its own connection,
//! its own connection id, its own retry/backoff jitter stream). Which
//! worker crawls which category is decided **before any worker thread
//! starts** by the shared deterministic scheduler in [`gaugenn_sched`]:
//!
//! * [`SchedMode::Static`] reproduces the original `index % workers`
//!   partition;
//! * [`SchedMode::Lpt`] (the default) assigns categories
//!   largest-catalog-first to the least-loaded worker, so one heavy
//!   category no longer straggles whatever shard its index happens to
//!   fall in;
//! * [`SchedMode::Stealing`] rebalances the static partition with a
//!   planned steal sequence that is a pure function of
//!   `(seed, thief id, round)`.
//!
//! Category sizes come from [`CrawlPoolConfig::size_hints`] when the
//! caller has real byte counts (e.g. the previous snapshot's crawl of the
//! same store), otherwise from a bootstrap probe that lists each category
//! once on connection 0 and uses the listed app count as the catalog size
//! estimate.
//!
//! All workers share one [`AdmissionController`]: the fleet collectively
//! respects a single store-wide rate limit, and a sustained 429/503 storm
//! trips one circuit breaker for everybody.
//!
//! # Determinism
//!
//! The merged [`CrawlOutcome`] is assembled in category-index order, not
//! completion order, so a chaos run with a fixed seed produces a
//! byte-identical corpus and drop-out ledger no matter how the workers
//! interleave — and no matter which scheduling mode assigned the shards:
//!
//! * the assignment is computed up front from `(category sizes, workers,
//!   mode, seed)` — no runtime work stealing, no shared queues — and each
//!   worker walks its shard in ascending category-index order;
//! * chaos fault schedules cap transient faults per route and make
//!   permanent faults connection-independent (see [`crate::chaos`]), so
//!   reassigning a category to a different connection never changes
//!   whether it survives;
//! * the shared admission controller's aggregate charges are
//!   interleaving-independent while the breaker stays closed (see
//!   [`crate::admission`]).
//!
//! Per-worker *throttle* counters are the one thing that legitimately
//! varies run to run (which worker drains the last burst token is a
//! race); only the merged sums are stable, which is why
//! [`PoolOutcome::outcome`] carries merged stats and the per-worker
//! reports are explicitly diagnostic.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::crawler::{CrawlOutcome, CrawlStats, CrawledApp, Crawler, CrawlerConfig, DropOut, RetryPolicy};
use crate::net::Endpoint;
use crate::reactor::ReactorMode;
use crate::reactor_client::{drive_lanes, CrawlLaneJob, LaneOpts, LaneSpec};
use crate::Result;
use gaugenn_sched::{assign, SchedMode, WorkUnit};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Tunables for a [`CrawlPool`].
#[derive(Debug, Clone)]
pub struct CrawlPoolConfig {
    /// Worker threads (each with its own store connection). Clamped to a
    /// minimum of 1.
    pub workers: usize,
    /// Identity/paging configuration every worker crawls with.
    pub crawler: CrawlerConfig,
    /// Retry policy every worker runs under.
    pub retry: RetryPolicy,
    /// Store-wide admission control shared by the whole fleet.
    pub admission: AdmissionConfig,
    /// How categories are partitioned across workers. Defaults to the
    /// `GAUGENN_SCHED` environment variable (falling back to LPT).
    pub sched: SchedMode,
    /// Seed for the planned-steal sequence ([`SchedMode::Stealing`] only).
    pub sched_seed: u64,
    /// Per-category catalog sizes in bytes, when the caller already knows
    /// them (e.g. measured by the previous snapshot's crawl). When absent
    /// and the mode is size-aware, the pool probes each category's listing
    /// once on the bootstrap connection and uses the app count instead.
    pub size_hints: Option<BTreeMap<String, u64>>,
    /// Resume cache shared by every worker: apps a replayed crash
    /// journal already holds (see
    /// [`crate::crawler::CrawlerBuilder::resume_cache`]).
    pub resume: Option<Arc<BTreeMap<String, CrawledApp>>>,
    /// Connections each worker multiplexes (clamped to a minimum of 1).
    /// With the threaded client this many blocking connections are
    /// driven *sequentially* per worker (the determinism baseline); with
    /// a reactor client one worker thread drives them all concurrently
    /// as non-blocking lanes. Lane `j` of worker `w` always announces
    /// connection id `w·C + j + 1`, so the corpus and the merged
    /// counters are byte-identical across client modes at any fixed
    /// `(workers, connections_per_worker)` topology.
    pub connections_per_worker: usize,
    /// Client transport override. `None` resolves `GAUGENN_REACTOR` and
    /// falls back to the threaded (blocking) client. Any non-threaded
    /// choice runs the worker's connections as non-blocking lanes on the
    /// substrate the endpoint dictates: kernel epoll for TCP (falling
    /// back to threaded where epoll is unavailable), the deterministic
    /// sim reactor for sim endpoints.
    pub reactor: Option<ReactorMode>,
}

impl Default for CrawlPoolConfig {
    fn default() -> Self {
        CrawlPoolConfig {
            workers: 4,
            crawler: CrawlerConfig::default(),
            retry: RetryPolicy::default(),
            admission: AdmissionConfig::default(),
            sched: SchedMode::from_env(),
            sched_seed: 0,
            size_hints: None,
            resume: None,
            connections_per_worker: 1,
            reactor: None,
        }
    }
}

/// Diagnostic summary of one worker's share of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// First connection id in the worker's lane block (`w·C + 1` for
    /// `C = connections_per_worker`; the bootstrap category fetch uses
    /// connection 0). Lane `j` announces `w·C + j + 1`.
    pub connection_id: u64,
    /// Categories in this worker's shard.
    pub categories: usize,
    /// Apps the worker crawled successfully.
    pub apps: usize,
    /// Bytes (APK + OBB + bundle) the worker pulled — the load-balance
    /// metric `poolbench` compares across scheduling modes.
    pub bytes: u64,
    /// Drop-outs the worker recorded.
    pub dropouts: usize,
    /// The worker's own resilience counters. Note: throttle counters are
    /// interleaving-dependent (which worker drains the last burst token
    /// is a race) — only the merged sums in
    /// [`PoolOutcome::outcome`] are run-to-run stable.
    pub stats: CrawlStats,
}

/// Everything a pooled sweep produced.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Merged corpus + drop-out ledger + summed stats, in deterministic
    /// category-index order — byte-identical to what the same seed
    /// produces at any worker count and in any scheduling mode while the
    /// breaker stays closed.
    pub outcome: CrawlOutcome,
    /// Per-worker diagnostics, in worker order.
    pub per_worker: Vec<WorkerReport>,
    /// Aggregate admission-controller counters for the fleet.
    pub admission: AdmissionStats,
    /// Worker count actually used.
    pub workers: usize,
    /// Scheduling mode the shards were assigned under.
    pub sched: SchedMode,
    /// Client transport the workers actually ran (after fallbacks):
    /// `Threaded` for blocking connections, `Epoll`/`Sim` for
    /// non-blocking lanes on the respective substrate.
    pub reactor: ReactorMode,
    /// Most connections any single worker held in flight at once —
    /// `connections_per_worker` when the reactor client saturates, 1 on
    /// the blocking baseline.
    pub peak_in_flight: usize,
}

/// One worker's crawl of one category, tagged with the category's global
/// index so shards merge deterministically.
struct CategoryShard {
    index: usize,
    apps: Vec<CrawledApp>,
    dropouts: Vec<DropOut>,
}

/// What one worker hands back to the merge: its shards, its summed
/// connection stats (lane order), and the most connections it held in
/// flight at once.
type WorkerYield = (Vec<CategoryShard>, CrawlStats, usize);

/// Split one worker's shard across its connections round-robin (lane `j`
/// takes positions `j, j+C, …`), preserving ascending category-index
/// order within each lane so every lane walks its categories the way a
/// dedicated blocking crawler would.
fn lane_split(shard: &[usize], lanes: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); lanes];
    for (pos, &idx) in shard.iter().enumerate() {
        out[pos % lanes].push(idx);
    }
    out
}

/// The blocking client: drive this worker's lanes *sequentially*, one
/// keep-alive connection each — the baseline every reactor mode must
/// byte-match at the same `(workers, connections_per_worker)` topology.
fn crawl_shard_blocking(
    endpoint: &Endpoint,
    config: &CrawlPoolConfig,
    admission: &Arc<AdmissionController>,
    categories: &[String],
    w: usize,
    lanes: &[Vec<usize>],
) -> Result<WorkerYield> {
    let conns = lanes.len();
    let mut shards = Vec::new();
    let mut stats = CrawlStats::default();
    let mut active = 0usize;
    for (j, lane) in lanes.iter().enumerate() {
        // A single-connection worker keeps the historical eager dial even
        // when idle; extra lanes only dial when they have work (parity
        // with reactor lanes, which connect lazily).
        if conns > 1 && lane.is_empty() {
            continue;
        }
        let mut builder = Crawler::builder_at(endpoint.clone())
            .config(config.crawler.clone())
            .retry(config.retry.clone())
            .connection_id((w * conns + j) as u64 + 1)
            .admission(Arc::clone(admission));
        if let Some(resume) = &config.resume {
            builder = builder.resume_cache(Arc::clone(resume));
        }
        let mut crawler = builder.build()?;
        if !lane.is_empty() {
            active = 1;
        }
        for &index in lane {
            let (apps, dropouts) = crawler.crawl_category(&categories[index]);
            shards.push(CategoryShard {
                index,
                apps,
                dropouts,
            });
        }
        stats.merge(crawler.stats());
    }
    Ok((shards, stats, active))
}

/// The reactor client: one worker thread drives all its lanes
/// concurrently as non-blocking state machines over one readiness loop.
fn crawl_shard_lanes(
    endpoint: &Endpoint,
    config: &CrawlPoolConfig,
    admission: &Arc<AdmissionController>,
    categories: &[String],
    w: usize,
    lanes: &[Vec<usize>],
) -> Result<WorkerYield> {
    let conns = lanes.len();
    let specs: Vec<LaneSpec<CrawlLaneJob>> = lanes
        .iter()
        .enumerate()
        .filter(|(_, lane)| !lane.is_empty())
        .map(|(j, lane)| LaneSpec {
            connection_id: (w * conns + j) as u64 + 1,
            retry: config.retry.clone(),
            job: CrawlLaneJob::new(
                lane.iter().map(|&i| (i, categories[i].clone())).collect(),
                config.crawler.page_size,
                config.resume.clone(),
            ),
        })
        .collect();
    let opts = LaneOpts {
        config: config.crawler.clone(),
        admission: Some(Arc::clone(admission)),
        sim_seed: config.sched_seed ^ w as u64,
        ..LaneOpts::default()
    };
    let (outcomes, report) = drive_lanes(endpoint, specs, &opts, None)?;
    let mut shards = Vec::new();
    let mut stats = CrawlStats::default();
    for o in outcomes {
        stats.merge(&o.stats);
        for s in o.job.into_shards() {
            shards.push(CategoryShard {
                index: s.index,
                apps: s.apps,
                dropouts: s.dropouts,
            });
        }
    }
    Ok((shards, stats, report.peak_in_flight))
}

fn app_bytes(app: &CrawledApp) -> u64 {
    (app.apk.len()
        + app.obbs.iter().map(|(_, b)| b.len()).sum::<usize>()
        + app.bundle.as_ref().map_or(0, |b| b.len())) as u64
}

/// The sharded pool. See the module docs for the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct CrawlPool {
    config: CrawlPoolConfig,
}

impl CrawlPool {
    /// Build a pool.
    pub fn new(config: CrawlPoolConfig) -> CrawlPool {
        CrawlPool { config }
    }

    /// Size estimates for the category units: caller-provided byte hints
    /// when available, otherwise (for size-aware modes) a listing probe on
    /// the bootstrap connection counting each category's apps. A probe
    /// failure estimates 1 — the worker assigned the category will record
    /// the real drop-out itself.
    fn size_units(&self, bootstrap: &mut Crawler, categories: &[String]) -> Vec<WorkUnit> {
        categories
            .iter()
            .enumerate()
            .map(|(index, cat)| {
                let size = match (&self.config.size_hints, self.config.sched) {
                    (Some(hints), _) => hints.get(cat).copied().unwrap_or(1),
                    (None, SchedMode::Static) => 0, // unused by the static partition
                    (None, _) => bootstrap
                        .list_category(cat)
                        .map(|apps| apps.len() as u64)
                        .unwrap_or(1),
                };
                WorkUnit { index, size }
            })
            .collect()
    }

    /// Sweep the whole store at `addr` with the configured worker fleet.
    ///
    /// Connection 0 bootstraps the category list (and, in size-aware
    /// modes without size hints, probes each category's listing for a
    /// catalog size estimate); worker k then crawls the categories the
    /// scheduler assigned to shard k on connection `k + 1`.
    pub fn crawl(&self, addr: SocketAddr) -> Result<PoolOutcome> {
        self.crawl_at(&Endpoint::Tcp(addr))
    }

    /// The client transport this pool will actually run against
    /// `endpoint`: the explicit override, else `GAUGENN_REACTOR`, else
    /// the blocking baseline. A non-threaded choice is mapped onto the
    /// substrate the endpoint supports — sim endpoints always get the
    /// deterministic sim reactor, TCP endpoints get kernel epoll when the
    /// platform has it and fall back to threaded otherwise.
    fn resolve_reactor(&self, endpoint: &Endpoint) -> ReactorMode {
        let wanted = self
            .config
            .reactor
            .or_else(ReactorMode::from_env)
            .unwrap_or(ReactorMode::Threaded);
        if wanted == ReactorMode::Threaded {
            return ReactorMode::Threaded;
        }
        match endpoint {
            Endpoint::Sim(_) => ReactorMode::Sim,
            Endpoint::Tcp(_) => {
                if crate::reactor_client::nonblocking_tcp_available() {
                    ReactorMode::Epoll
                } else {
                    ReactorMode::Threaded
                }
            }
        }
    }

    /// Sweep the store reachable at `endpoint` — the [`Endpoint`]-generic
    /// form of [`CrawlPool::crawl`], required for sim-reactor stores,
    /// which have no TCP address.
    pub fn crawl_at(&self, endpoint: &Endpoint) -> Result<PoolOutcome> {
        let workers = self.config.workers.max(1);
        let conns = self.config.connections_per_worker.max(1);
        let mode = self.resolve_reactor(endpoint);
        let admission = Arc::new(AdmissionController::new(self.config.admission.clone()));

        let mut bootstrap = Crawler::builder_at(endpoint.clone())
            .config(self.config.crawler.clone())
            .retry(self.config.retry.clone())
            .connection_id(0)
            .admission(admission.clone())
            .build()?;
        let categories = bootstrap.categories()?;
        let units = self.size_units(&mut bootstrap, &categories);
        let bootstrap_stats = bootstrap.stats().clone();
        drop(bootstrap);

        let plan = assign(&units, workers, self.config.sched, self.config.sched_seed);

        let mut results: Vec<Result<WorkerYield>> = std::thread::scope(|scope| {
            let handles: Vec<_> = plan
                .iter()
                .enumerate()
                .map(|(w, shard)| {
                    let lanes = lane_split(shard, conns);
                    let admission = &admission;
                    let categories = &categories[..];
                    let config = &self.config;
                    scope.spawn(move || match mode {
                        ReactorMode::Threaded => {
                            crawl_shard_blocking(endpoint, config, admission, categories, w, &lanes)
                        }
                        ReactorMode::Epoll | ReactorMode::Sim => {
                            crawl_shard_lanes(endpoint, config, admission, categories, w, &lanes)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(res) => res,
                    // A worker panicking mid-shard (chaos runs push the
                    // crawler hard) becomes a typed error on its slot of
                    // the merge instead of tearing down the whole pool.
                    Err(_) => Err(crate::StoreError::Protocol(
                        "crawl pool worker panicked mid-shard".into(),
                    )),
                })
                .collect()
        });

        // Merge deterministically: worker order for stats/reports,
        // category-index order for the corpus itself.
        let mut per_worker = Vec::with_capacity(workers);
        let mut merged_stats = bootstrap_stats;
        let mut all_shards: Vec<CategoryShard> = Vec::with_capacity(categories.len());
        let mut peak_in_flight = 0usize;
        for (w, res) in results.drain(..).enumerate() {
            let (worker_shards, stats, worker_peak) = res?;
            peak_in_flight = peak_in_flight.max(worker_peak);
            per_worker.push(WorkerReport {
                worker: w,
                connection_id: (w * conns) as u64 + 1,
                categories: worker_shards.len(),
                apps: worker_shards.iter().map(|s| s.apps.len()).sum(),
                bytes: worker_shards
                    .iter()
                    .flat_map(|s| s.apps.iter().map(app_bytes))
                    .sum(),
                dropouts: worker_shards.iter().map(|s| s.dropouts.len()).sum(),
                stats: stats.clone(),
            });
            merged_stats.merge(&stats);
            all_shards.extend(worker_shards);
        }
        all_shards.sort_by_key(|s| s.index);

        let mut apps = Vec::new();
        let mut dropouts = Vec::new();
        for shard in all_shards {
            apps.extend(shard.apps);
            dropouts.extend(shard.dropouts);
        }

        Ok(PoolOutcome {
            outcome: CrawlOutcome {
                apps,
                dropouts,
                stats: merged_stats,
            },
            per_worker,
            admission: admission.stats(),
            workers,
            sched: self.config.sched,
            reactor: mode,
            peak_in_flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::StoreServer;

    fn start_tiny() -> StoreServer {
        StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap()
    }

    fn with_mode(workers: usize, sched: SchedMode) -> CrawlPoolConfig {
        CrawlPoolConfig {
            workers,
            sched,
            ..CrawlPoolConfig::default()
        }
    }

    #[test]
    fn pool_matches_sequential_crawl() {
        let server = start_tiny();
        let mut seq = Crawler::builder(server.addr()).build().unwrap();
        let sequential = seq.crawl_all().unwrap();

        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();

        assert_eq!(pooled.workers, 4);
        assert_eq!(pooled.outcome.apps, sequential.apps, "same corpus, same order");
        assert_eq!(pooled.outcome.dropouts, sequential.dropouts);
        assert_eq!(pooled.per_worker.len(), 4);
        let shard_apps: usize = pooled.per_worker.iter().map(|w| w.apps).sum();
        assert_eq!(shard_apps, pooled.outcome.apps.len());
    }

    #[test]
    fn worker_count_does_not_change_the_corpus() {
        let server = start_tiny();
        let one = CrawlPool::new(with_mode(1, SchedMode::Lpt))
            .crawl(server.addr())
            .unwrap();
        let eight = CrawlPool::new(with_mode(8, SchedMode::Lpt))
            .crawl(server.addr())
            .unwrap();
        assert_eq!(one.outcome.apps, eight.outcome.apps);
        assert_eq!(one.outcome.dropouts, eight.outcome.dropouts);
    }

    #[test]
    fn sched_mode_does_not_change_the_corpus() {
        let server = start_tiny();
        let baseline = CrawlPool::new(with_mode(4, SchedMode::Static))
            .crawl(server.addr())
            .unwrap();
        for sched in [SchedMode::Lpt, SchedMode::Stealing] {
            let other = CrawlPool::new(with_mode(4, sched)).crawl(server.addr()).unwrap();
            assert_eq!(other.outcome.apps, baseline.outcome.apps, "{sched:?}");
            assert_eq!(other.outcome.dropouts, baseline.outcome.dropouts);
            let covered: usize = other.per_worker.iter().map(|w| w.categories).sum();
            let statically: usize = baseline.per_worker.iter().map(|w| w.categories).sum();
            assert_eq!(covered, statically, "every category still crawled once");
        }
    }

    #[test]
    fn size_hints_suppress_the_listing_probe() {
        let server = start_tiny();
        // First crawl (static: no probe) measures real per-category bytes.
        let first = CrawlPool::new(with_mode(2, SchedMode::Static))
            .crawl(server.addr())
            .unwrap();
        let mut hints: BTreeMap<String, u64> = BTreeMap::new();
        for app in &first.outcome.apps {
            *hints.entry(app.meta.category.clone()).or_default() += app_bytes(app);
        }
        let probe_free = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            sched: SchedMode::Lpt,
            size_hints: Some(hints),
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        assert_eq!(probe_free.outcome.apps, first.outcome.apps);
        // With hints the bootstrap connection only fetches the category
        // list, so the hinted LPT crawl pays no more requests than the
        // static one.
        assert_eq!(
            probe_free.outcome.stats.requests,
            first.outcome.stats.requests
        );
    }

    #[test]
    fn extra_connections_do_not_change_the_corpus() {
        let server = start_tiny();
        let one = CrawlPool::new(with_mode(2, SchedMode::Lpt))
            .crawl(server.addr())
            .unwrap();
        let fanned = CrawlPool::new(CrawlPoolConfig {
            workers: 2,
            sched: SchedMode::Lpt,
            connections_per_worker: 3,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        assert_eq!(fanned.outcome.apps, one.outcome.apps);
        assert_eq!(fanned.outcome.dropouts, one.outcome.dropouts);
        assert_eq!(fanned.outcome.stats, one.outcome.stats);
        assert_eq!(fanned.reactor, ReactorMode::Threaded);
        assert_eq!(fanned.per_worker[1].connection_id, 4, "lane block w·C + 1");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_lanes_match_the_blocking_baseline() {
        let server = start_tiny();
        let config = CrawlPoolConfig {
            workers: 2,
            sched: SchedMode::Lpt,
            connections_per_worker: 4,
            ..CrawlPoolConfig::default()
        };
        let threaded = CrawlPool::new(config.clone()).crawl(server.addr()).unwrap();
        let epoll = CrawlPool::new(CrawlPoolConfig {
            reactor: Some(ReactorMode::Epoll),
            ..config
        })
        .crawl(server.addr())
        .unwrap();
        assert_eq!(epoll.reactor, ReactorMode::Epoll);
        assert_eq!(epoll.outcome.apps, threaded.outcome.apps);
        assert_eq!(epoll.outcome.dropouts, threaded.outcome.dropouts);
        assert_eq!(epoll.outcome.stats, threaded.outcome.stats);
        assert_eq!(epoll.per_worker, threaded.per_worker);
        assert!(
            epoll.peak_in_flight > 1,
            "reactor worker multiplexes its lanes, got peak {}",
            epoll.peak_in_flight
        );
        assert_eq!(threaded.peak_in_flight, 1, "blocking baseline is serial");
    }

    #[test]
    fn sim_reactor_lanes_match_the_blocking_baseline() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start_with(
            corpus,
            crate::server::ServerOptions {
                reactor: Some(ReactorMode::Sim),
                ..Default::default()
            },
        )
        .unwrap();
        let config = CrawlPoolConfig {
            workers: 2,
            sched: SchedMode::Lpt,
            connections_per_worker: 4,
            ..CrawlPoolConfig::default()
        };
        let threaded = CrawlPool::new(config.clone())
            .crawl_at(&server.endpoint())
            .unwrap();
        let sim = CrawlPool::new(CrawlPoolConfig {
            reactor: Some(ReactorMode::Sim),
            ..config
        })
        .crawl_at(&server.endpoint())
        .unwrap();
        assert_eq!(sim.reactor, ReactorMode::Sim);
        assert_eq!(sim.outcome.apps, threaded.outcome.apps);
        assert_eq!(sim.outcome.dropouts, threaded.outcome.dropouts);
        assert_eq!(sim.outcome.stats, threaded.outcome.stats);
        assert_eq!(sim.per_worker, threaded.per_worker);
        assert!(sim.peak_in_flight > 1, "got peak {}", sim.peak_in_flight);
    }

    #[test]
    fn fleet_shares_one_admission_budget() {
        let server = start_tiny();
        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            admission: AdmissionConfig {
                burst: 16,
                throttle_ms: 2,
                ..AdmissionConfig::default()
            },
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        let adm = &pooled.admission;
        assert_eq!(adm.admitted, pooled.outcome.stats.requests);
        // Everything past the shared 16-token burst paid the charge,
        // regardless of which worker issued it.
        assert_eq!(adm.throttled, adm.admitted - 16);
        assert_eq!(adm.throttle_ms_total, adm.throttled * 2);
        // The crawler-side merged counters agree with the controller's.
        assert_eq!(pooled.outcome.stats.throttled, adm.throttled);
        assert_eq!(pooled.outcome.stats.throttle_ms_total, adm.throttle_ms_total);
    }
}
