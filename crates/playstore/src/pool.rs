//! Sharded concurrent crawl pool.
//!
//! A [`CrawlPool`] partitions the store's category space across N worker
//! threads. Each worker owns a private [`Crawler`] (its own connection,
//! its own connection id, its own retry/backoff jitter stream). Which
//! worker crawls which category is decided **before any worker thread
//! starts** by the shared deterministic scheduler in [`gaugenn_sched`]:
//!
//! * [`SchedMode::Static`] reproduces the original `index % workers`
//!   partition;
//! * [`SchedMode::Lpt`] (the default) assigns categories
//!   largest-catalog-first to the least-loaded worker, so one heavy
//!   category no longer straggles whatever shard its index happens to
//!   fall in;
//! * [`SchedMode::Stealing`] rebalances the static partition with a
//!   planned steal sequence that is a pure function of
//!   `(seed, thief id, round)`.
//!
//! Category sizes come from [`CrawlPoolConfig::size_hints`] when the
//! caller has real byte counts (e.g. the previous snapshot's crawl of the
//! same store), otherwise from a bootstrap probe that lists each category
//! once on connection 0 and uses the listed app count as the catalog size
//! estimate.
//!
//! All workers share one [`AdmissionController`]: the fleet collectively
//! respects a single store-wide rate limit, and a sustained 429/503 storm
//! trips one circuit breaker for everybody.
//!
//! # Determinism
//!
//! The merged [`CrawlOutcome`] is assembled in category-index order, not
//! completion order, so a chaos run with a fixed seed produces a
//! byte-identical corpus and drop-out ledger no matter how the workers
//! interleave — and no matter which scheduling mode assigned the shards:
//!
//! * the assignment is computed up front from `(category sizes, workers,
//!   mode, seed)` — no runtime work stealing, no shared queues — and each
//!   worker walks its shard in ascending category-index order;
//! * chaos fault schedules cap transient faults per route and make
//!   permanent faults connection-independent (see [`crate::chaos`]), so
//!   reassigning a category to a different connection never changes
//!   whether it survives;
//! * the shared admission controller's aggregate charges are
//!   interleaving-independent while the breaker stays closed (see
//!   [`crate::admission`]).
//!
//! Per-worker *throttle* counters are the one thing that legitimately
//! varies run to run (which worker drains the last burst token is a
//! race); only the merged sums are stable, which is why
//! [`PoolOutcome::outcome`] carries merged stats and the per-worker
//! reports are explicitly diagnostic.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::crawler::{CrawlOutcome, CrawlStats, CrawledApp, Crawler, CrawlerConfig, DropOut, RetryPolicy};
use crate::net::Endpoint;
use crate::Result;
use gaugenn_sched::{assign, SchedMode, WorkUnit};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// Tunables for a [`CrawlPool`].
#[derive(Debug, Clone)]
pub struct CrawlPoolConfig {
    /// Worker threads (each with its own store connection). Clamped to a
    /// minimum of 1.
    pub workers: usize,
    /// Identity/paging configuration every worker crawls with.
    pub crawler: CrawlerConfig,
    /// Retry policy every worker runs under.
    pub retry: RetryPolicy,
    /// Store-wide admission control shared by the whole fleet.
    pub admission: AdmissionConfig,
    /// How categories are partitioned across workers. Defaults to the
    /// `GAUGENN_SCHED` environment variable (falling back to LPT).
    pub sched: SchedMode,
    /// Seed for the planned-steal sequence ([`SchedMode::Stealing`] only).
    pub sched_seed: u64,
    /// Per-category catalog sizes in bytes, when the caller already knows
    /// them (e.g. measured by the previous snapshot's crawl). When absent
    /// and the mode is size-aware, the pool probes each category's listing
    /// once on the bootstrap connection and uses the app count instead.
    pub size_hints: Option<BTreeMap<String, u64>>,
    /// Resume cache shared by every worker: apps a replayed crash
    /// journal already holds (see
    /// [`crate::crawler::CrawlerBuilder::resume_cache`]).
    pub resume: Option<Arc<BTreeMap<String, CrawledApp>>>,
}

impl Default for CrawlPoolConfig {
    fn default() -> Self {
        CrawlPoolConfig {
            workers: 4,
            crawler: CrawlerConfig::default(),
            retry: RetryPolicy::default(),
            admission: AdmissionConfig::default(),
            sched: SchedMode::from_env(),
            sched_seed: 0,
            size_hints: None,
            resume: None,
        }
    }
}

/// Diagnostic summary of one worker's share of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// Connection id the worker announced to the store (worker + 1; the
    /// bootstrap category fetch uses connection 0).
    pub connection_id: u64,
    /// Categories in this worker's shard.
    pub categories: usize,
    /// Apps the worker crawled successfully.
    pub apps: usize,
    /// Bytes (APK + OBB + bundle) the worker pulled — the load-balance
    /// metric `poolbench` compares across scheduling modes.
    pub bytes: u64,
    /// Drop-outs the worker recorded.
    pub dropouts: usize,
    /// The worker's own resilience counters. Note: throttle counters are
    /// interleaving-dependent (which worker drains the last burst token
    /// is a race) — only the merged sums in
    /// [`PoolOutcome::outcome`] are run-to-run stable.
    pub stats: CrawlStats,
}

/// Everything a pooled sweep produced.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Merged corpus + drop-out ledger + summed stats, in deterministic
    /// category-index order — byte-identical to what the same seed
    /// produces at any worker count and in any scheduling mode while the
    /// breaker stays closed.
    pub outcome: CrawlOutcome,
    /// Per-worker diagnostics, in worker order.
    pub per_worker: Vec<WorkerReport>,
    /// Aggregate admission-controller counters for the fleet.
    pub admission: AdmissionStats,
    /// Worker count actually used.
    pub workers: usize,
    /// Scheduling mode the shards were assigned under.
    pub sched: SchedMode,
}

/// One worker's crawl of one category, tagged with the category's global
/// index so shards merge deterministically.
struct CategoryShard {
    index: usize,
    apps: Vec<CrawledApp>,
    dropouts: Vec<DropOut>,
}

fn app_bytes(app: &CrawledApp) -> u64 {
    (app.apk.len()
        + app.obbs.iter().map(|(_, b)| b.len()).sum::<usize>()
        + app.bundle.as_ref().map_or(0, |b| b.len())) as u64
}

/// The sharded pool. See the module docs for the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct CrawlPool {
    config: CrawlPoolConfig,
}

impl CrawlPool {
    /// Build a pool.
    pub fn new(config: CrawlPoolConfig) -> CrawlPool {
        CrawlPool { config }
    }

    /// Size estimates for the category units: caller-provided byte hints
    /// when available, otherwise (for size-aware modes) a listing probe on
    /// the bootstrap connection counting each category's apps. A probe
    /// failure estimates 1 — the worker assigned the category will record
    /// the real drop-out itself.
    fn size_units(&self, bootstrap: &mut Crawler, categories: &[String]) -> Vec<WorkUnit> {
        categories
            .iter()
            .enumerate()
            .map(|(index, cat)| {
                let size = match (&self.config.size_hints, self.config.sched) {
                    (Some(hints), _) => hints.get(cat).copied().unwrap_or(1),
                    (None, SchedMode::Static) => 0, // unused by the static partition
                    (None, _) => bootstrap
                        .list_category(cat)
                        .map(|apps| apps.len() as u64)
                        .unwrap_or(1),
                };
                WorkUnit { index, size }
            })
            .collect()
    }

    /// Sweep the whole store at `addr` with the configured worker fleet.
    ///
    /// Connection 0 bootstraps the category list (and, in size-aware
    /// modes without size hints, probes each category's listing for a
    /// catalog size estimate); worker k then crawls the categories the
    /// scheduler assigned to shard k on connection `k + 1`.
    pub fn crawl(&self, addr: SocketAddr) -> Result<PoolOutcome> {
        self.crawl_at(&Endpoint::Tcp(addr))
    }

    /// Sweep the store reachable at `endpoint` — the [`Endpoint`]-generic
    /// form of [`CrawlPool::crawl`], required for sim-reactor stores,
    /// which have no TCP address.
    pub fn crawl_at(&self, endpoint: &Endpoint) -> Result<PoolOutcome> {
        let workers = self.config.workers.max(1);
        let admission = Arc::new(AdmissionController::new(self.config.admission.clone()));

        let mut bootstrap = Crawler::builder_at(endpoint.clone())
            .config(self.config.crawler.clone())
            .retry(self.config.retry.clone())
            .connection_id(0)
            .admission(admission.clone())
            .build()?;
        let categories = bootstrap.categories()?;
        let units = self.size_units(&mut bootstrap, &categories);
        let bootstrap_stats = bootstrap.stats().clone();
        drop(bootstrap);

        let plan = assign(&units, workers, self.config.sched, self.config.sched_seed);

        let mut results: Vec<Result<(Vec<CategoryShard>, CrawlStats)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = plan
                    .iter()
                    .enumerate()
                    .map(|(w, shard)| {
                        let shard: Vec<(usize, &str)> = shard
                            .iter()
                            .map(|&i| (i, categories[i].as_str()))
                            .collect();
                        let admission = admission.clone();
                        let crawler_cfg = self.config.crawler.clone();
                        let retry = self.config.retry.clone();
                        let resume = self.config.resume.clone();
                        let endpoint = endpoint.clone();
                        scope.spawn(move || {
                            let mut builder = Crawler::builder_at(endpoint)
                                .config(crawler_cfg)
                                .retry(retry)
                                .connection_id(w as u64 + 1)
                                .admission(admission);
                            if let Some(resume) = resume {
                                builder = builder.resume_cache(resume);
                            }
                            let mut crawler = builder.build()?;
                            let mut out = Vec::with_capacity(shard.len());
                            for (index, category) in shard {
                                let (apps, dropouts) = crawler.crawl_category(category);
                                out.push(CategoryShard {
                                    index,
                                    apps,
                                    dropouts,
                                });
                            }
                            Ok((out, crawler.stats().clone()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(res) => res,
                        // A worker panicking mid-shard (chaos runs push the
                        // crawler hard) becomes a typed error on its slot of
                        // the merge instead of tearing down the whole pool.
                        Err(_) => Err(crate::StoreError::Protocol(
                            "crawl pool worker panicked mid-shard".into(),
                        )),
                    })
                    .collect()
            });

        // Merge deterministically: worker order for stats/reports,
        // category-index order for the corpus itself.
        let mut per_worker = Vec::with_capacity(workers);
        let mut merged_stats = bootstrap_stats;
        let mut all_shards: Vec<CategoryShard> = Vec::with_capacity(categories.len());
        for (w, res) in results.drain(..).enumerate() {
            let (worker_shards, stats) = res?;
            per_worker.push(WorkerReport {
                worker: w,
                connection_id: w as u64 + 1,
                categories: worker_shards.len(),
                apps: worker_shards.iter().map(|s| s.apps.len()).sum(),
                bytes: worker_shards
                    .iter()
                    .flat_map(|s| s.apps.iter().map(app_bytes))
                    .sum(),
                dropouts: worker_shards.iter().map(|s| s.dropouts.len()).sum(),
                stats: stats.clone(),
            });
            merged_stats.merge(&stats);
            all_shards.extend(worker_shards);
        }
        all_shards.sort_by_key(|s| s.index);

        let mut apps = Vec::new();
        let mut dropouts = Vec::new();
        for shard in all_shards {
            apps.extend(shard.apps);
            dropouts.extend(shard.dropouts);
        }

        Ok(PoolOutcome {
            outcome: CrawlOutcome {
                apps,
                dropouts,
                stats: merged_stats,
            },
            per_worker,
            admission: admission.stats(),
            workers,
            sched: self.config.sched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::StoreServer;

    fn start_tiny() -> StoreServer {
        StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap()
    }

    fn with_mode(workers: usize, sched: SchedMode) -> CrawlPoolConfig {
        CrawlPoolConfig {
            workers,
            sched,
            ..CrawlPoolConfig::default()
        }
    }

    #[test]
    fn pool_matches_sequential_crawl() {
        let server = start_tiny();
        let mut seq = Crawler::builder(server.addr()).build().unwrap();
        let sequential = seq.crawl_all().unwrap();

        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();

        assert_eq!(pooled.workers, 4);
        assert_eq!(pooled.outcome.apps, sequential.apps, "same corpus, same order");
        assert_eq!(pooled.outcome.dropouts, sequential.dropouts);
        assert_eq!(pooled.per_worker.len(), 4);
        let shard_apps: usize = pooled.per_worker.iter().map(|w| w.apps).sum();
        assert_eq!(shard_apps, pooled.outcome.apps.len());
    }

    #[test]
    fn worker_count_does_not_change_the_corpus() {
        let server = start_tiny();
        let one = CrawlPool::new(with_mode(1, SchedMode::Lpt))
            .crawl(server.addr())
            .unwrap();
        let eight = CrawlPool::new(with_mode(8, SchedMode::Lpt))
            .crawl(server.addr())
            .unwrap();
        assert_eq!(one.outcome.apps, eight.outcome.apps);
        assert_eq!(one.outcome.dropouts, eight.outcome.dropouts);
    }

    #[test]
    fn sched_mode_does_not_change_the_corpus() {
        let server = start_tiny();
        let baseline = CrawlPool::new(with_mode(4, SchedMode::Static))
            .crawl(server.addr())
            .unwrap();
        for sched in [SchedMode::Lpt, SchedMode::Stealing] {
            let other = CrawlPool::new(with_mode(4, sched)).crawl(server.addr()).unwrap();
            assert_eq!(other.outcome.apps, baseline.outcome.apps, "{sched:?}");
            assert_eq!(other.outcome.dropouts, baseline.outcome.dropouts);
            let covered: usize = other.per_worker.iter().map(|w| w.categories).sum();
            let statically: usize = baseline.per_worker.iter().map(|w| w.categories).sum();
            assert_eq!(covered, statically, "every category still crawled once");
        }
    }

    #[test]
    fn size_hints_suppress_the_listing_probe() {
        let server = start_tiny();
        // First crawl (static: no probe) measures real per-category bytes.
        let first = CrawlPool::new(with_mode(2, SchedMode::Static))
            .crawl(server.addr())
            .unwrap();
        let mut hints: BTreeMap<String, u64> = BTreeMap::new();
        for app in &first.outcome.apps {
            *hints.entry(app.meta.category.clone()).or_default() += app_bytes(app);
        }
        let probe_free = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            sched: SchedMode::Lpt,
            size_hints: Some(hints),
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        assert_eq!(probe_free.outcome.apps, first.outcome.apps);
        // With hints the bootstrap connection only fetches the category
        // list, so the hinted LPT crawl pays no more requests than the
        // static one.
        assert_eq!(
            probe_free.outcome.stats.requests,
            first.outcome.stats.requests
        );
    }

    #[test]
    fn fleet_shares_one_admission_budget() {
        let server = start_tiny();
        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            admission: AdmissionConfig {
                burst: 16,
                throttle_ms: 2,
                ..AdmissionConfig::default()
            },
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        let adm = &pooled.admission;
        assert_eq!(adm.admitted, pooled.outcome.stats.requests);
        // Everything past the shared 16-token burst paid the charge,
        // regardless of which worker issued it.
        assert_eq!(adm.throttled, adm.admitted - 16);
        assert_eq!(adm.throttle_ms_total, adm.throttled * 2);
        // The crawler-side merged counters agree with the controller's.
        assert_eq!(pooled.outcome.stats.throttled, adm.throttled);
        assert_eq!(pooled.outcome.stats.throttle_ms_total, adm.throttle_ms_total);
    }
}
