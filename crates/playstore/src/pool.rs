//! Sharded concurrent crawl pool.
//!
//! A [`CrawlPool`] partitions the store's category space across N worker
//! threads. Each worker owns a private [`Crawler`] (its own connection,
//! its own connection id, its own retry/backoff jitter stream) and crawls
//! the categories whose index is congruent to the worker index mod N —
//! a static partition, so which worker crawls which category never
//! depends on thread scheduling.
//!
//! All workers share one [`AdmissionController`]: the fleet collectively
//! respects a single store-wide rate limit, and a sustained 429/503 storm
//! trips one circuit breaker for everybody.
//!
//! # Determinism
//!
//! The merged [`CrawlOutcome`] is assembled in category-index order, not
//! completion order, so a chaos run with a fixed seed produces a
//! byte-identical corpus and drop-out ledger no matter how the workers
//! interleave:
//!
//! * each worker's request stream is a pure function of its (static)
//!   category shard — no work stealing, no shared queues;
//! * chaos fault schedules are keyed per connection
//!   (`seed ⊕ connection id`, see [`crate::chaos::FaultPlan`]), so worker
//!   k sees the same faults whether it runs alone or alongside seven
//!   others;
//! * the shared admission controller's aggregate charges are
//!   interleaving-independent while the breaker stays closed (see
//!   [`crate::admission`]).
//!
//! Per-worker *throttle* counters are the one thing that legitimately
//! varies run to run (which worker drains the last burst token is a
//! race); only the merged sums are stable, which is why
//! [`PoolOutcome::outcome`] carries merged stats and the per-worker
//! reports are explicitly diagnostic.

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionStats};
use crate::crawler::{CrawlOutcome, CrawlStats, CrawledApp, Crawler, CrawlerConfig, DropOut, RetryPolicy};
use crate::Result;
use std::net::SocketAddr;
use std::sync::Arc;

/// Tunables for a [`CrawlPool`].
#[derive(Debug, Clone)]
pub struct CrawlPoolConfig {
    /// Worker threads (each with its own store connection). Clamped to a
    /// minimum of 1.
    pub workers: usize,
    /// Identity/paging configuration every worker crawls with.
    pub crawler: CrawlerConfig,
    /// Retry policy every worker runs under.
    pub retry: RetryPolicy,
    /// Store-wide admission control shared by the whole fleet.
    pub admission: AdmissionConfig,
}

impl Default for CrawlPoolConfig {
    fn default() -> Self {
        CrawlPoolConfig {
            workers: 4,
            crawler: CrawlerConfig::default(),
            retry: RetryPolicy::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// Diagnostic summary of one worker's share of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Worker index (0-based).
    pub worker: usize,
    /// Connection id the worker announced to the store (worker + 1; the
    /// bootstrap category fetch uses connection 0).
    pub connection_id: u64,
    /// Categories in this worker's shard.
    pub categories: usize,
    /// Apps the worker crawled successfully.
    pub apps: usize,
    /// Drop-outs the worker recorded.
    pub dropouts: usize,
    /// The worker's own resilience counters. Note: throttle counters are
    /// interleaving-dependent (which worker drains the last burst token
    /// is a race) — only the merged sums in
    /// [`PoolOutcome::outcome`] are run-to-run stable.
    pub stats: CrawlStats,
}

/// Everything a pooled sweep produced.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Merged corpus + drop-out ledger + summed stats, in deterministic
    /// category-index order — byte-identical to what the same seed
    /// produces at any worker count while the breaker stays closed.
    pub outcome: CrawlOutcome,
    /// Per-worker diagnostics, in worker order.
    pub per_worker: Vec<WorkerReport>,
    /// Aggregate admission-controller counters for the fleet.
    pub admission: AdmissionStats,
    /// Worker count actually used.
    pub workers: usize,
}

/// One worker's crawl of one category, tagged with the category's global
/// index so shards merge deterministically.
struct CategoryShard {
    index: usize,
    apps: Vec<CrawledApp>,
    dropouts: Vec<DropOut>,
}

/// The sharded pool. See the module docs for the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct CrawlPool {
    config: CrawlPoolConfig,
}

impl CrawlPool {
    /// Build a pool.
    pub fn new(config: CrawlPoolConfig) -> CrawlPool {
        CrawlPool { config }
    }

    /// Sweep the whole store at `addr` with the configured worker fleet.
    ///
    /// Connection 0 bootstraps the category list; worker k then crawls
    /// every category with `index % workers == k` on connection `k + 1`.
    pub fn crawl(&self, addr: SocketAddr) -> Result<PoolOutcome> {
        let workers = self.config.workers.max(1);
        let admission = Arc::new(AdmissionController::new(self.config.admission.clone()));

        let mut bootstrap = Crawler::builder(addr)
            .config(self.config.crawler.clone())
            .retry(self.config.retry.clone())
            .connection_id(0)
            .admission(admission.clone())
            .build()?;
        let categories = bootstrap.categories()?;
        let bootstrap_stats = bootstrap.stats().clone();
        drop(bootstrap);

        let shards: Vec<(usize, &str)> = categories
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.as_str()))
            .collect();

        let mut results: Vec<Result<(Vec<CategoryShard>, CrawlStats)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let shard: Vec<(usize, &str)> = shards
                            .iter()
                            .filter(|(i, _)| i % workers == w)
                            .copied()
                            .collect();
                        let admission = admission.clone();
                        let crawler_cfg = self.config.crawler.clone();
                        let retry = self.config.retry.clone();
                        scope.spawn(move || {
                            let mut crawler = Crawler::builder(addr)
                                .config(crawler_cfg)
                                .retry(retry)
                                .connection_id(w as u64 + 1)
                                .admission(admission)
                                .build()?;
                            let mut out = Vec::with_capacity(shard.len());
                            for (index, category) in shard {
                                let (apps, dropouts) = crawler.crawl_category(category);
                                out.push(CategoryShard {
                                    index,
                                    apps,
                                    dropouts,
                                });
                            }
                            Ok((out, crawler.stats().clone()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(res) => res,
                        // A worker panicking mid-shard (chaos runs push the
                        // crawler hard) becomes a typed error on its slot of
                        // the merge instead of tearing down the whole pool.
                        Err(_) => Err(crate::StoreError::Protocol(
                            "crawl pool worker panicked mid-shard".into(),
                        )),
                    })
                    .collect()
            });

        // Merge deterministically: worker order for stats/reports,
        // category-index order for the corpus itself.
        let mut per_worker = Vec::with_capacity(workers);
        let mut merged_stats = bootstrap_stats;
        let mut all_shards: Vec<CategoryShard> = Vec::with_capacity(categories.len());
        for (w, res) in results.drain(..).enumerate() {
            let (worker_shards, stats) = res?;
            per_worker.push(WorkerReport {
                worker: w,
                connection_id: w as u64 + 1,
                categories: worker_shards.len(),
                apps: worker_shards.iter().map(|s| s.apps.len()).sum(),
                dropouts: worker_shards.iter().map(|s| s.dropouts.len()).sum(),
                stats: stats.clone(),
            });
            merged_stats.merge(&stats);
            all_shards.extend(worker_shards);
        }
        all_shards.sort_by_key(|s| s.index);

        let mut apps = Vec::new();
        let mut dropouts = Vec::new();
        for shard in all_shards {
            apps.extend(shard.apps);
            dropouts.extend(shard.dropouts);
        }

        Ok(PoolOutcome {
            outcome: CrawlOutcome {
                apps,
                dropouts,
                stats: merged_stats,
            },
            per_worker,
            admission: admission.stats(),
            workers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::StoreServer;

    fn start_tiny() -> StoreServer {
        StoreServer::start(generate(CorpusScale::Tiny, Snapshot::Y2021, 7)).unwrap()
    }

    #[test]
    fn pool_matches_sequential_crawl() {
        let server = start_tiny();
        let mut seq = Crawler::builder(server.addr()).build().unwrap();
        let sequential = seq.crawl_all().unwrap();

        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();

        assert_eq!(pooled.workers, 4);
        assert_eq!(pooled.outcome.apps, sequential.apps, "same corpus, same order");
        assert_eq!(pooled.outcome.dropouts, sequential.dropouts);
        assert_eq!(pooled.per_worker.len(), 4);
        let shard_apps: usize = pooled.per_worker.iter().map(|w| w.apps).sum();
        assert_eq!(shard_apps, pooled.outcome.apps.len());
    }

    #[test]
    fn worker_count_does_not_change_the_corpus() {
        let server = start_tiny();
        let one = CrawlPool::new(CrawlPoolConfig {
            workers: 1,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        let eight = CrawlPool::new(CrawlPoolConfig {
            workers: 8,
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        assert_eq!(one.outcome.apps, eight.outcome.apps);
        assert_eq!(one.outcome.dropouts, eight.outcome.dropouts);
    }

    #[test]
    fn fleet_shares_one_admission_budget() {
        let server = start_tiny();
        let pooled = CrawlPool::new(CrawlPoolConfig {
            workers: 4,
            admission: AdmissionConfig {
                burst: 16,
                throttle_ms: 2,
                ..AdmissionConfig::default()
            },
            ..CrawlPoolConfig::default()
        })
        .crawl(server.addr())
        .unwrap();
        let adm = &pooled.admission;
        assert_eq!(adm.admitted, pooled.outcome.stats.requests);
        // Everything past the shared 16-token burst paid the charge,
        // regardless of which worker issued it.
        assert_eq!(adm.throttled, adm.admitted - 16);
        assert_eq!(adm.throttle_ms_total, adm.throttled * 2);
        // The crawler-side merged counters agree with the controller's.
        assert_eq!(pooled.outcome.stats.throttled, adm.throttled);
        assert_eq!(pooled.outcome.stats.throttle_ms_total, adm.throttle_ms_total);
    }
}
