//! The typed query client for the `/query/*` route family.
//!
//! [`QueryClient`] is the read-side counterpart of [`Crawler`]: where the
//! crawler walks the store to *build* the corpus, the query client asks
//! the server's corpus index questions about it. It wraps a crawler
//! underneath (one keep-alive connection, same retry/backoff, integrity
//! checking, admission control and typed errors), so a chaos plan that
//! resets or throttles query connections is survived the same way crawl
//! traffic survives it.
//!
//! Construction mirrors [`Crawler::builder`]:
//!
//! ```no_run
//! # use gaugenn_playstore::query::QueryClient;
//! # use gaugenn_index::ModelQuery;
//! # let addr = "127.0.0.1:1".parse().unwrap();
//! let mut client = QueryClient::builder(addr).connection_id(3).build()?;
//! let rows = client.models(&ModelQuery {
//!     frameworks: vec!["tflite".into()],
//!     limit: Some(10),
//!     ..ModelQuery::default()
//! })?;
//! # Ok::<(), gaugenn_playstore::StoreError>(())
//! ```

use crate::crawler::{Crawler, CrawlerBuilder, CrawlerConfig, CrawlStats, RetryPolicy};
use crate::net::Endpoint;
use crate::proto::Response;
use crate::route::Route;
use crate::{Result, StoreError};
use gaugenn_index::wire::{parse_apps, parse_models, parse_stats, AppRow, ModelRow};
use gaugenn_index::{AppQuery, ModelQuery};
use std::net::SocketAddr;
use std::time::Duration;

/// Configures and builds a [`QueryClient`]. Obtained from
/// [`QueryClient::builder`]; every method consumes and returns the
/// builder, mirroring [`CrawlerBuilder`].
pub struct QueryClientBuilder {
    inner: CrawlerBuilder,
}

impl QueryClientBuilder {
    /// Use a specific client configuration (user-agent, locale, device
    /// profile).
    pub fn config(mut self, config: CrawlerConfig) -> QueryClientBuilder {
        self.inner = self.inner.config(config);
        self
    }

    /// Use a specific retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> QueryClientBuilder {
        self.inner = self.inner.retry(retry);
        self
    }

    /// Set connect/read timeouts.
    pub fn timeouts(mut self, connect: Duration, read: Duration) -> QueryClientBuilder {
        self.inner = self.inner.timeouts(connect, read);
        self
    }

    /// Stable client identity: keys the chaos fault schedule and the
    /// backoff jitter, exactly like a crawler connection id.
    pub fn connection_id(mut self, id: u64) -> QueryClientBuilder {
        self.inner = self.inner.connection_id(id);
        self
    }

    /// Seed the backoff jitter independently of the retry policy.
    pub fn jitter_seed(mut self, seed: u64) -> QueryClientBuilder {
        self.inner = self.inner.jitter_seed(seed);
        self
    }

    /// Connect and build the client.
    pub fn build(self) -> Result<QueryClient> {
        Ok(QueryClient {
            crawler: self.inner.build()?,
        })
    }
}

/// A typed client for the corpus-index query routes.
pub struct QueryClient {
    crawler: Crawler,
}

impl QueryClient {
    /// Start configuring a query client for the TCP store at `addr`.
    pub fn builder(addr: SocketAddr) -> QueryClientBuilder {
        QueryClientBuilder {
            inner: Crawler::builder(addr),
        }
    }

    /// Start configuring a query client for any [`Endpoint`] — required
    /// for sim-reactor stores, which have no TCP address.
    pub fn builder_at(endpoint: Endpoint) -> QueryClientBuilder {
        QueryClientBuilder {
            inner: Crawler::builder_at(endpoint),
        }
    }

    /// Run a model query and parse the ranked result rows.
    pub fn models(&mut self, q: &ModelQuery) -> Result<Vec<ModelRow>> {
        let route = Route::QueryModels(q.clone());
        let resp = self.crawler.fetch(&route)?;
        parse_models(&resp.text())
            .ok_or_else(|| StoreError::Protocol(format!("{route}: malformed model rows")))
    }

    /// Run an app query and parse the ranked result rows.
    pub fn apps(&mut self, q: &AppQuery) -> Result<Vec<AppRow>> {
        let route = Route::QueryApps(q.clone());
        let resp = self.crawler.fetch(&route)?;
        parse_apps(&resp.text())
            .ok_or_else(|| StoreError::Protocol(format!("{route}: malformed app rows")))
    }

    /// Fetch the corpus statistics as ordered `(key, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>> {
        let resp = self.crawler.fetch(&Route::QueryStats)?;
        parse_stats(&resp.text())
            .ok_or_else(|| StoreError::Protocol("/query/stats: malformed stats".into()))
    }

    /// Issue any typed route and return the raw response — for callers
    /// that want the exact body bytes (querybench compares response
    /// streams byte-for-byte).
    pub fn raw(&mut self, route: &Route) -> Result<Response> {
        self.crawler.fetch(route)
    }

    /// Resilience counters of the underlying connection.
    pub fn transport_stats(&self) -> &CrawlStats {
        self.crawler.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan, FaultPlanConfig};
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::{ServerOptions, StoreServer};
    use gaugenn_index::{AppDoc, AppSnap, CorpusIndex, ModelDoc};
    use gaugenn_modelfmt::Framework;
    use std::sync::Arc;

    fn synthetic_index() -> Arc<CorpusIndex> {
        let mut idx = CorpusIndex::new();
        let model = |checksum: &str, flops: u64| ModelDoc {
            checksum: checksum.into(),
            name: format!("net {checksum}"),
            framework: Framework::TfLite,
            task: None,
            quantised: false,
            size_bytes: flops / 2,
            flops,
            params: flops / 4,
            apps_by_snapshot: [("Apr 2021".to_string(), 1u64)].into_iter().collect(),
        };
        idx.ingest_snapshot(
            "Apr 2021",
            vec![model("aaa", 300), model("bbb", 100), model("ccc", 200)],
            vec![AppDoc {
                package: "com.example".into(),
                category: "maps & navigation".into(),
                by_snapshot: [(
                    "Apr 2021".to_string(),
                    AppSnap {
                        models: 3,
                        ml: true,
                        cloud: false,
                    },
                )]
                .into_iter()
                .collect(),
            }],
        );
        Arc::new(idx)
    }

    fn start_indexed(chaos: Option<FaultPlan>) -> StoreServer {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        StoreServer::start_with(
            corpus,
            ServerOptions {
                chaos,
                index: Some(synthetic_index()),
                ..ServerOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn typed_queries_roundtrip_over_the_wire() {
        let server = start_indexed(None);
        let mut client = QueryClient::builder(server.addr()).build().unwrap();
        let rows = client.models(&ModelQuery::default()).unwrap();
        let got: Vec<&str> = rows.iter().map(|r| r.checksum.as_str()).collect();
        assert_eq!(got, vec!["aaa", "ccc", "bbb"], "flops-descending");
        assert_eq!(rows[0].name, "net aaa");
        let apps = client.apps(&AppQuery::default()).unwrap();
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].category, "maps & navigation");
        let stats = client.stats().unwrap();
        assert!(stats.iter().any(|(k, v)| k == "models" && v == "3"));
    }

    #[test]
    fn filters_travel_encoded_and_apply() {
        let server = start_indexed(None);
        let mut client = QueryClient::builder(server.addr()).build().unwrap();
        let rows = client
            .models(&ModelQuery {
                min_flops: Some(150),
                max_flops: Some(250),
                snapshot: Some("Apr 2021".into()),
                ..ModelQuery::default()
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].checksum, "ccc");
        let apps = client
            .apps(&AppQuery {
                categories: vec!["maps & navigation".into()],
                ml_only: true,
                ..AppQuery::default()
            })
            .unwrap();
        assert_eq!(apps.len(), 1);
    }

    #[test]
    fn query_without_index_is_a_typed_not_found() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start(corpus).unwrap();
        let mut client = QueryClient::builder(server.addr()).build().unwrap();
        match client.stats() {
            Err(StoreError::NotFound(_)) => {}
            other => panic!("want NotFound, got {other:?}"),
        }
    }

    #[test]
    fn queries_survive_chaos_with_typed_errors() {
        // Resets and transient statuses under the retry budget must be
        // absorbed; the answers must match a calm server's byte-for-byte.
        let plan = FaultPlan::new(FaultPlanConfig {
            seed: 11,
            fault_permille: 400,
            kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
            max_faults_per_route: 2, // < default max_attempts of 4
            ..FaultPlanConfig::default()
        });
        let calm = start_indexed(None);
        let stormy = start_indexed(Some(plan));
        let mut a = QueryClient::builder(calm.addr()).build().unwrap();
        let mut b = QueryClient::builder(stormy.addr())
            .connection_id(5)
            .build()
            .unwrap();
        for q in [
            ModelQuery::default(),
            ModelQuery {
                frameworks: vec!["tflite".into()],
                limit: Some(2),
                ..ModelQuery::default()
            },
        ] {
            let want = a.raw(&Route::QueryModels(q.clone())).unwrap().body;
            let got = b.raw(&Route::QueryModels(q)).unwrap().body;
            assert_eq!(want, got);
        }
        let st = b.transport_stats();
        assert!(
            st.retries + st.reconnects > 0,
            "chaos must actually have fired: {st:?}"
        );
    }
}
