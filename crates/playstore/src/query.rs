//! The typed query client for the `/query/*` route family.
//!
//! [`QueryClient`] is the read-side counterpart of [`Crawler`]: where the
//! crawler walks the store to *build* the corpus, the query client asks
//! the server's corpus index questions about it. It wraps a crawler
//! underneath (one keep-alive connection, same retry/backoff, integrity
//! checking, admission control and typed errors), so a chaos plan that
//! resets or throttles query connections is survived the same way crawl
//! traffic survives it.
//!
//! Construction mirrors [`Crawler::builder`]:
//!
//! ```no_run
//! # use gaugenn_playstore::query::QueryClient;
//! # use gaugenn_index::ModelQuery;
//! # let addr = "127.0.0.1:1".parse().unwrap();
//! let mut client = QueryClient::builder(addr).connection_id(3).build()?;
//! let rows = client.models(&ModelQuery {
//!     frameworks: vec!["tflite".into()],
//!     limit: Some(10),
//!     ..ModelQuery::default()
//! })?;
//! # Ok::<(), gaugenn_playstore::StoreError>(())
//! ```

use crate::crawler::{Crawler, CrawlerBuilder, CrawlerConfig, CrawlStats, RetryPolicy};
use crate::net::Endpoint;
use crate::proto::Response;
use crate::reactor_client::{drive_lanes, LaneOpts, LaneSpec, RouteListJob};
use crate::route::Route;
use crate::{Result, StoreError};
use gaugenn_index::wire::{parse_apps, parse_models, parse_stats, AppRow, ModelRow};
use gaugenn_index::{AppQuery, ModelQuery};
use std::net::SocketAddr;
use std::time::Duration;

/// Configures and builds a [`QueryClient`]. Obtained from
/// [`QueryClient::builder`]; every method consumes and returns the
/// builder, mirroring [`CrawlerBuilder`].
pub struct QueryClientBuilder {
    inner: CrawlerBuilder,
}

impl QueryClientBuilder {
    /// Use a specific client configuration (user-agent, locale, device
    /// profile).
    pub fn config(mut self, config: CrawlerConfig) -> QueryClientBuilder {
        self.inner = self.inner.config(config);
        self
    }

    /// Use a specific retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> QueryClientBuilder {
        self.inner = self.inner.retry(retry);
        self
    }

    /// Set connect/read timeouts.
    pub fn timeouts(mut self, connect: Duration, read: Duration) -> QueryClientBuilder {
        self.inner = self.inner.timeouts(connect, read);
        self
    }

    /// Stable client identity: keys the chaos fault schedule and the
    /// backoff jitter, exactly like a crawler connection id.
    pub fn connection_id(mut self, id: u64) -> QueryClientBuilder {
        self.inner = self.inner.connection_id(id);
        self
    }

    /// Seed the backoff jitter independently of the retry policy.
    pub fn jitter_seed(mut self, seed: u64) -> QueryClientBuilder {
        self.inner = self.inner.jitter_seed(seed);
        self
    }

    /// Connect and build the client.
    pub fn build(self) -> Result<QueryClient> {
        Ok(QueryClient {
            crawler: self.inner.build()?,
        })
    }
}

/// A typed client for the corpus-index query routes.
pub struct QueryClient {
    crawler: Crawler,
}

impl QueryClient {
    /// Start configuring a query client for the TCP store at `addr`.
    pub fn builder(addr: SocketAddr) -> QueryClientBuilder {
        QueryClientBuilder {
            inner: Crawler::builder(addr),
        }
    }

    /// Start configuring a query client for any [`Endpoint`] — required
    /// for sim-reactor stores, which have no TCP address.
    pub fn builder_at(endpoint: Endpoint) -> QueryClientBuilder {
        QueryClientBuilder {
            inner: Crawler::builder_at(endpoint),
        }
    }

    /// Run a model query and parse the ranked result rows.
    pub fn models(&mut self, q: &ModelQuery) -> Result<Vec<ModelRow>> {
        let route = Route::QueryModels(q.clone());
        let resp = self.crawler.fetch(&route)?;
        parse_models(&resp.text())
            .ok_or_else(|| StoreError::Protocol(format!("{route}: malformed model rows")))
    }

    /// Run an app query and parse the ranked result rows.
    pub fn apps(&mut self, q: &AppQuery) -> Result<Vec<AppRow>> {
        let route = Route::QueryApps(q.clone());
        let resp = self.crawler.fetch(&route)?;
        parse_apps(&resp.text())
            .ok_or_else(|| StoreError::Protocol(format!("{route}: malformed app rows")))
    }

    /// Fetch the corpus statistics as ordered `(key, value)` pairs.
    pub fn stats(&mut self) -> Result<Vec<(String, String)>> {
        let resp = self.crawler.fetch(&Route::QueryStats)?;
        parse_stats(&resp.text())
            .ok_or_else(|| StoreError::Protocol("/query/stats: malformed stats".into()))
    }

    /// Issue any typed route and return the raw response — for callers
    /// that want the exact body bytes (querybench compares response
    /// streams byte-for-byte).
    pub fn raw(&mut self, route: &Route) -> Result<Response> {
        self.crawler.fetch(route)
    }

    /// Resilience counters of the underlying connection.
    pub fn transport_stats(&self) -> &CrawlStats {
        self.crawler.stats()
    }
}

/// A fleet of non-blocking query connections multiplexed over a handful
/// of reactor-driven threads — the event-driven counterpart of opening
/// `connections` blocking [`QueryClient`]s.
///
/// The swarm replays a route stream with the same round-robin discipline
/// the blocking load generators use: stream index `i` is issued by
/// connection `i % connections` as its `⌊i / connections⌋`-th request,
/// connection `c` announces connection id `c` and jitters its backoff
/// with `jitter_seed ^ c`. Because each lane's request history is then
/// identical to the matching blocking client's, the response bytes *and*
/// the per-connection resilience counters are byte-identical to the
/// threaded baseline — calm or under chaos — while one driver thread
/// holds every one of its lanes in flight at once.
pub struct QuerySwarm {
    endpoint: Endpoint,
    config: CrawlerConfig,
    retry: RetryPolicy,
    connections: usize,
    drivers: usize,
    jitter_seed: u64,
    connect_timeout: Duration,
    read_timeout: Duration,
    sim_seed: u64,
}

/// What a [`QuerySwarm`] replay produced.
pub struct SwarmReplay {
    /// Per-query outcomes, in stream order (`responses[i]` answers
    /// `routes[i]` no matter which connection carried it).
    pub responses: Vec<Result<Response>>,
    /// Resilience counters merged over every connection, in connection
    /// order — equal to the sum over the matching blocking clients.
    pub stats: CrawlStats,
    /// Connections held in flight simultaneously, summed over the driver
    /// threads (each driver's lanes really are concurrently in flight on
    /// its reactor; drivers run in parallel threads).
    pub peak_in_flight: usize,
}

impl QuerySwarm {
    /// A swarm of `connections` lanes against `endpoint`, multiplexed
    /// over at most 8 driver threads by default.
    pub fn new(endpoint: Endpoint, connections: usize) -> QuerySwarm {
        QuerySwarm {
            endpoint,
            config: CrawlerConfig::default(),
            retry: RetryPolicy::default(),
            connections: connections.max(1),
            drivers: 8,
            jitter_seed: 0,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(2),
            sim_seed: 0,
        }
    }

    /// Use a specific client configuration (user-agent, locale, device
    /// profile).
    pub fn config(mut self, config: CrawlerConfig) -> QuerySwarm {
        self.config = config;
        self
    }

    /// Use a specific retry policy (each lane re-seeds its jitter with
    /// `jitter_seed ^ connection_id` on top of it).
    pub fn retry(mut self, retry: RetryPolicy) -> QuerySwarm {
        self.retry = retry;
        self
    }

    /// Driver threads to multiplex the lanes over (clamped to at least 1
    /// and at most the connection count).
    pub fn drivers(mut self, drivers: usize) -> QuerySwarm {
        self.drivers = drivers.max(1);
        self
    }

    /// Base of the per-connection backoff jitter seeds, mirroring
    /// [`QueryClientBuilder::jitter_seed`] on each blocking client.
    pub fn jitter_seed(mut self, seed: u64) -> QuerySwarm {
        self.jitter_seed = seed;
        self
    }

    /// Set connect/read timeouts (TCP lanes only; sim lanes run on the
    /// logical clock).
    pub fn timeouts(mut self, connect: Duration, read: Duration) -> QuerySwarm {
        self.connect_timeout = connect;
        self.read_timeout = read;
        self
    }

    /// Seed for sim-reactor event delivery (each driver re-seeds with
    /// `seed ^ driver_index`).
    pub fn sim_seed(mut self, seed: u64) -> QuerySwarm {
        self.sim_seed = seed;
        self
    }

    /// Replay `routes` through the swarm and reassemble the responses in
    /// stream order.
    pub fn replay(&self, routes: &[Route]) -> Result<SwarmReplay> {
        let conns = self.connections;
        let drivers = self.drivers.min(conns);
        // Driver d owns lanes d, d+D, …; lane c owns stream indices
        // c, c+C, … — the blocking generators' round-robin split.
        let mut plans: Vec<Vec<LaneSpec<RouteListJob>>> = (0..drivers).map(|_| Vec::new()).collect();
        for c in 0..conns {
            let lane_routes: Vec<(Route, bool)> = routes
                .iter()
                .skip(c)
                .step_by(conns)
                .map(|r| (r.clone(), false))
                .collect();
            if lane_routes.is_empty() {
                continue;
            }
            plans[c % drivers].push(LaneSpec {
                connection_id: c as u64,
                retry: RetryPolicy {
                    jitter_seed: self.jitter_seed ^ c as u64,
                    ..self.retry.clone()
                },
                job: RouteListJob::new(lane_routes),
            });
        }
        let mut harvested = std::thread::scope(|scope| {
            let handles: Vec<_> = plans
                .into_iter()
                .enumerate()
                .map(|(d, specs)| {
                    let opts = LaneOpts {
                        config: self.config.clone(),
                        admission: None,
                        connect_timeout: self.connect_timeout,
                        read_timeout: self.read_timeout,
                        sim_seed: self.sim_seed ^ d as u64,
                    };
                    let endpoint = &self.endpoint;
                    scope.spawn(move || drive_lanes(endpoint, specs, &opts, None))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(res) => res,
                    Err(_) => Err(StoreError::Protocol(
                        "query swarm driver panicked mid-stream".into(),
                    )),
                })
                .collect::<Vec<_>>()
        });

        let mut responses: Vec<Option<Result<Response>>> =
            routes.iter().map(|_| None).collect();
        let mut stats = CrawlStats::default();
        let mut peak_in_flight = 0usize;
        let mut outcomes = Vec::with_capacity(conns);
        for res in harvested.drain(..) {
            let (lanes, report) = res?;
            peak_in_flight += report.peak_in_flight;
            outcomes.extend(lanes);
        }
        outcomes.sort_by_key(|o| o.connection_id);
        for outcome in outcomes {
            let c = outcome.connection_id as usize;
            stats.merge(&outcome.stats);
            for (t, result) in outcome.job.into_results().into_iter().enumerate() {
                responses[t * conns + c] = Some(result);
            }
        }
        let responses = responses
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or_else(|| {
                    Err(StoreError::Protocol(format!(
                        "query {i} was never executed (lane skipped)"
                    )))
                })
            })
            .collect();
        Ok(SwarmReplay {
            responses,
            stats,
            peak_in_flight,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{FaultKind, FaultPlan, FaultPlanConfig};
    use crate::corpus::{generate, CorpusScale, Snapshot};
    use crate::server::{ServerOptions, StoreServer};
    use gaugenn_index::{AppDoc, AppSnap, CorpusIndex, ModelDoc};
    use gaugenn_modelfmt::Framework;
    use std::sync::Arc;

    fn synthetic_index() -> Arc<CorpusIndex> {
        let mut idx = CorpusIndex::new();
        let model = |checksum: &str, flops: u64| ModelDoc {
            checksum: checksum.into(),
            name: format!("net {checksum}"),
            framework: Framework::TfLite,
            task: None,
            quantised: false,
            size_bytes: flops / 2,
            flops,
            params: flops / 4,
            apps_by_snapshot: [("Apr 2021".to_string(), 1u64)].into_iter().collect(),
        };
        idx.ingest_snapshot(
            "Apr 2021",
            vec![model("aaa", 300), model("bbb", 100), model("ccc", 200)],
            vec![AppDoc {
                package: "com.example".into(),
                category: "maps & navigation".into(),
                by_snapshot: [(
                    "Apr 2021".to_string(),
                    AppSnap {
                        models: 3,
                        ml: true,
                        cloud: false,
                    },
                )]
                .into_iter()
                .collect(),
            }],
        );
        Arc::new(idx)
    }

    fn start_indexed(chaos: Option<FaultPlan>) -> StoreServer {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        StoreServer::start_with(
            corpus,
            ServerOptions {
                chaos,
                index: Some(synthetic_index()),
                ..ServerOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn typed_queries_roundtrip_over_the_wire() {
        let server = start_indexed(None);
        let mut client = QueryClient::builder(server.addr()).build().unwrap();
        let rows = client.models(&ModelQuery::default()).unwrap();
        let got: Vec<&str> = rows.iter().map(|r| r.checksum.as_str()).collect();
        assert_eq!(got, vec!["aaa", "ccc", "bbb"], "flops-descending");
        assert_eq!(rows[0].name, "net aaa");
        let apps = client.apps(&AppQuery::default()).unwrap();
        assert_eq!(apps.len(), 1);
        assert_eq!(apps[0].category, "maps & navigation");
        let stats = client.stats().unwrap();
        assert!(stats.iter().any(|(k, v)| k == "models" && v == "3"));
    }

    #[test]
    fn filters_travel_encoded_and_apply() {
        let server = start_indexed(None);
        let mut client = QueryClient::builder(server.addr()).build().unwrap();
        let rows = client
            .models(&ModelQuery {
                min_flops: Some(150),
                max_flops: Some(250),
                snapshot: Some("Apr 2021".into()),
                ..ModelQuery::default()
            })
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].checksum, "ccc");
        let apps = client
            .apps(&AppQuery {
                categories: vec!["maps & navigation".into()],
                ml_only: true,
                ..AppQuery::default()
            })
            .unwrap();
        assert_eq!(apps.len(), 1);
    }

    #[test]
    fn query_without_index_is_a_typed_not_found() {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        let server = StoreServer::start(corpus).unwrap();
        let mut client = QueryClient::builder(server.addr()).build().unwrap();
        match client.stats() {
            Err(StoreError::NotFound(_)) => {}
            other => panic!("want NotFound, got {other:?}"),
        }
    }

    fn start_indexed_sim(chaos: Option<FaultPlan>) -> StoreServer {
        let corpus = generate(CorpusScale::Tiny, Snapshot::Y2021, 7);
        StoreServer::start_with(
            corpus,
            ServerOptions {
                chaos,
                index: Some(synthetic_index()),
                reactor: Some(crate::reactor::ReactorMode::Sim),
                ..ServerOptions::default()
            },
        )
        .unwrap()
    }

    fn query_stream() -> Vec<Route> {
        let mut routes = Vec::new();
        for i in 0..5u64 {
            routes.push(Route::QueryModels(ModelQuery {
                limit: Some(1 + i),
                ..ModelQuery::default()
            }));
            routes.push(Route::QueryApps(AppQuery {
                limit: Some(1 + i),
                ..AppQuery::default()
            }));
            routes.push(Route::QueryStats);
        }
        routes
    }

    #[test]
    fn swarm_matches_a_fleet_of_blocking_clients() {
        let server = start_indexed_sim(None);
        let routes = query_stream();
        let conns = 4usize;
        let replay = QuerySwarm::new(server.endpoint(), conns)
            .drivers(2)
            .jitter_seed(99)
            .replay(&routes)
            .unwrap();
        assert_eq!(replay.responses.len(), routes.len());
        assert!(
            replay.peak_in_flight >= conns,
            "every lane in flight at once, got {}",
            replay.peak_in_flight
        );
        let mut blocking_stats = CrawlStats::default();
        for c in 0..conns {
            let mut client = QueryClient::builder_at(server.endpoint())
                .connection_id(c as u64)
                .jitter_seed(99 ^ c as u64)
                .build()
                .unwrap();
            for (t, route) in routes.iter().skip(c).step_by(conns).enumerate() {
                let want = client.raw(route).unwrap();
                let got = replay.responses[t * conns + c].as_ref().unwrap();
                assert_eq!(got.status, want.status, "{route}");
                assert_eq!(got.body, want.body, "{route}");
            }
            blocking_stats.merge(client.transport_stats());
        }
        assert_eq!(replay.stats, blocking_stats, "counters match the fleet");
    }

    #[test]
    fn swarm_absorbs_chaos_byte_identically() {
        let plan = FaultPlan::new(FaultPlanConfig {
            seed: 11,
            fault_permille: 400,
            kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
            max_faults_per_route: 2,
            ..FaultPlanConfig::default()
        });
        let calm = start_indexed_sim(None);
        let stormy = start_indexed_sim(Some(plan));
        let routes = query_stream();
        let want = QuerySwarm::new(calm.endpoint(), 3)
            .drivers(2)
            .replay(&routes)
            .unwrap();
        let got = QuerySwarm::new(stormy.endpoint(), 3)
            .drivers(2)
            .replay(&routes)
            .unwrap();
        for (i, (a, b)) in want.responses.iter().zip(&got.responses).enumerate() {
            assert_eq!(
                a.as_ref().unwrap().body,
                b.as_ref().unwrap().body,
                "query {i} diverged under chaos"
            );
        }
        let st = &got.stats;
        assert!(
            st.retries + st.reconnects > 0,
            "chaos must actually have fired: {st:?}"
        );
    }

    #[test]
    fn queries_survive_chaos_with_typed_errors() {
        // Resets and transient statuses under the retry budget must be
        // absorbed; the answers must match a calm server's byte-for-byte.
        let plan = FaultPlan::new(FaultPlanConfig {
            seed: 11,
            fault_permille: 400,
            kinds: vec![FaultKind::Reset, FaultKind::TransientStatus],
            max_faults_per_route: 2, // < default max_attempts of 4
            ..FaultPlanConfig::default()
        });
        let calm = start_indexed(None);
        let stormy = start_indexed(Some(plan));
        let mut a = QueryClient::builder(calm.addr()).build().unwrap();
        let mut b = QueryClient::builder(stormy.addr())
            .connection_id(5)
            .build()
            .unwrap();
        for q in [
            ModelQuery::default(),
            ModelQuery {
                frameworks: vec!["tflite".into()],
                limit: Some(2),
                ..ModelQuery::default()
            },
        ] {
            let want = a.raw(&Route::QueryModels(q.clone())).unwrap().body;
            let got = b.raw(&Route::QueryModels(q)).unwrap().body;
            assert_eq!(want, got);
        }
        let st = b.transport_stats();
        assert!(
            st.retries + st.reconnects > 0,
            "chaos must actually have fired: {st:?}"
        );
    }
}
