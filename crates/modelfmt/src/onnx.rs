//! ONNX container (`.onnx`): a ModelProto-shaped protobuf message with
//! `ir_version` (field 1), `producer_name` (field 2) and `graph` (field 7).
//! Like TF, no magic bytes — the probe is structural.

use crate::graphcodec::{decode_graph, encode_graph};
use crate::minipb::{PbReader, PbValue, PbWriter};
use crate::{FmtError, Framework, ModelArtifact, Result};
use gaugenn_dnn::Graph;

const F_IR_VERSION: u32 = 1;
const F_PRODUCER: u32 = 2;
const F_GRAPH: u32 = 7;
/// IR version we emit.
pub const IR_VERSION: u64 = 8;

/// Encode a graph as a `.onnx` file.
pub fn encode(graph: &Graph) -> Result<ModelArtifact> {
    let mut w = PbWriter::new();
    w.varint(F_IR_VERSION, IR_VERSION);
    w.string(F_PRODUCER, "gaugenn");
    w.bytes(F_GRAPH, &encode_graph(graph));
    Ok(ModelArtifact {
        framework: Framework::Onnx,
        files: vec![(format!("{}.onnx", graph.name), w.finish())],
    })
}

/// Decode a `.onnx` file.
pub fn decode(bytes: &[u8]) -> Result<Graph> {
    decode_graph(parse_envelope(bytes)?)
}

fn parse_envelope(bytes: &[u8]) -> Result<&[u8]> {
    let mut r = PbReader::new(bytes);
    let mut ir = None;
    let mut graph = None;
    while !r.at_end() {
        let (field, value) = r.next_field().map_err(|e| FmtError::Malformed {
            framework: Framework::Onnx,
            reason: e.to_string(),
        })?;
        match (field, value) {
            (F_IR_VERSION, PbValue::Varint(v)) => ir = Some(v),
            (F_PRODUCER, PbValue::Bytes(_)) => {}
            (F_GRAPH, PbValue::Bytes(b)) => graph = Some(b),
            _ => {
                return Err(FmtError::Malformed {
                    framework: Framework::Onnx,
                    reason: format!("unexpected field {field}"),
                })
            }
        }
    }
    match (ir, graph) {
        // Real ONNX IR versions run 3..=10; anything else is suspicious.
        (Some(v), Some(g)) if (3..=10).contains(&v) => Ok(g),
        _ => Err(FmtError::Malformed {
            framework: Framework::Onnx,
            reason: "missing ir_version or graph".into(),
        }),
    }
}

/// Structural probe: parses as a ModelProto envelope.
pub fn probe(bytes: &[u8]) -> bool {
    parse_envelope(bytes).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip_and_probe() {
        let m = build_for_task(Task::PoseEstimation, 6, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        assert!(probe(art.primary()));
        assert_eq!(decode(art.primary()).unwrap(), m.graph);
    }

    #[test]
    fn probe_rejects_tf() {
        let m = build_for_task(Task::MovementTracking, 6, SizeClass::Small, true);
        let tf = crate::tf::encode(&m.graph).unwrap();
        assert!(!probe(tf.primary()));
    }
}
