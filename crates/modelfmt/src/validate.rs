//! Two-stage model validation (§3.1).
//!
//! Stage 1: the extension pre-filter ([`crate::formats::candidates_for`]) — cheap,
//! wide, and highly ambiguous (`.pb` alone maps to five frameworks).
//! Stage 2: per-framework binary signature probes, "inspired by the
//! open-source Netron tool": `TFL3` at offset 4 for TFLite, the `7767517`
//! magic line for ncnn params, `DLC1` for SNPE, structural protobuf probes
//! for the magic-free formats.
//!
//! Encrypted or obfuscated payloads fail every probe and drop out here —
//! the paper's stated limitation, which §4.3 quantifies as the gap between
//! apps-with-ML-libraries and apps-with-extractable-models.

use crate::formats::{candidates_for, Framework};
use crate::{caffe, ncnn, snpe, tf, tflite};

/// What role a validated file plays in its model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// A self-contained model file.
    Complete,
    /// The graph-description half of a split format.
    GraphPart,
    /// The weights half of a split format.
    WeightsPart,
}

/// A positively-validated model file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validated {
    /// The framework whose signature matched.
    pub framework: Framework,
    /// Role of this file within the model.
    pub role: FileRole,
}

/// Validate one candidate file. Returns `None` when no framework's
/// signature matches (not a model, or encrypted/obfuscated).
pub fn validate(filename: &str, bytes: &[u8]) -> Option<Validated> {
    for fw in candidates_for(filename) {
        if let Some(v) = probe(fw, filename, bytes) {
            return Some(v);
        }
    }
    None
}

fn probe(fw: Framework, filename: &str, bytes: &[u8]) -> Option<Validated> {
    let lower = filename.to_ascii_lowercase();
    match fw {
        Framework::TfLite => tflite::probe(bytes).then_some(Validated {
            framework: fw,
            role: FileRole::Complete,
        }),
        Framework::Snpe => snpe::probe(bytes).then_some(Validated {
            framework: fw,
            role: FileRole::Complete,
        }),
        Framework::TensorFlow => {
            // Only the .pb graph container is a self-contained TF model;
            // checkpoints/meta/index files are not decodable models.
            (lower.ends_with(".pb") && tf::probe(bytes)).then_some(Validated {
                framework: fw,
                role: FileRole::Complete,
            })
        }
        Framework::Onnx => (lower.ends_with(".onnx") && crate::onnx::probe(bytes)).then_some(
            Validated {
                framework: fw,
                role: FileRole::Complete,
            },
        ),
        Framework::Caffe => {
            if lower.ends_with(".caffemodel") && caffe::probe_caffemodel(bytes) {
                Some(Validated {
                    framework: fw,
                    role: FileRole::WeightsPart,
                })
            } else if (lower.ends_with(".prototxt") || lower.ends_with(".pbtxt"))
                && caffe::probe_prototxt(bytes)
            {
                Some(Validated {
                    framework: fw,
                    role: FileRole::GraphPart,
                })
            } else {
                None
            }
        }
        Framework::Ncnn => {
            if lower.ends_with(".param") && ncnn::probe_param(bytes) {
                Some(Validated {
                    framework: fw,
                    role: FileRole::GraphPart,
                })
            } else if lower.ends_with(".bin") && ncnn::probe_bin(bytes) {
                Some(Validated {
                    framework: fw,
                    role: FileRole::WeightsPart,
                })
            } else {
                None
            }
        }
        // Extension-table-only frameworks: tracked for candidate statistics
        // but with no decodable container in the wild corpus (the paper
        // found models only for the five BENCHMARKED frameworks).
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    fn graph() -> gaugenn_dnn::Graph {
        build_for_task(Task::KeywordDetection, 31, SizeClass::Small, true).graph
    }

    #[test]
    fn validates_every_benchmarked_framework() {
        let g = graph();
        for fw in Framework::BENCHMARKED {
            let art = crate::encode(&g, fw).unwrap();
            for (name, bytes) in &art.files {
                let v = validate(name, bytes)
                    .unwrap_or_else(|| panic!("{fw:?} file {name} failed validation"));
                assert_eq!(v.framework, fw, "{name}");
            }
        }
    }

    #[test]
    fn tflite_named_pb_still_validates_as_tflite() {
        // Ambiguous extension + signature disambiguation: a TFLite payload
        // named .pb must validate as TFLite via TFL3, not as TF.
        let g = graph();
        let art = crate::encode(&g, Framework::TfLite).unwrap();
        let v = validate("model.pb", art.primary()).unwrap();
        assert_eq!(v.framework, Framework::TfLite);
    }

    #[test]
    fn encrypted_model_fails_validation() {
        let g = graph();
        let art = crate::encode(&g, Framework::TfLite).unwrap();
        // "Encrypt" by xoring every byte — magic disappears.
        let enc: Vec<u8> = art.primary().iter().map(|b| b ^ 0x5A).collect();
        assert!(validate("model.tflite", &enc).is_none());
    }

    #[test]
    fn wrong_extension_fails_prefilter() {
        let g = graph();
        let art = crate::encode(&g, Framework::TfLite).unwrap();
        assert!(validate("model.png", art.primary()).is_none());
    }

    #[test]
    fn random_bytes_fail_every_probe() {
        let noise: Vec<u8> = (0..256u32).map(|i| (i.wrapping_mul(97) % 251) as u8).collect();
        for name in ["x.pb", "x.bin", "x.tflite", "x.param", "x.caffemodel", "x.onnx"] {
            assert!(validate(name, &noise).is_none(), "{name}");
        }
    }

    #[test]
    fn split_format_roles() {
        let g = graph();
        let art = crate::encode(&g, Framework::Caffe).unwrap();
        let weights = validate(&art.files[0].0, &art.files[0].1).unwrap();
        assert_eq!(weights.role, FileRole::WeightsPart);
        let graph_part = validate(&art.files[1].0, &art.files[1].1).unwrap();
        assert_eq!(graph_part.role, FileRole::GraphPart);
    }

    #[test]
    fn ncnn_bin_not_confused_with_tflite_bin() {
        let g = graph();
        let art = crate::encode(&g, Framework::Ncnn).unwrap();
        let v = validate(&art.files[1].0, &art.files[1].1).unwrap();
        assert_eq!(v.framework, Framework::Ncnn);
    }
}
