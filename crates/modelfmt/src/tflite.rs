//! TFLite container: a FlatBuffer-style envelope with the `TFL3` file
//! identifier at offset 4 — the paper's canonical validation example (§3.1).

use crate::graphcodec::{decode_graph, encode_graph};
use crate::miniflat;
use crate::{Framework, ModelArtifact, Result};
use gaugenn_dnn::Graph;

/// The TFLite FlatBuffer file identifier.
pub const IDENT: &[u8; 4] = b"TFL3";
/// Schema version we emit.
pub const SCHEMA_VERSION: u32 = 3;

/// Encode a graph as a `.tflite` file.
pub fn encode(graph: &Graph) -> Result<ModelArtifact> {
    let body = encode_graph(graph);
    let bytes = miniflat::wrap(IDENT, SCHEMA_VERSION, &body);
    Ok(ModelArtifact {
        framework: Framework::TfLite,
        files: vec![(format!("{}.tflite", graph.name), bytes)],
    })
}

/// Decode a `.tflite` file.
pub fn decode(bytes: &[u8]) -> Result<Graph> {
    let (_version, body) = miniflat::unwrap(bytes, IDENT)?;
    decode_graph(body)
}

/// Signature probe: `TFL3` at offset 4.
pub fn probe(bytes: &[u8]) -> bool {
    miniflat::has_identifier(bytes, IDENT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip_and_probe() {
        let m = build_for_task(Task::FaceDetection, 77, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        assert!(art.files[0].0.ends_with(".tflite"));
        assert!(probe(art.primary()));
        let back = decode(art.primary()).unwrap();
        assert_eq!(back, m.graph);
    }

    #[test]
    fn probe_rejects_other_bytes() {
        assert!(!probe(b"DLC1...."));
        assert!(!probe(b""));
        assert!(!probe(b"\x08\x00\x00\x00TFL2xxxx"));
    }
}
