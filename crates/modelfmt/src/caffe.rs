//! Caffe container: a split format with a text graph description
//! (`.prototxt`) and a binary weights file (`.caffemodel`).
//!
//! §4.5 footnote 6: "Most apps distribute the model weights in their apk,
//! either in a single file … or in separate files (e.g. caffe). In either
//! case, we perform an md5 checksum on both the model and weights" — so the
//! split is load-bearing for the uniqueness analysis.

use crate::graphcodec::{decode_graph, encode_graph};
use crate::minipb::{PbReader, PbValue, PbWriter};
use crate::{FmtError, Framework, ModelArtifact, Result};
use gaugenn_dnn::Graph;

const F_MAGIC: u32 = 1;
const F_BODY: u32 = 2;
const CAFFE_MAGIC: &[u8] = b"caffe-binary-v1";

fn err(reason: impl Into<String>) -> FmtError {
    FmtError::Malformed {
        framework: Framework::Caffe,
        reason: reason.into(),
    }
}

/// Encode a graph as `<name>.prototxt` + `<name>.caffemodel`.
pub fn encode(graph: &Graph) -> Result<ModelArtifact> {
    // prototxt: human-readable layer listing.
    let mut proto = format!("name: \"{}\"\n", graph.name);
    for node in &graph.nodes {
        proto.push_str(&format!(
            "layer {{\n  name: \"{}\"\n  type: \"{}\"\n}}\n",
            node.name,
            node.kind.family()
        ));
    }
    // caffemodel: magic + canonical body.
    let mut w = PbWriter::new();
    w.bytes(F_MAGIC, CAFFE_MAGIC);
    w.bytes(F_BODY, &encode_graph(graph));
    Ok(ModelArtifact {
        framework: Framework::Caffe,
        files: vec![
            (format!("{}.caffemodel", graph.name), w.finish()),
            (format!("{}.prototxt", graph.name), proto.into_bytes()),
        ],
    })
}

/// Decode from the file set; the `.caffemodel` part is authoritative and
/// the `.prototxt`, when present, is cross-checked for layer-count
/// agreement (a mismatched pair is how you catch mixed-up app assets).
pub fn decode(files: &[(String, Vec<u8>)]) -> Result<Graph> {
    let model = files
        .iter()
        .find(|(n, _)| n.ends_with(".caffemodel"))
        .ok_or_else(|| err("missing .caffemodel part"))?;
    let body = parse_caffemodel(&model.1)?;
    let graph = decode_graph(body)?;
    if let Some((_, proto)) = files.iter().find(|(n, _)| n.ends_with(".prototxt")) {
        let text = String::from_utf8_lossy(proto);
        let declared = text.matches("layer {").count();
        if declared != graph.nodes.len() {
            return Err(err(format!(
                "prototxt declares {declared} layers, caffemodel has {}",
                graph.nodes.len()
            )));
        }
    }
    Ok(graph)
}

fn parse_caffemodel(bytes: &[u8]) -> Result<&[u8]> {
    let mut r = PbReader::new(bytes);
    let mut magic_ok = false;
    let mut body = None;
    while !r.at_end() {
        let (field, value) = r.next_field().map_err(|e| err(e.to_string()))?;
        match (field, value) {
            (F_MAGIC, PbValue::Bytes(b)) => magic_ok = b == CAFFE_MAGIC,
            (F_BODY, PbValue::Bytes(b)) => body = Some(b),
            _ => return Err(err(format!("unexpected field {field}"))),
        }
    }
    if !magic_ok {
        return Err(err("missing caffe magic"));
    }
    body.ok_or_else(|| err("missing body"))
}

/// Probe for a `.caffemodel` payload.
pub fn probe_caffemodel(bytes: &[u8]) -> bool {
    parse_caffemodel(bytes).is_ok()
}

/// Probe for a `.prototxt` payload: text with caffe layer stanzas.
pub fn probe_prototxt(bytes: &[u8]) -> bool {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return false;
    };
    text.starts_with("name:") && text.contains("layer {")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip_split_files() {
        let m = build_for_task(Task::ContourDetection, 15, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        assert_eq!(art.files.len(), 2);
        assert!(probe_caffemodel(&art.files[0].1));
        assert!(probe_prototxt(&art.files[1].1));
        assert_eq!(decode(&art.files).unwrap(), m.graph);
    }

    #[test]
    fn decode_without_prototxt_still_works() {
        let m = build_for_task(Task::ContourDetection, 15, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        let only_model = vec![art.files[0].clone()];
        assert_eq!(decode(&only_model).unwrap(), m.graph);
    }

    #[test]
    fn layer_count_mismatch_detected() {
        let m = build_for_task(Task::MovementTracking, 15, SizeClass::Small, true);
        let other = build_for_task(Task::CrashDetection, 16, SizeClass::Small, true);
        let a1 = encode(&m.graph).unwrap();
        let a2 = encode(&other.graph).unwrap();
        let mixed = vec![a1.files[0].clone(), a2.files[1].clone()];
        assert!(decode(&mixed).is_err());
    }

    #[test]
    fn probes_reject_foreign_bytes() {
        assert!(!probe_caffemodel(b"DLC1xxxx"));
        assert!(!probe_prototxt(b"\x00\x01binary"));
        assert!(!probe_prototxt(b"just some text"));
    }
}
