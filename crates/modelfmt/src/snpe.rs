//! SNPE deep learning container (`.dlc`), Qualcomm's vendor format (§6.3,
//! Appendix B). A magic-prefixed binary: `DLC1` + version + graph body.

use crate::graphcodec::{decode_graph, encode_graph};
use crate::{FmtError, Framework, ModelArtifact, Result};
use gaugenn_dnn::Graph;

/// DLC magic bytes.
pub const MAGIC: &[u8; 4] = b"DLC1";

/// Encode a graph as a `.dlc` file.
pub fn encode(graph: &Graph) -> Result<ModelArtifact> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&1u32.to_le_bytes()); // container version
    bytes.extend_from_slice(&encode_graph(graph));
    Ok(ModelArtifact {
        framework: Framework::Snpe,
        files: vec![(format!("{}.dlc", graph.name), bytes)],
    })
}

/// Decode a `.dlc` file.
pub fn decode(bytes: &[u8]) -> Result<Graph> {
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(FmtError::Malformed {
            framework: Framework::Snpe,
            reason: "missing DLC magic".into(),
        });
    }
    decode_graph(&bytes[8..])
}

/// Signature probe: `DLC1` at offset 0.
pub fn probe(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && &bytes[..4] == MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip_and_probe() {
        let m = build_for_task(Task::ObjectDetection, 11, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        assert!(probe(art.primary()));
        assert_eq!(decode(art.primary()).unwrap(), m.graph);
    }

    #[test]
    fn rejects_tflite_bytes() {
        let m = build_for_task(Task::MovementTracking, 2, SizeClass::Small, true);
        let tfl = crate::tflite::encode(&m.graph).unwrap();
        assert!(!probe(tfl.primary()));
        assert!(decode(tfl.primary()).is_err());
    }
}
