//! The framework/extension table (Appendix A, Table 5).
//!
//! This is the candidate pre-filter: every file extracted from an app whose
//! extension matches a row here becomes a validation candidate. Extensions
//! are highly ambiguous (`.pb` belongs to five frameworks, `.bin` to three),
//! which is exactly why the binary-signature stage exists.

/// Every framework tracked by gaugeNN's extraction table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Framework {
    /// ONNX interchange format.
    Onnx,
    /// Apache MXNet.
    MxNet,
    /// Keras HDF5 / SavedModel shims.
    Keras,
    /// BVLC Caffe (deprecated 2017, still 10.6 % of the paper's corpus).
    Caffe,
    /// Caffe2.
    Caffe2,
    /// PyTorch / PyTorch Mobile.
    PyTorch,
    /// Lua Torch.
    Torch,
    /// Qualcomm SNPE deep learning container.
    Snpe,
    /// Tencent FeatherCNN.
    FeatherCnn,
    /// TensorFlow Lite (86 % of the corpus).
    TfLite,
    /// TensorFlow (frozen graphs / checkpoints).
    TensorFlow,
    /// scikit-learn pickles.
    Sklearn,
    /// Arm NN.
    ArmNn,
    /// Alibaba MNN.
    Mnn,
    /// Tencent NCNN.
    Ncnn,
    /// OPEN AI LAB Tengine.
    Tengine,
    /// Julia Flux.
    Flux,
    /// Chainer.
    Chainer,
}

impl Framework {
    /// Lower-case display name matching the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            Framework::Onnx => "onnx",
            Framework::MxNet => "mxnet",
            Framework::Keras => "keras",
            Framework::Caffe => "caffe",
            Framework::Caffe2 => "caffe2",
            Framework::PyTorch => "pytorch",
            Framework::Torch => "torch",
            Framework::Snpe => "snpe",
            Framework::FeatherCnn => "feathercnn",
            Framework::TfLite => "tflite",
            Framework::TensorFlow => "tf",
            Framework::Sklearn => "sklearn",
            Framework::ArmNn => "armnn",
            Framework::Mnn => "mnn",
            Framework::Ncnn => "ncnn",
            Framework::Tengine => "tengine",
            Framework::Flux => "flux",
            Framework::Chainer => "chainer",
        }
    }

    /// Extensions claimed by this framework, as listed in Table 5 (leading
    /// dot omitted; multi-dot suffixes like `pth.tar` included verbatim).
    pub const fn extensions(self) -> &'static [&'static str] {
        match self {
            Framework::Onnx => &["onnx", "pb", "pbtxt", "prototxt"],
            Framework::MxNet => &["mar", "model", "json", "params"],
            Framework::Keras => &["h5", "hd5", "hdf5", "keras", "json", "model", "pb", "pth"],
            Framework::Caffe => &["caffemodel", "pbtxt", "prototxt", "pt"],
            Framework::Caffe2 => &["pb", "pbtxt", "prototxt"],
            Framework::PyTorch => &[
                "pt", "pth", "pt1", "pkl", "h5", "t7", "model", "dms", "pth.tar", "ckpt", "bin",
                "pb", "tar",
            ],
            Framework::Torch => &["t7", "dat"],
            Framework::Snpe => &["dlc"],
            Framework::FeatherCnn => &["feathermodel"],
            Framework::TfLite => &["tflite", "lite", "tfl", "bin", "pb"],
            Framework::TensorFlow => &["pb", "meta", "pbtxt", "prototxt", "json", "index", "ckpt"],
            Framework::Sklearn => &["pkl", "joblib", "model"],
            Framework::ArmNn => &["armnn"],
            Framework::Mnn => &["mnn"],
            Framework::Ncnn => &["param", "bin", "cfg.ncnn", "weights.ncnn", "ncnn"],
            Framework::Tengine => &["tmfile"],
            Framework::Flux => &["bson"],
            Framework::Chainer => &["npz", "h5", "hd5", "hdf5", "chainermodel"],
        }
    }

    /// All frameworks in Table 5 order.
    pub const ALL: [Framework; 18] = [
        Framework::Onnx,
        Framework::MxNet,
        Framework::Keras,
        Framework::Caffe,
        Framework::Caffe2,
        Framework::PyTorch,
        Framework::Torch,
        Framework::Snpe,
        Framework::FeatherCnn,
        Framework::TfLite,
        Framework::TensorFlow,
        Framework::Sklearn,
        Framework::ArmNn,
        Framework::Mnn,
        Framework::Ncnn,
        Framework::Tengine,
        Framework::Flux,
        Framework::Chainer,
    ];

    /// The subset of frameworks the study actually found models for
    /// (§4.3: TFLite 1436, caffe 176, ncnn 46, TF 5, SNPE 3).
    pub const BENCHMARKED: [Framework; 5] = [
        Framework::TfLite,
        Framework::Caffe,
        Framework::Ncnn,
        Framework::TensorFlow,
        Framework::Snpe,
    ];
}

/// Frameworks whose extension table claims `filename` (longest-suffix
/// match so `model.cfg.ncnn` hits NCNN's `cfg.ncnn`, not a bare `ncnn`).
pub fn candidates_for(filename: &str) -> Vec<Framework> {
    let lower = filename.to_ascii_lowercase();
    Framework::ALL
        .iter()
        .copied()
        .filter(|fw| {
            fw.extensions()
                .iter()
                .any(|ext| lower.ends_with(&format!(".{ext}")))
        })
        .collect()
}

/// Total number of (framework, extension) format rows — the paper's
/// "compiled list of 69 known DNN framework formats".
pub fn format_count() -> usize {
    Framework::ALL.iter().map(|f| f.extensions().len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_nine_formats() {
        assert_eq!(format_count(), 69);
    }

    #[test]
    fn pb_is_ambiguous() {
        let c = candidates_for("assets/frozen_graph.pb");
        assert!(c.contains(&Framework::TensorFlow));
        assert!(c.contains(&Framework::TfLite));
        assert!(c.contains(&Framework::Onnx));
        assert!(c.contains(&Framework::PyTorch));
        assert!(c.len() >= 5);
    }

    #[test]
    fn tflite_extension_unambiguous() {
        assert_eq!(candidates_for("m.tflite"), vec![Framework::TfLite]);
        assert_eq!(candidates_for("m.dlc"), vec![Framework::Snpe]);
    }

    #[test]
    fn multi_dot_suffix_matches() {
        assert!(candidates_for("net.cfg.ncnn").contains(&Framework::Ncnn));
        assert!(candidates_for("w.pth.tar").contains(&Framework::PyTorch));
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(candidates_for("M.TFLITE"), vec![Framework::TfLite]);
    }

    #[test]
    fn non_model_files_have_no_candidates() {
        assert!(candidates_for("texture.png").is_empty());
        assert!(candidates_for("README").is_empty());
        assert!(candidates_for("bin").is_empty(), "extension match needs the dot");
    }
}
