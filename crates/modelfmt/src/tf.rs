//! TensorFlow frozen-graph container (`.pb`).
//!
//! Protobuf files carry no magic bytes, so validation is purely structural:
//! the stream must parse as a message with exactly the GraphDef-shaped
//! fields we emit (a version varint in field 1, the graph payload in field
//! 2). This mirrors why the paper's candidate funnel is so wide for `.pb`.

use crate::graphcodec::{decode_graph, encode_graph};
use crate::minipb::{PbReader, PbValue, PbWriter};
use crate::{FmtError, Framework, ModelArtifact, Result};
use gaugenn_dnn::Graph;

const F_VERSION: u32 = 1;
const F_GRAPH: u32 = 2;
/// GraphDef version we emit.
pub const GRAPHDEF_VERSION: u64 = 27;

/// Encode a graph as a TensorFlow `.pb` file.
pub fn encode(graph: &Graph) -> Result<ModelArtifact> {
    let mut w = PbWriter::new();
    w.varint(F_VERSION, GRAPHDEF_VERSION);
    w.bytes(F_GRAPH, &encode_graph(graph));
    Ok(ModelArtifact {
        framework: Framework::TensorFlow,
        files: vec![(format!("{}.pb", graph.name), w.finish())],
    })
}

/// Decode a TensorFlow `.pb` file.
pub fn decode(bytes: &[u8]) -> Result<Graph> {
    let body = parse_envelope(bytes)?;
    decode_graph(body)
}

fn parse_envelope(bytes: &[u8]) -> Result<&[u8]> {
    let mut r = PbReader::new(bytes);
    let mut version = None;
    let mut graph = None;
    while !r.at_end() {
        let (field, value) = r.next_field().map_err(|e| FmtError::Malformed {
            framework: Framework::TensorFlow,
            reason: e.to_string(),
        })?;
        match (field, value) {
            (F_VERSION, PbValue::Varint(v)) => version = Some(v),
            (F_GRAPH, PbValue::Bytes(b)) => graph = Some(b),
            _ => {
                return Err(FmtError::Malformed {
                    framework: Framework::TensorFlow,
                    reason: format!("unexpected field {field}"),
                })
            }
        }
    }
    match (version, graph) {
        (Some(v), Some(g)) if v <= 1000 => Ok(g),
        _ => Err(FmtError::Malformed {
            framework: Framework::TensorFlow,
            reason: "missing version or graph field".into(),
        }),
    }
}

/// Structural probe: parses as the GraphDef envelope.
pub fn probe(bytes: &[u8]) -> bool {
    parse_envelope(bytes).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip_and_probe() {
        let m = build_for_task(Task::ImageClassification, 8, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        assert!(probe(art.primary()));
        assert_eq!(decode(art.primary()).unwrap(), m.graph);
    }

    #[test]
    fn probe_rejects_onnx_and_garbage() {
        let m = build_for_task(Task::MovementTracking, 8, SizeClass::Small, true);
        let onnx = crate::onnx::encode(&m.graph).unwrap();
        assert!(!probe(onnx.primary()));
        assert!(!probe(b"not protobuf at all"));
        assert!(!probe(&[]));
    }
}
