//! Canonical graph body codec.
//!
//! Every framework container in this crate wraps the same underlying graph
//! encoding (built on [`minipb`](crate::minipb)), differing in envelope,
//! field numbering, magic bytes and file split — enough for signature
//! validation to be meaningful, while keeping a single well-tested
//! serialisation of layers and weights.
//!
//! Byte-stability matters: §4.5's uniqueness analysis md5-checksums the
//! serialised model and per-layer weights, so encoding must be a pure
//! function of the graph.

use crate::minipb::{unpack_floats, unpack_varints, PbReader, PbWriter};
use crate::{FmtError, Result};
use gaugenn_dnn::graph::{ActKind, BinOp, Graph, LayerKind, Node, Padding, PoolKind, ResizeMode};
use gaugenn_dnn::tensor::{DType, QuantParams, Shape, WeightData};

// Node message fields.
const F_NAME: u32 = 1;
const F_KIND: u32 = 2;
const F_UPARAMS: u32 = 3;
const F_FPARAMS: u32 = 4;
const F_INPUTS: u32 = 5;
const F_WEIGHTS: u32 = 6;
const F_BIAS: u32 = 7;

// Graph message fields.
const G_NAME: u32 = 1;
const G_NODE: u32 = 2;
const G_OUTPUTS: u32 = 3;

// WeightData message fields.
const W_DTYPE: u32 = 1;
const W_F32: u32 = 2;
const W_I8: u32 = 3;
const W_SCALE: u32 = 4;
const W_ZERO: u32 = 5;

/// Encode a graph into the canonical body bytes.
pub fn encode_graph(graph: &Graph) -> Vec<u8> {
    let mut g = PbWriter::new();
    g.string(G_NAME, &graph.name);
    for node in &graph.nodes {
        let mut n = PbWriter::new();
        n.string(F_NAME, &node.name);
        let (kind_id, uparams, fparams) = kind_to_wire(&node.kind);
        n.varint(F_KIND, kind_id);
        if !uparams.is_empty() {
            n.packed_varints(F_UPARAMS, &uparams);
        }
        if !fparams.is_empty() {
            n.packed_floats(F_FPARAMS, &fparams);
        }
        if !node.inputs.is_empty() {
            let ins: Vec<u64> = node.inputs.iter().map(|&i| i as u64).collect();
            n.packed_varints(F_INPUTS, &ins);
        }
        if let Some(w) = &node.weights {
            n.message(F_WEIGHTS, &encode_weights(w));
        }
        if let Some(b) = &node.bias {
            n.message(F_BIAS, &encode_weights(b));
        }
        g.message(G_NODE, &n);
    }
    let outs: Vec<u64> = graph.outputs.iter().map(|&o| o as u64).collect();
    g.packed_varints(G_OUTPUTS, &outs);
    g.finish()
}

/// Decode the canonical body back into a graph, validating it.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph> {
    let mut r = PbReader::new(bytes);
    let mut name = String::new();
    let mut nodes = Vec::new();
    let mut outputs = Vec::new();
    while !r.at_end() {
        let (field, value) = r.next_field()?;
        match field {
            G_NAME => name = value.as_str()?.to_string(),
            G_NODE => nodes.push(decode_node(value.as_bytes()?)?),
            G_OUTPUTS => {
                outputs = unpack_varints(value.as_bytes()?)?
                    .into_iter()
                    .map(|v| v as usize)
                    .collect()
            }
            _ => return Err(FmtError::Wire(format!("unknown graph field {field}"))),
        }
    }
    let graph = Graph {
        name,
        nodes,
        outputs,
    };
    graph.validate()?;
    Ok(graph)
}

fn decode_node(bytes: &[u8]) -> Result<Node> {
    let mut r = PbReader::new(bytes);
    let mut name = String::new();
    let mut kind_id = None;
    let mut uparams = Vec::new();
    let mut fparams = Vec::new();
    let mut inputs = Vec::new();
    let mut weights = None;
    let mut bias = None;
    while !r.at_end() {
        let (field, value) = r.next_field()?;
        match field {
            F_NAME => name = value.as_str()?.to_string(),
            F_KIND => kind_id = Some(value.as_u64()?),
            F_UPARAMS => uparams = unpack_varints(value.as_bytes()?)?,
            F_FPARAMS => fparams = unpack_floats(value.as_bytes()?)?,
            F_INPUTS => {
                inputs = unpack_varints(value.as_bytes()?)?
                    .into_iter()
                    .map(|v| v as usize)
                    .collect()
            }
            F_WEIGHTS => weights = Some(decode_weights(value.as_bytes()?)?),
            F_BIAS => bias = Some(decode_weights(value.as_bytes()?)?),
            _ => return Err(FmtError::Wire(format!("unknown node field {field}"))),
        }
    }
    let kind_id = kind_id.ok_or_else(|| FmtError::Wire("node missing kind".into()))?;
    let kind = wire_to_kind(kind_id, &uparams, &fparams)?;
    Ok(Node {
        name,
        kind,
        inputs,
        weights,
        bias,
    })
}

fn encode_weights(w: &WeightData) -> PbWriter {
    let mut m = PbWriter::new();
    match w {
        WeightData::F32(v) => {
            m.varint(W_DTYPE, 0);
            m.packed_floats(W_F32, v);
        }
        WeightData::I8 { data, params } => {
            m.varint(W_DTYPE, 1);
            let raw: Vec<u8> = data.iter().map(|&b| b as u8).collect();
            m.bytes(W_I8, &raw);
            m.float(W_SCALE, params.scale);
            m.varint(W_ZERO, zigzag(params.zero_point as i64));
        }
    }
    m
}

fn decode_weights(bytes: &[u8]) -> Result<WeightData> {
    let mut r = PbReader::new(bytes);
    let mut dtype = 0u64;
    let mut f32s = Vec::new();
    let mut i8s = Vec::new();
    let mut scale = 1.0f32;
    let mut zero = 0i32;
    while !r.at_end() {
        let (field, value) = r.next_field()?;
        match field {
            W_DTYPE => dtype = value.as_u64()?,
            W_F32 => f32s = unpack_floats(value.as_bytes()?)?,
            W_I8 => i8s = value.as_bytes()?.iter().map(|&b| b as i8).collect(),
            W_SCALE => scale = value.as_f32()?,
            W_ZERO => zero = unzigzag(value.as_u64()?) as i32,
            _ => return Err(FmtError::Wire(format!("unknown weight field {field}"))),
        }
    }
    match dtype {
        0 => Ok(WeightData::F32(f32s)),
        1 => Ok(WeightData::I8 {
            data: i8s,
            params: QuantParams {
                scale,
                zero_point: zero,
            },
        }),
        other => Err(FmtError::Wire(format!("unknown weight dtype {other}"))),
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn dtype_code(d: DType) -> u64 {
    match d {
        DType::F32 => 0,
        DType::I8 => 1,
        DType::U8 => 2,
        DType::I32 => 3,
    }
}
fn code_dtype(c: u64) -> Result<DType> {
    match c {
        0 => Ok(DType::F32),
        1 => Ok(DType::I8),
        2 => Ok(DType::U8),
        3 => Ok(DType::I32),
        other => Err(FmtError::Wire(format!("bad dtype code {other}"))),
    }
}

fn pad_code(p: Padding) -> u64 {
    match p {
        Padding::Same => 0,
        Padding::Valid => 1,
    }
}
fn code_pad(c: u64) -> Result<Padding> {
    match c {
        0 => Ok(Padding::Same),
        1 => Ok(Padding::Valid),
        other => Err(FmtError::Wire(format!("bad padding code {other}"))),
    }
}

fn act_code(a: ActKind) -> u64 {
    match a {
        ActKind::Relu => 0,
        ActKind::Relu6 => 1,
        ActKind::Sigmoid => 2,
        ActKind::Tanh => 3,
        ActKind::HardSwish => 4,
        ActKind::LeakyRelu => 5,
    }
}
fn code_act(c: u64) -> Result<ActKind> {
    Ok(match c {
        0 => ActKind::Relu,
        1 => ActKind::Relu6,
        2 => ActKind::Sigmoid,
        3 => ActKind::Tanh,
        4 => ActKind::HardSwish,
        5 => ActKind::LeakyRelu,
        other => return Err(FmtError::Wire(format!("bad activation code {other}"))),
    })
}

fn pool_code(p: PoolKind) -> u64 {
    match p {
        PoolKind::Max => 0,
        PoolKind::Avg => 1,
    }
}
fn code_pool(c: u64) -> Result<PoolKind> {
    match c {
        0 => Ok(PoolKind::Max),
        1 => Ok(PoolKind::Avg),
        other => Err(FmtError::Wire(format!("bad pool code {other}"))),
    }
}

/// `(kind_id, integer_params, float_params)` wire form of a layer kind.
fn kind_to_wire(kind: &LayerKind) -> (u64, Vec<u64>, Vec<f32>) {
    match kind {
        LayerKind::Input { shape, dtype } => {
            let mut u = vec![dtype_code(*dtype)];
            u.extend(shape.0.iter().map(|&d| d as u64));
            (0, u, vec![])
        }
        LayerKind::Conv2d {
            out_channels,
            kernel,
            stride,
            padding,
        } => (
            1,
            vec![
                *out_channels as u64,
                *kernel as u64,
                *stride as u64,
                pad_code(*padding),
            ],
            vec![],
        ),
        LayerKind::DepthwiseConv2d {
            kernel,
            stride,
            padding,
        } => (
            2,
            vec![*kernel as u64, *stride as u64, pad_code(*padding)],
            vec![],
        ),
        LayerKind::Dense { units } => (3, vec![*units as u64], vec![]),
        LayerKind::Activation(a) => (4, vec![act_code(*a)], vec![]),
        LayerKind::Pool {
            kind,
            kernel,
            stride,
            padding,
        } => (
            5,
            vec![
                pool_code(*kind),
                *kernel as u64,
                *stride as u64,
                pad_code(*padding),
            ],
            vec![],
        ),
        LayerKind::GlobalPool(p) => (6, vec![pool_code(*p)], vec![]),
        LayerKind::Binary(op) => (
            7,
            vec![match op {
                BinOp::Add => 0,
                BinOp::Mul => 1,
                BinOp::Sub => 2,
            }],
            vec![],
        ),
        LayerKind::Concat => (8, vec![], vec![]),
        LayerKind::Reshape { dims } => {
            (9, dims.iter().map(|&d| d as u64).collect(), vec![])
        }
        LayerKind::Resize { out_h, out_w, mode } => (
            10,
            vec![
                *out_h as u64,
                *out_w as u64,
                match mode {
                    ResizeMode::Nearest => 0,
                    ResizeMode::Bilinear => 1,
                },
            ],
            vec![],
        ),
        LayerKind::Slice { begin, len } => (11, vec![*begin as u64, *len as u64], vec![]),
        LayerKind::Softmax => (12, vec![], vec![]),
        LayerKind::BatchNorm => (13, vec![], vec![]),
        LayerKind::Pad { pad } => (14, vec![*pad as u64], vec![]),
        LayerKind::Quantize(q) => (
            15,
            vec![zigzag(q.zero_point as i64)],
            vec![q.scale],
        ),
        LayerKind::Dequantize(q) => (
            16,
            vec![zigzag(q.zero_point as i64)],
            vec![q.scale],
        ),
        LayerKind::Embedding { vocab, dim } => {
            (17, vec![*vocab as u64, *dim as u64], vec![])
        }
        LayerKind::Lstm { units } => (18, vec![*units as u64], vec![]),
        LayerKind::Gru { units } => (19, vec![*units as u64], vec![]),
        LayerKind::MeanTime => (20, vec![], vec![]),
        LayerKind::TransposeConv2d {
            out_channels,
            kernel,
            stride,
        } => (
            21,
            vec![*out_channels as u64, *kernel as u64, *stride as u64],
            vec![],
        ),
        LayerKind::L2Norm => (22, vec![], vec![]),
    }
}

fn need(u: &[u64], n: usize, what: &str) -> Result<()> {
    if u.len() < n {
        Err(FmtError::Wire(format!("{what} needs {n} params, has {}", u.len())))
    } else {
        Ok(())
    }
}

fn wire_to_kind(id: u64, u: &[u64], f: &[f32]) -> Result<LayerKind> {
    Ok(match id {
        0 => {
            need(u, 1, "input")?;
            let dtype = code_dtype(u[0])?;
            let dims: Vec<usize> = u[1..].iter().map(|&d| d as usize).collect();
            LayerKind::Input {
                shape: Shape(dims),
                dtype,
            }
        }
        1 => {
            need(u, 4, "conv2d")?;
            LayerKind::Conv2d {
                out_channels: u[0] as usize,
                kernel: u[1] as usize,
                stride: u[2] as usize,
                padding: code_pad(u[3])?,
            }
        }
        2 => {
            need(u, 3, "depthwise")?;
            LayerKind::DepthwiseConv2d {
                kernel: u[0] as usize,
                stride: u[1] as usize,
                padding: code_pad(u[2])?,
            }
        }
        3 => {
            need(u, 1, "dense")?;
            LayerKind::Dense {
                units: u[0] as usize,
            }
        }
        4 => {
            need(u, 1, "activation")?;
            LayerKind::Activation(code_act(u[0])?)
        }
        5 => {
            need(u, 4, "pool")?;
            LayerKind::Pool {
                kind: code_pool(u[0])?,
                kernel: u[1] as usize,
                stride: u[2] as usize,
                padding: code_pad(u[3])?,
            }
        }
        6 => {
            need(u, 1, "global_pool")?;
            LayerKind::GlobalPool(code_pool(u[0])?)
        }
        7 => {
            need(u, 1, "binary")?;
            LayerKind::Binary(match u[0] {
                0 => BinOp::Add,
                1 => BinOp::Mul,
                2 => BinOp::Sub,
                other => return Err(FmtError::Wire(format!("bad binop {other}"))),
            })
        }
        8 => LayerKind::Concat,
        9 => LayerKind::Reshape {
            dims: u.iter().map(|&d| d as usize).collect(),
        },
        10 => {
            need(u, 3, "resize")?;
            LayerKind::Resize {
                out_h: u[0] as usize,
                out_w: u[1] as usize,
                mode: match u[2] {
                    0 => ResizeMode::Nearest,
                    1 => ResizeMode::Bilinear,
                    other => return Err(FmtError::Wire(format!("bad resize mode {other}"))),
                },
            }
        }
        11 => {
            need(u, 2, "slice")?;
            LayerKind::Slice {
                begin: u[0] as usize,
                len: u[1] as usize,
            }
        }
        12 => LayerKind::Softmax,
        13 => LayerKind::BatchNorm,
        14 => {
            need(u, 1, "pad")?;
            LayerKind::Pad {
                pad: u[0] as usize,
            }
        }
        15 | 16 => {
            need(u, 1, "quant")?;
            if f.is_empty() {
                return Err(FmtError::Wire("quant layer missing scale".into()));
            }
            let q = QuantParams {
                scale: f[0],
                zero_point: unzigzag(u[0]) as i32,
            };
            if id == 15 {
                LayerKind::Quantize(q)
            } else {
                LayerKind::Dequantize(q)
            }
        }
        17 => {
            need(u, 2, "embedding")?;
            LayerKind::Embedding {
                vocab: u[0] as usize,
                dim: u[1] as usize,
            }
        }
        18 => {
            need(u, 1, "lstm")?;
            LayerKind::Lstm {
                units: u[0] as usize,
            }
        }
        19 => {
            need(u, 1, "gru")?;
            LayerKind::Gru {
                units: u[0] as usize,
            }
        }
        20 => LayerKind::MeanTime,
        21 => {
            need(u, 3, "transpose_conv")?;
            LayerKind::TransposeConv2d {
                out_channels: u[0] as usize,
                kernel: u[1] as usize,
                stride: u[2] as usize,
            }
        }
        22 => LayerKind::L2Norm,
        other => return Err(FmtError::Wire(format!("unknown layer kind id {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip_all_zoo_tasks() {
        for (i, &task) in Task::ALL.iter().enumerate() {
            let m = build_for_task(task, 500 + i as u64, SizeClass::Small, true);
            let bytes = encode_graph(&m.graph);
            let back = decode_graph(&bytes).unwrap_or_else(|e| panic!("{task:?}: {e}"));
            assert_eq!(back, m.graph, "{task:?}");
        }
    }

    #[test]
    fn roundtrip_quantised_model() {
        use gaugenn_dnn::quant::{apply, QuantMode};
        let m = build_for_task(Task::KeywordDetection, 1, SizeClass::Small, true);
        let q = apply(&m.graph, QuantMode::Full);
        let bytes = encode_graph(&q);
        let back = decode_graph(&bytes).unwrap();
        assert_eq!(back, q);
        assert!(back.has_int8_weights());
        assert!(back.has_quant_layers());
    }

    #[test]
    fn corrupted_body_rejected() {
        let m = build_for_task(Task::MovementTracking, 2, SizeClass::Small, true);
        let bytes = encode_graph(&m.graph);
        assert!(decode_graph(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [-3i64, -1, 0, 1, 127, -128, i32::MAX as i64, i32::MIN as i64] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn identical_graphs_identical_bytes() {
        let a = build_for_task(Task::FaceDetection, 3, SizeClass::Small, true);
        let b = build_for_task(Task::FaceDetection, 3, SizeClass::Small, true);
        assert_eq!(encode_graph(&a.graph), encode_graph(&b.graph));
    }
}
