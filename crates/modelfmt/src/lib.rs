//! # gaugenn-modelfmt — mobile DNN model container formats
//!
//! The paper's extraction stage matches candidate files "against a compiled
//! list of 69 known DNN framework formats" and then validates each by
//! "checking the binary signature of the file for the presence of specific
//! identifiers that a framework uses. For example, for TFLite … we check for
//! the existence of e.g. the string 'TFL3'" (§3.1, Appendix A).
//!
//! This crate implements that machinery from scratch:
//!
//! * [`minipb`] — a protobuf-style wire codec (varints, length-delimited
//!   fields); Caffe, TF and ONNX containers build on it.
//! * [`miniflat`] — a FlatBuffer-style layout with a root offset and a
//!   4-byte file identifier at offset 4; TFLite builds on it.
//! * [`graphcodec`] — the canonical graph body shared by all containers
//!   (layers, weights and topology in a stable byte layout, so checksums of
//!   serialised models are meaningful).
//! * [`formats`] — the framework/extension table (Table 5).
//! * [`validate()`] — signature validation: extension pre-filter + binary
//!   probe, exactly the two-stage funnel of §3.1.
//! * per-framework codecs: [`tflite`], [`caffe`], [`ncnn`], [`tf`],
//!   [`snpe`], [`onnx`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caffe;
pub mod formats;
pub mod graphcodec;
pub mod miniflat;
pub mod minipb;
pub mod ncnn;
pub mod onnx;
pub mod snpe;
pub mod tf;
pub mod tflite;
pub mod validate;

pub use formats::Framework;
pub use validate::{validate, Validated};

/// Errors from model encoding/decoding.
#[derive(Debug, Clone, PartialEq)]
pub enum FmtError {
    /// The byte stream fails the framework's structural rules.
    Malformed {
        /// Framework whose codec rejected the stream.
        framework: Framework,
        /// Human-readable reason.
        reason: String,
    },
    /// Low-level wire-format failure (bad varint, truncation, …).
    Wire(String),
    /// The graph embedded in a container is itself invalid.
    Graph(String),
}

impl std::fmt::Display for FmtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FmtError::Malformed { framework, reason } => {
                write!(f, "malformed {} model: {reason}", framework.name())
            }
            FmtError::Wire(r) => write!(f, "wire format error: {r}"),
            FmtError::Graph(r) => write!(f, "embedded graph invalid: {r}"),
        }
    }
}

impl std::error::Error for FmtError {}

impl From<gaugenn_dnn::DnnError> for FmtError {
    fn from(e: gaugenn_dnn::DnnError) -> Self {
        FmtError::Graph(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, FmtError>;

/// A serialised model: one or more files (Caffe and NCNN split graph and
/// weights across two files, §4.5 footnote 6).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelArtifact {
    /// The framework this artifact serialises for.
    pub framework: Framework,
    /// `(file_name, bytes)` pairs. The first file is the primary one.
    pub files: Vec<(String, Vec<u8>)>,
}

impl ModelArtifact {
    /// Total byte size across files (the paper's "model size" storage
    /// metric).
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|(_, b)| b.len()).sum()
    }

    /// The primary file's bytes.
    pub fn primary(&self) -> &[u8] {
        &self.files[0].1
    }
}

/// Serialise a graph into the given framework's container.
pub fn encode(graph: &gaugenn_dnn::Graph, framework: Framework) -> Result<ModelArtifact> {
    match framework {
        Framework::TfLite => tflite::encode(graph),
        Framework::Caffe => caffe::encode(graph),
        Framework::Ncnn => ncnn::encode(graph),
        Framework::TensorFlow => tf::encode(graph),
        Framework::Snpe => snpe::encode(graph),
        Framework::Onnx => onnx::encode(graph),
        other => Err(FmtError::Malformed {
            framework: other,
            reason: "no encoder for this framework (extension-table only)".into(),
        }),
    }
}

/// Decode a framework container back into a graph.
///
/// For split formats, `files` must carry all parts (any order).
pub fn decode(framework: Framework, files: &[(String, Vec<u8>)]) -> Result<gaugenn_dnn::Graph> {
    match framework {
        Framework::TfLite => tflite::decode(primary_bytes(files)?),
        Framework::Caffe => caffe::decode(files),
        Framework::Ncnn => ncnn::decode(files),
        Framework::TensorFlow => tf::decode(primary_bytes(files)?),
        Framework::Snpe => snpe::decode(primary_bytes(files)?),
        Framework::Onnx => onnx::decode(primary_bytes(files)?),
        other => Err(FmtError::Malformed {
            framework: other,
            reason: "no decoder for this framework".into(),
        }),
    }
}

fn primary_bytes(files: &[(String, Vec<u8>)]) -> Result<&[u8]> {
    files
        .first()
        .map(|(_, b)| b.as_slice())
        .ok_or_else(|| FmtError::Wire("no files provided".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn encode_decode_roundtrip_every_codec() {
        let model = build_for_task(Task::KeywordDetection, 42, SizeClass::Small, true);
        for fw in [
            Framework::TfLite,
            Framework::Caffe,
            Framework::Ncnn,
            Framework::TensorFlow,
            Framework::Snpe,
            Framework::Onnx,
        ] {
            let art = encode(&model.graph, fw).unwrap_or_else(|e| panic!("{fw:?}: {e}"));
            let back = decode(fw, &art.files).unwrap_or_else(|e| panic!("{fw:?}: {e}"));
            assert_eq!(back, model.graph, "{fw:?} roundtrip");
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let model = build_for_task(Task::MovementTracking, 9, SizeClass::Small, true);
        let a = encode(&model.graph, Framework::TfLite).unwrap();
        let b = encode(&model.graph, Framework::TfLite).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn extension_only_frameworks_refuse_encode() {
        let model = build_for_task(Task::MovementTracking, 9, SizeClass::Small, true);
        assert!(encode(&model.graph, Framework::PyTorch).is_err());
    }
}
