//! A FlatBuffer-style file layout.
//!
//! Real TFLite models are FlatBuffers: bytes 0..4 hold the root table
//! offset and bytes 4..8 hold the 4-character *file identifier* — `"TFL3"`
//! for TFLite — which is exactly what the paper's validator probes for
//! (§3.1). This module reproduces that envelope: a root offset, the file
//! identifier, and a payload the root offset points at.

use crate::{FmtError, Result};

/// Wrap `payload` in a FlatBuffer-style envelope with the 4-byte `ident`.
///
/// Layout: `[root_offset: u32][ident: 4B][version: u32][payload]`, with the
/// root offset pointing at the version word (offset 8), mirroring how real
/// FlatBuffers put the root table after the identifier.
pub fn wrap(ident: &[u8; 4], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&8u32.to_le_bytes()); // root offset
    out.extend_from_slice(ident);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Check whether `bytes` carry `ident` at offset 4 (the Netron-style probe).
pub fn has_identifier(bytes: &[u8], ident: &[u8; 4]) -> bool {
    bytes.len() >= 8 && &bytes[4..8] == ident
}

/// Unwrap an envelope, validating identifier and root offset.
/// Returns `(version, payload)`.
pub fn unwrap<'a>(bytes: &'a [u8], ident: &[u8; 4]) -> Result<(u32, &'a [u8])> {
    if bytes.len() < 12 {
        return Err(FmtError::Wire("flatbuffer envelope too short".into()));
    }
    if !has_identifier(bytes, ident) {
        return Err(FmtError::Wire(format!(
            "missing file identifier {:?} at offset 4",
            String::from_utf8_lossy(ident)
        )));
    }
    let root = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if root + 4 > bytes.len() {
        return Err(FmtError::Wire("root offset out of range".into()));
    }
    let version = u32::from_le_bytes([
        bytes[root],
        bytes[root + 1],
        bytes[root + 2],
        bytes[root + 3],
    ]);
    Ok((version, &bytes[root + 4..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bytes = wrap(b"TFL3", 3, b"payload");
        assert!(has_identifier(&bytes, b"TFL3"));
        assert!(!has_identifier(&bytes, b"TFL2"));
        let (v, p) = unwrap(&bytes, b"TFL3").unwrap();
        assert_eq!(v, 3);
        assert_eq!(p, b"payload");
    }

    #[test]
    fn rejects_wrong_ident() {
        let bytes = wrap(b"XXXX", 1, b"");
        assert!(unwrap(&bytes, b"TFL3").is_err());
    }

    #[test]
    fn rejects_short_and_bad_root() {
        assert!(unwrap(b"short", b"TFL3").is_err());
        let mut bytes = wrap(b"TFL3", 1, b"data");
        bytes[0] = 0xFF; // root offset way out of range
        assert!(unwrap(&bytes, b"TFL3").is_err());
    }
}
