//! A protobuf-style wire codec, implemented from the wire-format
//! specification: base-128 varints, little-endian fixed32, and
//! length-delimited fields, each tagged `(field_number << 3) | wire_type`.
//!
//! Caffe, TensorFlow and ONNX all distribute models as protobuf messages;
//! the paper's validator has to distinguish them structurally (protobuf has
//! no magic bytes). Building the codec from scratch keeps that validation
//! honest.

use crate::{FmtError, Result};

/// Wire types we support.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Base-128 varint.
    Varint,
    /// Length-delimited bytes (strings, sub-messages, packed arrays).
    Len,
    /// Little-endian fixed 32-bit.
    Fixed32,
}

impl WireType {
    fn code(self) -> u64 {
        match self {
            WireType::Varint => 0,
            WireType::Len => 2,
            WireType::Fixed32 => 5,
        }
    }
    fn from_code(c: u64) -> Result<Self> {
        match c {
            0 => Ok(WireType::Varint),
            2 => Ok(WireType::Len),
            5 => Ok(WireType::Fixed32),
            other => Err(FmtError::Wire(format!("unsupported wire type {other}"))),
        }
    }
}

/// Message writer.
#[derive(Debug, Default)]
pub struct PbWriter {
    buf: Vec<u8>,
}

impl PbWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    fn tag(&mut self, field: u32, wt: WireType) {
        self.varint_raw(((field as u64) << 3) | wt.code());
    }

    fn varint_raw(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Write a varint field.
    pub fn varint(&mut self, field: u32, v: u64) -> &mut Self {
        self.tag(field, WireType::Varint);
        self.varint_raw(v);
        self
    }

    /// Write a fixed32 field (used for f32).
    pub fn fixed32(&mut self, field: u32, v: u32) -> &mut Self {
        self.tag(field, WireType::Fixed32);
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Write an f32 field.
    pub fn float(&mut self, field: u32, v: f32) -> &mut Self {
        self.fixed32(field, v.to_bits())
    }

    /// Write a length-delimited bytes field.
    pub fn bytes(&mut self, field: u32, v: &[u8]) -> &mut Self {
        self.tag(field, WireType::Len);
        self.varint_raw(v.len() as u64);
        self.buf.extend_from_slice(v);
        self
    }

    /// Write a string field.
    pub fn string(&mut self, field: u32, v: &str) -> &mut Self {
        self.bytes(field, v.as_bytes())
    }

    /// Write a nested message field.
    pub fn message(&mut self, field: u32, inner: &PbWriter) -> &mut Self {
        self.bytes(field, &inner.buf)
    }

    /// Write a packed varint array.
    pub fn packed_varints(&mut self, field: u32, vals: &[u64]) -> &mut Self {
        let mut inner = PbWriter::new();
        for &v in vals {
            inner.varint_raw(v);
        }
        self.bytes(field, &inner.buf)
    }

    /// Write a packed f32 array.
    pub fn packed_floats(&mut self, field: u32, vals: &[f32]) -> &mut Self {
        let mut inner = Vec::with_capacity(vals.len() * 4);
        for v in vals {
            inner.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        self.bytes(field, &inner)
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// One decoded field.
#[derive(Debug, Clone, PartialEq)]
pub enum PbValue<'a> {
    /// Varint payload.
    Varint(u64),
    /// Fixed 32-bit payload.
    Fixed32(u32),
    /// Length-delimited payload.
    Bytes(&'a [u8]),
}

impl<'a> PbValue<'a> {
    /// Interpret as u64, if varint.
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            PbValue::Varint(v) => Ok(*v),
            _ => Err(FmtError::Wire("expected varint".into())),
        }
    }
    /// Interpret as f32, if fixed32.
    pub fn as_f32(&self) -> Result<f32> {
        match self {
            PbValue::Fixed32(v) => Ok(f32::from_bits(*v)),
            _ => Err(FmtError::Wire("expected fixed32".into())),
        }
    }
    /// Interpret as bytes, if length-delimited.
    pub fn as_bytes(&self) -> Result<&'a [u8]> {
        match self {
            PbValue::Bytes(b) => Ok(b),
            _ => Err(FmtError::Wire("expected length-delimited".into())),
        }
    }
    /// Interpret as UTF-8 string.
    pub fn as_str(&self) -> Result<&'a str> {
        std::str::from_utf8(self.as_bytes()?)
            .map_err(|_| FmtError::Wire("invalid utf-8 string".into()))
    }
}

/// Streaming message reader.
#[derive(Debug, Clone)]
pub struct PbReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PbReader<'a> {
    /// Read over a message body.
    pub fn new(buf: &'a [u8]) -> Self {
        PbReader { buf, pos: 0 }
    }

    /// True when the whole body has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn varint_raw(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or_else(|| FmtError::Wire("truncated varint".into()))?;
            self.pos += 1;
            if shift >= 64 {
                return Err(FmtError::Wire("varint overflow".into()));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Read the next `(field_number, value)` pair.
    pub fn next_field(&mut self) -> Result<(u32, PbValue<'a>)> {
        let tag = self.varint_raw()?;
        let field = (tag >> 3) as u32;
        if field == 0 {
            return Err(FmtError::Wire("field number 0 is invalid".into()));
        }
        let wt = WireType::from_code(tag & 0x7)?;
        let value = match wt {
            WireType::Varint => PbValue::Varint(self.varint_raw()?),
            WireType::Fixed32 => {
                if self.pos + 4 > self.buf.len() {
                    return Err(FmtError::Wire("truncated fixed32".into()));
                }
                let v = u32::from_le_bytes([
                    self.buf[self.pos],
                    self.buf[self.pos + 1],
                    self.buf[self.pos + 2],
                    self.buf[self.pos + 3],
                ]);
                self.pos += 4;
                PbValue::Fixed32(v)
            }
            WireType::Len => {
                let len = self.varint_raw()? as usize;
                if self.pos + len > self.buf.len() {
                    return Err(FmtError::Wire("truncated length-delimited field".into()));
                }
                let b = &self.buf[self.pos..self.pos + len];
                self.pos += len;
                PbValue::Bytes(b)
            }
        };
        Ok((field, value))
    }
}

/// Decode a packed varint array.
pub fn unpack_varints(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut r = PbReader::new(bytes);
    let mut out = Vec::new();
    while !r.at_end() {
        out.push(r.varint_raw()?);
    }
    Ok(out)
}

/// Decode a packed f32 array.
pub fn unpack_floats(bytes: &[u8]) -> Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(FmtError::Wire("packed float array not multiple of 4".into()));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut w = PbWriter::new();
            w.varint(1, v);
            let bytes = w.finish();
            let mut r = PbReader::new(&bytes);
            let (f, val) = r.next_field().unwrap();
            assert_eq!(f, 1);
            assert_eq!(val.as_u64().unwrap(), v);
            assert!(r.at_end());
        }
    }

    #[test]
    fn mixed_fields_roundtrip() {
        let mut w = PbWriter::new();
        w.varint(1, 7)
            .string(2, "hello")
            .float(3, -2.5)
            .packed_varints(4, &[1, 2, 3])
            .packed_floats(5, &[0.5, 1.5]);
        let bytes = w.finish();
        let mut r = PbReader::new(&bytes);
        let (f1, v1) = r.next_field().unwrap();
        assert_eq!((f1, v1.as_u64().unwrap()), (1, 7));
        let (f2, v2) = r.next_field().unwrap();
        assert_eq!((f2, v2.as_str().unwrap()), (2, "hello"));
        let (f3, v3) = r.next_field().unwrap();
        assert_eq!((f3, v3.as_f32().unwrap()), (3, -2.5));
        let (_, v4) = r.next_field().unwrap();
        assert_eq!(unpack_varints(v4.as_bytes().unwrap()).unwrap(), vec![1, 2, 3]);
        let (_, v5) = r.next_field().unwrap();
        assert_eq!(unpack_floats(v5.as_bytes().unwrap()).unwrap(), vec![0.5, 1.5]);
        assert!(r.at_end());
    }

    #[test]
    fn nested_messages() {
        let mut inner = PbWriter::new();
        inner.varint(1, 42);
        let mut outer = PbWriter::new();
        outer.message(9, &inner);
        let bytes = outer.finish();
        let mut r = PbReader::new(&bytes);
        let (f, v) = r.next_field().unwrap();
        assert_eq!(f, 9);
        let mut ir = PbReader::new(v.as_bytes().unwrap());
        assert_eq!(ir.next_field().unwrap().1.as_u64().unwrap(), 42);
    }

    #[test]
    fn rejects_truncation_and_garbage() {
        let mut w = PbWriter::new();
        w.string(1, "abcdefgh");
        let bytes = w.finish();
        let mut r = PbReader::new(&bytes[..bytes.len() - 2]);
        assert!(r.next_field().is_err());
        // wire type 3 (group start) is unsupported
        let mut r2 = PbReader::new(&[0x0B]);
        assert!(r2.next_field().is_err());
        // field number 0
        let mut r3 = PbReader::new(&[0x00, 0x01]);
        assert!(r3.next_field().is_err());
    }

    #[test]
    fn rejects_bad_packed_floats() {
        assert!(unpack_floats(&[1, 2, 3]).is_err());
    }
}
