//! NCNN container: Tencent's split format with a text `.param` graph file —
//! whose first line is the magic number `7767517`, exactly as in real ncnn —
//! and a binary `.bin` weights file.

use crate::graphcodec::{decode_graph, encode_graph};
use crate::{FmtError, Framework, ModelArtifact, Result};
use gaugenn_dnn::Graph;

/// The real ncnn param-file magic.
pub const PARAM_MAGIC: &str = "7767517";
/// Our bin-part magic (real ncnn bins are magic-free; a marker keeps the
/// `.bin` extension — shared with TFLite and PyTorch in Table 5 —
/// disambiguable by signature, which is the paper's whole validation story).
pub const BIN_MAGIC: &[u8; 4] = b"NCBW";

fn err(reason: impl Into<String>) -> FmtError {
    FmtError::Malformed {
        framework: Framework::Ncnn,
        reason: reason.into(),
    }
}

/// Encode a graph as `<name>.param` + `<name>.bin`.
pub fn encode(graph: &Graph) -> Result<ModelArtifact> {
    let mut param = String::new();
    param.push_str(PARAM_MAGIC);
    param.push('\n');
    // "<layer_count> <blob_count>" line, then one line per layer.
    param.push_str(&format!("{} {}\n", graph.nodes.len(), graph.nodes.len()));
    for node in &graph.nodes {
        param.push_str(&format!(
            "{:24}{:24}{} {}\n",
            node.kind.family(),
            node.name.replace(' ', "_"),
            node.inputs.len(),
            1
        ));
    }
    let mut bin = Vec::new();
    bin.extend_from_slice(BIN_MAGIC);
    bin.extend_from_slice(&encode_graph(graph));
    Ok(ModelArtifact {
        framework: Framework::Ncnn,
        files: vec![
            (format!("{}.param", graph.name), param.into_bytes()),
            (format!("{}.bin", graph.name), bin),
        ],
    })
}

/// Decode from the file set; the `.bin` part is authoritative, the
/// `.param` part is validated for magic and layer-count agreement.
pub fn decode(files: &[(String, Vec<u8>)]) -> Result<Graph> {
    let bin = files
        .iter()
        .find(|(n, _)| n.ends_with(".bin"))
        .ok_or_else(|| err("missing .bin part"))?;
    if bin.1.len() < 4 || &bin.1[..4] != BIN_MAGIC {
        return Err(err("bad bin magic"));
    }
    let graph = decode_graph(&bin.1[4..])?;
    if let Some((_, param)) = files.iter().find(|(n, _)| n.ends_with(".param")) {
        let text = String::from_utf8_lossy(param);
        let mut lines = text.lines();
        if lines.next() != Some(PARAM_MAGIC) {
            return Err(err("bad param magic"));
        }
        let counts = lines.next().ok_or_else(|| err("missing counts line"))?;
        let declared: usize = counts
            .split_whitespace()
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err("bad counts line"))?;
        if declared != graph.nodes.len() {
            return Err(err(format!(
                "param declares {declared} layers, bin has {}",
                graph.nodes.len()
            )));
        }
    }
    Ok(graph)
}

/// Probe for a `.param` payload.
pub fn probe_param(bytes: &[u8]) -> bool {
    std::str::from_utf8(bytes)
        .map(|t| t.starts_with(PARAM_MAGIC))
        .unwrap_or(false)
}

/// Probe for a `.bin` payload.
pub fn probe_bin(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && &bytes[..4] == BIN_MAGIC
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn roundtrip() {
        let m = build_for_task(Task::ObjectDetection, 20, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        assert!(probe_param(&art.files[0].1));
        assert!(probe_bin(&art.files[1].1));
        assert_eq!(decode(&art.files).unwrap(), m.graph);
    }

    #[test]
    fn param_magic_is_real_ncnn_value() {
        let m = build_for_task(Task::MovementTracking, 1, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        let text = String::from_utf8(art.files[0].1.clone()).unwrap();
        assert!(text.starts_with("7767517\n"));
    }

    #[test]
    fn mismatched_pair_rejected() {
        let a = encode(&build_for_task(Task::MovementTracking, 1, SizeClass::Small, true).graph)
            .unwrap();
        let b = encode(&build_for_task(Task::CrashDetection, 2, SizeClass::Small, true).graph)
            .unwrap();
        let mixed = vec![a.files[0].clone(), b.files[1].clone()];
        assert!(decode(&mixed).is_err());
    }

    #[test]
    fn bin_without_param_decodes() {
        let m = build_for_task(Task::CrashDetection, 3, SizeClass::Small, true);
        let art = encode(&m.graph).unwrap();
        let only_bin = vec![art.files[1].clone()];
        assert_eq!(decode(&only_bin).unwrap(), m.graph);
    }

    #[test]
    fn probes_reject_foreign_bytes() {
        assert!(!probe_param(b"name: \"x\"\nlayer {"));
        assert!(!probe_bin(b"TFL3"));
    }
}
