//! Deterministic response rendering and the row parsers.
//!
//! The store server renders query results with [`render_models`] /
//! [`render_apps`] / [`CorpusIndex::stats_text`]; the query clients
//! parse them back with [`parse_models`] / [`parse_apps`] /
//! [`parse_stats`]. Keeping both directions in this one module is what
//! makes the contract testable: `parse(render(x))` round-trips in unit
//! tests here, so a server/client drift cannot ship.
//!
//! Formats are line-oriented and space-separated with [`crate::esc`]
//! escaping, like the persist payload:
//!
//! ```text
//! models <n>
//! <checksum> <esc-name> <framework> <task|-> <quant> <size> <flops> <params> <apps>
//! ...
//! ```
//!
//! ```text
//! apps <n>
//! <esc-package> <esc-category> <models> <ml> <cloud>
//! ...
//! ```
//!
//! Rendering consumes already-ranked documents verbatim — ranking is the
//! index's job ([`CorpusIndex::query_models`]) — so two servers holding
//! the same index emit byte-identical bodies for the same query, at any
//! worker count.

use crate::doc::{AppDoc, ModelDoc};
use crate::{esc, unesc};

#[cfg(doc)]
use crate::CorpusIndex;

/// One parsed model result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRow {
    /// Model checksum (the corpus key).
    pub checksum: String,
    /// Model name.
    pub name: String,
    /// Framework wire name (e.g. `tflite`).
    pub framework: String,
    /// Task name, when classified.
    pub task: Option<String>,
    /// Quantised (int8 weights or activations)?
    pub quantised: bool,
    /// Serialized size in bytes.
    pub size_bytes: u64,
    /// Total FLOPs.
    pub flops: u64,
    /// Total parameters.
    pub params: u64,
    /// Apps carrying the model (scoped to the query's snapshot).
    pub apps: u64,
}

/// One parsed app result row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppRow {
    /// Package name.
    pub package: String,
    /// Store category (decoded).
    pub category: String,
    /// Model instances in the app (snapshot-scoped).
    pub models: u64,
    /// ML-powered?
    pub ml: bool,
    /// Invokes cloud ML APIs?
    pub cloud: bool,
}

/// Render ranked model documents as a response body. `snapshot` scopes
/// the per-row app count the same way the query was scoped.
pub fn render_models(docs: &[&ModelDoc], snapshot: Option<&str>) -> String {
    let mut out = format!("models {}\n", docs.len());
    for m in docs {
        out.push_str(&format!(
            "{} {} {} {} {} {} {} {} {}\n",
            m.checksum,
            esc(&m.name),
            m.framework.name(),
            m.task.map_or("-".to_string(), |t| esc(t.name())),
            m.quantised,
            m.size_bytes,
            m.flops,
            m.params,
            m.app_count(snapshot),
        ));
    }
    out
}

/// Parse a [`render_models`] body. `None` on any malformation (wrong
/// header, field count, bad number) — the client surfaces that as a
/// protocol error, it never guesses.
pub fn parse_models(text: &str) -> Option<Vec<ModelRow>> {
    let mut lines = text.lines();
    let n: usize = lines.next()?.strip_prefix("models ")?.parse().ok()?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines.next()?;
        let f: Vec<&str> = line.split(' ').collect();
        if f.len() != 9 {
            return None;
        }
        rows.push(ModelRow {
            checksum: f[0].to_string(),
            name: unesc(f[1]),
            framework: f[2].to_string(),
            task: match f[3] {
                "-" => None,
                t => Some(unesc(t)),
            },
            quantised: parse_bool(f[4])?,
            size_bytes: f[5].parse().ok()?,
            flops: f[6].parse().ok()?,
            params: f[7].parse().ok()?,
            apps: f[8].parse().ok()?,
        });
    }
    if lines.next().is_some() {
        return None; // body longer than its own header claims
    }
    Some(rows)
}

/// Render ranked app documents as a response body, snapshot-scoped like
/// [`render_models`].
pub fn render_apps(docs: &[&AppDoc], snapshot: Option<&str>) -> String {
    let mut out = format!("apps {}\n", docs.len());
    for a in docs {
        let s = a.snap(snapshot);
        out.push_str(&format!(
            "{} {} {} {} {}\n",
            esc(&a.package),
            esc(&a.category),
            s.models,
            s.ml,
            s.cloud,
        ));
    }
    out
}

/// Parse a [`render_apps`] body; `None` on any malformation.
pub fn parse_apps(text: &str) -> Option<Vec<AppRow>> {
    let mut lines = text.lines();
    let n: usize = lines.next()?.strip_prefix("apps ")?.parse().ok()?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let line = lines.next()?;
        let f: Vec<&str> = line.split(' ').collect();
        if f.len() != 5 {
            return None;
        }
        rows.push(AppRow {
            package: unesc(f[0]),
            category: unesc(f[1]),
            models: f[2].parse().ok()?,
            ml: parse_bool(f[3])?,
            cloud: parse_bool(f[4])?,
        });
    }
    if lines.next().is_some() {
        return None;
    }
    Some(rows)
}

/// Parse a [`CorpusIndex::stats_text`] body into ordered `(key, value)`
/// pairs; `None` when any line lacks the `key = value` shape.
pub fn parse_stats(text: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for line in text.lines() {
        let (k, v) = line.split_once(" = ")?;
        out.push((k.to_string(), v.to_string()));
    }
    Some(out)
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{AppQuery, ModelQuery};
    use crate::tests::tiny_index;

    #[test]
    fn model_rows_roundtrip_with_escaped_fields() {
        let idx = tiny_index();
        let docs = idx.query_models(&ModelQuery::default());
        let body = render_models(&docs, Some("Apr 2021"));
        let rows = parse_models(&body).expect("clean body parses");
        assert_eq!(rows.len(), docs.len());
        for (row, doc) in rows.iter().zip(&docs) {
            assert_eq!(row.checksum, doc.checksum);
            assert_eq!(row.name, doc.name);
            assert_eq!(row.framework, doc.framework.name());
            assert_eq!(row.task.as_deref(), doc.task.map(|t| t.name()));
            assert_eq!(row.flops, doc.flops);
            assert_eq!(row.apps, doc.app_count(Some("Apr 2021")));
        }
    }

    #[test]
    fn app_rows_roundtrip_with_spaces_in_category() {
        let idx = tiny_index();
        let docs = idx.query_apps(&AppQuery::default());
        let body = render_apps(&docs, None);
        let rows = parse_apps(&body).expect("clean body parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].package, "com.a");
        assert_eq!(rows[0].category, "health & fitness");
        assert!(rows[0].ml && !rows[0].cloud);
        assert!(!rows[1].ml && rows[1].cloud);
    }

    #[test]
    fn empty_results_render_and_parse() {
        assert_eq!(parse_models("models 0\n").unwrap(), vec![]);
        assert_eq!(parse_apps("apps 0\n").unwrap(), vec![]);
    }

    #[test]
    fn malformed_bodies_are_rejected() {
        for bad in [
            "",
            "model 1\n",                      // wrong header keyword
            "models x\n",                     // bad count
            "models 2\naa b tflite - true 1 2 3 4\n", // short: count says 2
            "models 0\ntrailing\n",           // longer than declared
            "models 1\naa b tflite - maybe 1 2 3 4\n", // bad bool
            "models 1\naa b tflite - true 1 2 3\n",    // 8 fields
        ] {
            assert!(parse_models(bad).is_none(), "{bad:?}");
        }
        assert!(parse_apps("apps 1\ncom.a tools 1 true\n").is_none());
    }

    #[test]
    fn stats_parse_splits_on_first_delimiter() {
        let idx = tiny_index();
        let stats = parse_stats(&idx.stats_text()).expect("stats parse");
        assert!(stats.iter().any(|(k, v)| k == "models" && v == "4"));
        assert!(stats
            .iter()
            .any(|(k, _)| k == "models[framework:tflite]"));
        assert!(parse_stats("no delimiter here").is_none());
    }
}
