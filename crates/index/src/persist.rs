//! The crc32-guarded on-disk index format.
//!
//! ```text
//! GNIX v1 <crc32-hex8> <payload-len>\n
//! <payload>
//! ```
//!
//! The payload is line-oriented, space-separated, with [`crate::esc`]
//! escaping on free-text fields:
//!
//! ```text
//! generation <n>
//! snapshot <esc-label>
//! model <checksum> <esc-name> <framework> <task|-> <quant> <size> <flops> <params> <k> (<esc-label> <apps>)*
//! app <esc-package> <esc-category> <k> (<esc-label> <models> <ml> <cloud>)*
//! ```
//!
//! Only the documents persist; posting lists and column arrays are
//! derived and rebuilt on load, which keeps the format small and makes
//! the in-memory structures canonical regardless of ingest history.
//!
//! Corruption discipline (the `CacheStore` rule, DESIGN.md §11/§13):
//! *any* defect — wrong magic, crc mismatch, short payload, malformed
//! line, unknown framework — makes [`load`] return `None`. The caller
//! starts from an empty index and repopulates from the pipeline's
//! analysis output (itself warm from the persistent model cache), so a
//! flipped bit or a torn tail costs a rebuild, never an error.

use crate::doc::{framework_by_name, task_by_name, AppDoc, AppSnap, ModelDoc};
use crate::{esc, unesc, CorpusIndex};
use gaugenn_apk::crc32::crc32;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

const MAGIC: &str = "GNIX v1";

/// Serialize the index payload (documents only).
fn payload(index: &CorpusIndex) -> String {
    let mut out = String::new();
    out.push_str(&format!("generation {}\n", index.generation()));
    for label in index.snapshot_labels() {
        out.push_str(&format!("snapshot {}\n", esc(label)));
    }
    for m in index.models() {
        out.push_str(&format!(
            "model {} {} {} {} {} {} {} {} {}",
            m.checksum,
            esc(&m.name),
            m.framework.name(),
            m.task.map_or("-".to_string(), |t| esc(t.name())),
            m.quantised,
            m.size_bytes,
            m.flops,
            m.params,
            m.apps_by_snapshot.len(),
        ));
        for (label, apps) in &m.apps_by_snapshot {
            out.push_str(&format!(" {} {apps}", esc(label)));
        }
        out.push('\n');
    }
    for a in index.apps() {
        out.push_str(&format!(
            "app {} {} {}",
            esc(&a.package),
            esc(&a.category),
            a.by_snapshot.len(),
        ));
        for (label, s) in &a.by_snapshot {
            out.push_str(&format!(" {} {} {} {}", esc(label), s.models, s.ml, s.cloud));
        }
        out.push('\n');
    }
    out
}

/// Write `index` to `path` via write-temp + atomic rename (the
/// `write_atomic` discipline: a reader never observes a half-written
/// file; a crash leaves either the old index or the new one).
pub fn save(index: &CorpusIndex, path: &Path) -> bool {
    let body = payload(index);
    let framed = format!("{MAGIC} {:08x} {}\n{body}", crc32(body.as_bytes()), body.len());
    let tmp = path.with_extension("gnix.tmp");
    if fs::write(&tmp, framed.as_bytes()).is_err() || fs::rename(&tmp, path).is_err() {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    true
}

/// Load an index from `path`; `None` on any corruption or absence.
pub fn load(path: &Path) -> Option<CorpusIndex> {
    let raw = fs::read_to_string(path).ok()?;
    let (header, body) = raw.split_once('\n')?;
    // The header itself is outside the crc's coverage, so parse it
    // strictly: exact magic+space, exactly 8 crc hex digits, digits-only
    // length. Any cosmetic damage is damage.
    let rest = header.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let (crc_hex, len_s) = rest.split_once(' ')?;
    if crc_hex.len() != 8 || len_s.is_empty() || !len_s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let want_crc = u32::from_str_radix(crc_hex, 16).ok()?;
    let want_len: usize = len_s.parse().ok()?;
    // A torn tail shortens the body; extra bytes mean a torn header of a
    // following write. Either way: miss.
    if body.len() != want_len || crc32(body.as_bytes()) != want_crc {
        return None;
    }
    parse_payload(body)
}

fn parse_payload(body: &str) -> Option<CorpusIndex> {
    let mut index = CorpusIndex::new();
    for line in body.lines() {
        let mut f = line.split(' ');
        match f.next()? {
            "generation" => index.generation = f.next()?.parse().ok()?,
            "snapshot" => {
                index.snapshots.insert(unesc(f.next()?));
            }
            "model" => {
                let checksum = f.next()?.to_string();
                let name = unesc(f.next()?);
                let framework = framework_by_name(f.next()?)?;
                let task = match f.next()? {
                    "-" => None,
                    t => Some(task_by_name(&unesc(t))?),
                };
                let quantised = parse_bool(f.next()?)?;
                let size_bytes = f.next()?.parse().ok()?;
                let flops = f.next()?.parse().ok()?;
                let params = f.next()?.parse().ok()?;
                let k: usize = f.next()?.parse().ok()?;
                let mut apps_by_snapshot = BTreeMap::new();
                for _ in 0..k {
                    let label = unesc(f.next()?);
                    let apps: u64 = f.next()?.parse().ok()?;
                    apps_by_snapshot.insert(label, apps);
                }
                if f.next().is_some() {
                    return None; // trailing junk: the line is not ours
                }
                // Documents persist sorted; enforce on the way in so a
                // hand-edited file cannot break the binary searches.
                let doc = ModelDoc {
                    checksum,
                    name,
                    framework,
                    task,
                    quantised,
                    size_bytes,
                    flops,
                    params,
                    apps_by_snapshot,
                };
                match index
                    .models
                    .binary_search_by(|m| m.checksum.cmp(&doc.checksum))
                {
                    Ok(_) => return None, // duplicate checksum: corrupt
                    Err(i) => index.models.insert(i, doc),
                }
            }
            "app" => {
                let package = unesc(f.next()?);
                let category = unesc(f.next()?);
                let k: usize = f.next()?.parse().ok()?;
                let mut by_snapshot = BTreeMap::new();
                for _ in 0..k {
                    let label = unesc(f.next()?);
                    let models: u64 = f.next()?.parse().ok()?;
                    let ml = parse_bool(f.next()?)?;
                    let cloud = parse_bool(f.next()?)?;
                    by_snapshot.insert(label, AppSnap { models, ml, cloud });
                }
                if f.next().is_some() {
                    return None;
                }
                let doc = AppDoc {
                    package,
                    category,
                    by_snapshot,
                };
                match index
                    .apps
                    .binary_search_by(|a| a.package.cmp(&doc.package))
                {
                    Ok(_) => return None,
                    Err(i) => index.apps.insert(i, doc),
                }
            }
            _ => return None, // unknown record: corrupt
        }
    }
    index.reindex();
    Some(index)
}

fn parse_bool(s: &str) -> Option<bool> {
    match s {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::tiny_index;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gaugenn-index-{tag}-{}.gnix", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip_is_lossless() {
        let idx = tiny_index();
        let path = tmp("roundtrip");
        assert!(idx.save(&path));
        let loaded = CorpusIndex::load(&path).expect("clean file loads");
        assert_eq!(loaded.models(), idx.models());
        assert_eq!(loaded.apps(), idx.apps());
        assert_eq!(loaded.generation(), idx.generation());
        assert_eq!(loaded.snapshot_labels(), idx.snapshot_labels());
        // Derived structures rebuilt identically: same query answers.
        assert_eq!(loaded.stats_text(), idx.stats_text());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_miss() {
        assert!(CorpusIndex::load(Path::new("/nonexistent/corpus.gnix")).is_none());
    }

    #[test]
    fn every_single_bit_flip_is_a_miss_or_equal() {
        // The cachestore fixture pattern: flip each byte of the file in
        // turn; the load must come back None (detected) — never a
        // different index, never a panic.
        let idx = tiny_index();
        let path = tmp("bitflip");
        assert!(idx.save(&path));
        let clean = fs::read(&path).unwrap();
        let want = idx.stats_text();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            if let Some(loaded) = CorpusIndex::load(&path) {
                // A flip inside an escaped byte of a free-text field can
                // still parse; it must then fail the crc — so reaching
                // here is impossible unless the flip landed somewhere
                // truly inert, which the crc rules out entirely.
                panic!(
                    "byte {i} flip silently accepted (stats then {:?} vs {want:?})",
                    loaded.stats_text()
                );
            }
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_a_miss() {
        let idx = tiny_index();
        let path = tmp("torn");
        assert!(idx.save(&path));
        let clean = fs::read(&path).unwrap();
        for keep in [clean.len() - 1, clean.len() / 2, 10, 1, 0] {
            fs::write(&path, &clean[..keep]).unwrap();
            assert!(
                CorpusIndex::load(&path).is_none(),
                "torn at {keep} must be a miss"
            );
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_and_stale_headers_are_misses() {
        let path = tmp("foreign");
        for junk in ["", "GNCE v1 deadbeef 0\n", "GNIX v2 00000000 0\n", "garbage"] {
            fs::write(&path, junk).unwrap();
            assert!(CorpusIndex::load(&path).is_none(), "{junk:?}");
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn save_is_atomic_no_tmp_left_behind() {
        let idx = tiny_index();
        let path = tmp("atomic");
        assert!(idx.save(&path));
        assert!(!path.with_extension("gnix.tmp").exists());
        let _ = fs::remove_file(&path);
    }
}
