//! # gaugenn-index — the queryable corpus index
//!
//! The paper's contribution is *queries over a characterised corpus*:
//! models by framework, task, FLOPs/parameter range, quantisation state
//! and snapshot (§4–§6). The pipeline computes all of that and used to
//! flatten it into one static report; this crate turns it into a
//! persistent, incrementally-updated index the store server can answer
//! queries from.
//!
//! * [`doc`] — the indexed documents: one [`ModelDoc`] per unique model
//!   checksum, one [`AppDoc`] per package, each carrying per-snapshot
//!   facts so both study snapshots live in a single index.
//! * [`query`] — the typed query surface ([`ModelQuery`], [`AppQuery`])
//!   with the canonical key/value pair grammar shared by the wire route
//!   and the builder-style clients.
//! * [`persist`] — the crc32-guarded on-disk format (`GNIX v1`),
//!   following the `CacheStore` discipline: any corruption — bit flip,
//!   torn tail, stale header — degrades to a miss (an empty index the
//!   pipeline rebuilds), never an error.
//! * [`wire`] — deterministic response rendering and the row parsers the
//!   query clients use, so server and client share one text format.
//!
//! The in-memory [`CorpusIndex`] keeps posting lists (framework / task /
//! modality / quantisation / snapshot — the container *format* is the
//! framework in this corpus) plus sorted column arrays for FLOPs /
//! params / size range scans. Both are derived structures: they are
//! rebuilt from the documents on every load and ingest, so the persisted
//! payload stays small and canonical.
//!
//! ## Determinism contract
//!
//! Query results are ranked by a total order — models by FLOPs
//! descending then checksum ascending, apps by package ascending — and
//! rendered to text deterministically, so an identical query stream
//! yields byte-identical responses at any server or client worker count
//! (`querybench` and `verify.sh` pin this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod doc;
pub mod persist;
pub mod query;
pub mod wire;

pub use doc::{AppDoc, AppSnap, ModelDoc};
pub use query::{AppQuery, ModelQuery};
pub use wire::{AppRow, ModelRow};

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Percent-escape the metacharacters of the index's text formats: `%`,
/// space, tab, CR and LF. Field values (model names, snapshot labels,
/// category names) pass through otherwise untouched, so escaped fields
/// can be embedded in space-separated lines.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'%' | b' ' | b'\t' | b'\n' | b'\r' => {
                out.push('%');
                out.push_str(&format!("{b:02X}"));
            }
            _ => out.push(b as char),
        }
    }
    out
}

/// Reverse [`esc`]. Invalid escapes pass through verbatim (byte-level,
/// mirroring the wire protocol's `decode_component`).
pub fn unesc(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            let (a, b) = (bytes[i + 1], bytes[i + 2]);
            if a.is_ascii_hexdigit() && b.is_ascii_hexdigit() {
                let hex = [a, b];
                if let Ok(v) = u8::from_str_radix(std::str::from_utf8(&hex).unwrap_or("zz"), 16) {
                    out.push(v);
                    i += 3;
                    continue;
                }
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The queryable corpus index: documents plus the derived posting lists
/// and sorted column arrays. Construct empty ([`CorpusIndex::new`]) or
/// from disk ([`CorpusIndex::load`]); populate with
/// [`CorpusIndex::ingest_snapshot`].
#[derive(Debug, Clone, Default)]
pub struct CorpusIndex {
    /// Model documents, sorted by checksum (the ranking tie-break).
    models: Vec<ModelDoc>,
    /// App documents, sorted by package (the app ranking order).
    apps: Vec<AppDoc>,
    /// Snapshot labels ingested so far.
    snapshots: BTreeSet<String>,
    /// Bumped on every ingest; persists, so a reload continues the count.
    generation: u64,
    /// `dimension:value` → sorted model ids. Derived, not persisted.
    model_postings: BTreeMap<String, Vec<u32>>,
    /// `dimension:value` → sorted app ids. Derived, not persisted.
    app_postings: BTreeMap<String, Vec<u32>>,
    /// `(flops, id)` sorted ascending for range scans. Derived.
    flops_col: Vec<(u64, u32)>,
    /// `(params, id)` sorted ascending. Derived.
    params_col: Vec<(u64, u32)>,
    /// `(size_bytes, id)` sorted ascending. Derived.
    size_col: Vec<(u64, u32)>,
}

impl CorpusIndex {
    /// An empty index.
    pub fn new() -> CorpusIndex {
        CorpusIndex::default()
    }

    /// Load from `path`. Returns `None` when the file is missing **or**
    /// corrupt in any way (bad magic, bad crc, torn tail, malformed
    /// line): corruption is a miss, never an error — the caller starts
    /// empty and repopulates from the pipeline's analysis output.
    pub fn load(path: &Path) -> Option<CorpusIndex> {
        persist::load(path)
    }

    /// Persist to `path` (write-temp + atomic rename). Returns `false`
    /// on IO failure — persisting is an optimisation, never load-bearing.
    pub fn save(&self, path: &Path) -> bool {
        persist::save(self, path)
    }

    /// Number of unique models indexed.
    pub fn model_count(&self) -> usize {
        self.models.len()
    }

    /// Number of apps indexed.
    pub fn app_count(&self) -> usize {
        self.apps.len()
    }

    /// Snapshot labels ingested, in sorted order.
    pub fn snapshot_labels(&self) -> Vec<&str> {
        self.snapshots.iter().map(String::as_str).collect()
    }

    /// Ingest generation (bumped per [`CorpusIndex::ingest_snapshot`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True when nothing has been ingested.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty() && self.apps.is_empty()
    }

    /// All model documents, checksum order.
    pub fn models(&self) -> &[ModelDoc] {
        &self.models
    }

    /// All app documents, package order.
    pub fn apps(&self) -> &[AppDoc] {
        &self.apps
    }

    /// Fold one snapshot's corpus into the index. Re-ingesting a label
    /// replaces that snapshot's previous contribution (idempotent), so a
    /// resumed or repeated pipeline run cannot double-count. Incoming
    /// docs carry their per-snapshot facts under `label`; checksums /
    /// packages already present keep their checksum-determined fields
    /// and gain the new snapshot entry.
    pub fn ingest_snapshot(&mut self, label: &str, models: Vec<ModelDoc>, apps: Vec<AppDoc>) {
        for m in &mut self.models {
            m.apps_by_snapshot.remove(label);
        }
        self.models.retain(|m| !m.apps_by_snapshot.is_empty());
        for a in &mut self.apps {
            a.by_snapshot.remove(label);
        }
        self.apps.retain(|a| !a.by_snapshot.is_empty());

        for mut incoming in models {
            let snap = incoming.apps_by_snapshot.remove(label).unwrap_or(0);
            match self
                .models
                .binary_search_by(|m| m.checksum.cmp(&incoming.checksum))
            {
                Ok(i) => {
                    self.models[i].apps_by_snapshot.insert(label.to_string(), snap);
                }
                Err(i) => {
                    incoming.apps_by_snapshot.clear();
                    incoming
                        .apps_by_snapshot
                        .insert(label.to_string(), snap);
                    self.models.insert(i, incoming);
                }
            }
        }
        for mut incoming in apps {
            let snap = incoming.by_snapshot.remove(label).unwrap_or_default();
            match self
                .apps
                .binary_search_by(|a| a.package.cmp(&incoming.package))
            {
                Ok(i) => {
                    self.apps[i].by_snapshot.insert(label.to_string(), snap);
                }
                Err(i) => {
                    incoming.by_snapshot.clear();
                    incoming.by_snapshot.insert(label.to_string(), snap);
                    self.apps.insert(i, incoming);
                }
            }
        }
        self.snapshots.insert(label.to_string());
        self.generation += 1;
        self.reindex();
    }

    /// Rebuild the derived posting lists and column arrays from the
    /// documents. Called after every ingest and load; documents are the
    /// only persisted truth, so the derived structures are canonical by
    /// construction.
    pub(crate) fn reindex(&mut self) {
        self.model_postings.clear();
        self.app_postings.clear();
        self.flops_col.clear();
        self.params_col.clear();
        self.size_col.clear();
        for (i, m) in self.models.iter().enumerate() {
            let id = i as u32;
            let mut post = |key: String| {
                self.model_postings.entry(key).or_default().push(id);
            };
            post(format!("framework:{}", m.framework.name()));
            if let Some(t) = m.task {
                post(format!("task:{}", t.name()));
                post(format!("modality:{}", t.modality().name()));
            }
            post(format!("quant:{}", m.quantised));
            for label in m.apps_by_snapshot.keys() {
                post(format!("snapshot:{label}"));
            }
            self.flops_col.push((m.flops, id));
            self.params_col.push((m.params, id));
            self.size_col.push((m.size_bytes, id));
        }
        for (i, a) in self.apps.iter().enumerate() {
            let id = i as u32;
            let mut post = |key: String| {
                self.app_postings.entry(key).or_default().push(id);
            };
            post(format!("category:{}", a.category));
            for (label, snap) in &a.by_snapshot {
                post(format!("snapshot:{label}"));
                if snap.ml {
                    post(format!("ml:snapshot:{label}"));
                }
            }
            if a.by_snapshot.values().any(|s| s.ml) {
                post("ml:true".into());
            }
            if a.by_snapshot.values().any(|s| s.cloud) {
                post("cloud:true".into());
            } else {
                post("cloud:false".into());
            }
        }
        // Ids were pushed in ascending order, so postings are sorted;
        // the columns need their value sort.
        self.flops_col.sort_unstable();
        self.params_col.sort_unstable();
        self.size_col.sort_unstable();
    }

    /// Union of posting lists `prefix:value` over `values` (a
    /// multi-valued filter: `framework=tflite&framework=caffe` means
    /// either). Unknown values contribute nothing.
    fn union(&self, postings: &BTreeMap<String, Vec<u32>>, prefix: &str, values: &[String]) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for v in values {
            if let Some(ids) = postings.get(&format!("{prefix}{v}")) {
                out.extend_from_slice(ids);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Run a typed model query: intersect the active posting-list
    /// dimensions and column range scans, then rank by FLOPs descending
    /// with checksum ascending as the tie-break (a total order, so the
    /// response is deterministic), then apply the limit.
    pub fn query_models(&self, q: &ModelQuery) -> Vec<&ModelDoc> {
        let mut cand: Option<Vec<u32>> = None;
        if !q.frameworks.is_empty() {
            intersect_into(&mut cand, self.union(&self.model_postings, "framework:", &q.frameworks));
        }
        if !q.tasks.is_empty() {
            intersect_into(&mut cand, self.union(&self.model_postings, "task:", &q.tasks));
        }
        if !q.modalities.is_empty() {
            intersect_into(&mut cand, self.union(&self.model_postings, "modality:", &q.modalities));
        }
        if let Some(quant) = q.quantised {
            let key = format!("quant:{quant}");
            intersect_into(
                &mut cand,
                self.model_postings.get(&key).cloned().unwrap_or_default(),
            );
        }
        if let Some(label) = &q.snapshot {
            let key = format!("snapshot:{label}");
            intersect_into(
                &mut cand,
                self.model_postings.get(&key).cloned().unwrap_or_default(),
            );
        }
        if q.min_flops.is_some() || q.max_flops.is_some() {
            intersect_into(&mut cand, range_ids(&self.flops_col, q.min_flops, q.max_flops));
        }
        if q.min_params.is_some() || q.max_params.is_some() {
            intersect_into(&mut cand, range_ids(&self.params_col, q.min_params, q.max_params));
        }
        if q.min_size.is_some() || q.max_size.is_some() {
            intersect_into(&mut cand, range_ids(&self.size_col, q.min_size, q.max_size));
        }
        let mut ids: Vec<u32> =
            cand.unwrap_or_else(|| (0..self.models.len() as u32).collect());
        // FLOPs descending; equal FLOPs fall back to id ascending, which
        // is checksum ascending because `models` is checksum-sorted.
        ids.sort_by_key(|&id| (std::cmp::Reverse(self.models[id as usize].flops), id));
        if let Some(limit) = q.limit {
            ids.truncate(limit as usize);
        }
        ids.iter().map(|&id| &self.models[id as usize]).collect()
    }

    /// Run a typed app query: category / snapshot / ML / cloud filters,
    /// ranked by package ascending, then the limit.
    pub fn query_apps(&self, q: &AppQuery) -> Vec<&AppDoc> {
        let mut cand: Option<Vec<u32>> = None;
        if !q.categories.is_empty() {
            intersect_into(&mut cand, self.union(&self.app_postings, "category:", &q.categories));
        }
        if let Some(label) = &q.snapshot {
            let key = format!("snapshot:{label}");
            intersect_into(
                &mut cand,
                self.app_postings.get(&key).cloned().unwrap_or_default(),
            );
        }
        if q.ml_only {
            // Scoped to the snapshot when one is selected: an app can
            // gain (or lose) its models between snapshots.
            let key = match &q.snapshot {
                Some(label) => format!("ml:snapshot:{label}"),
                None => "ml:true".to_string(),
            };
            intersect_into(
                &mut cand,
                self.app_postings.get(&key).cloned().unwrap_or_default(),
            );
        }
        if let Some(cloud) = q.cloud {
            let key = format!("cloud:{cloud}");
            intersect_into(
                &mut cand,
                self.app_postings.get(&key).cloned().unwrap_or_default(),
            );
        }
        let mut ids: Vec<u32> = cand.unwrap_or_else(|| (0..self.apps.len() as u32).collect());
        ids.sort_unstable(); // package ascending == id ascending
        if let Some(limit) = q.limit {
            ids.truncate(limit as usize);
        }
        ids.iter().map(|&id| &self.apps[id as usize]).collect()
    }

    /// Deterministic corpus statistics: totals, the snapshot roster and
    /// every posting-list cardinality, one `key = value` line each
    /// (BTreeMap order, so byte-stable).
    pub fn stats_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("generation = {}\n", self.generation));
        out.push_str(&format!("models = {}\n", self.models.len()));
        out.push_str(&format!("apps = {}\n", self.apps.len()));
        out.push_str(&format!(
            "snapshots = {}\n",
            self.snapshots
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join("; ")
        ));
        for (key, ids) in &self.model_postings {
            out.push_str(&format!("models[{key}] = {}\n", ids.len()));
        }
        for (key, ids) in &self.app_postings {
            out.push_str(&format!("apps[{key}] = {}\n", ids.len()));
        }
        out
    }
}

/// Narrow `cand` by `ids` (both sorted): first filter seeds, later ones
/// intersect.
fn intersect_into(cand: &mut Option<Vec<u32>>, ids: Vec<u32>) {
    *cand = Some(match cand.take() {
        None => ids,
        Some(cur) => {
            let mut out = Vec::with_capacity(cur.len().min(ids.len()));
            let (mut i, mut j) = (0, 0);
            while i < cur.len() && j < ids.len() {
                match cur[i].cmp(&ids[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        out.push(cur[i]);
                        i += 1;
                        j += 1;
                    }
                }
            }
            out
        }
    });
}

/// Ids whose column value lies in `[min, max]` (inclusive, either side
/// optional), returned sorted ascending for intersection.
fn range_ids(col: &[(u64, u32)], min: Option<u64>, max: Option<u64>) -> Vec<u32> {
    let lo = match min {
        Some(m) => col.partition_point(|&(v, _)| v < m),
        None => 0,
    };
    let hi = match max {
        Some(m) => col.partition_point(|&(v, _)| v <= m),
        None => col.len(),
    };
    let mut ids: Vec<u32> = col[lo..hi.max(lo)].iter().map(|&(_, id)| id).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_modelfmt::Framework;

    pub(crate) fn model(checksum: &str, fw: Framework, task: Option<Task>, flops: u64) -> ModelDoc {
        ModelDoc {
            checksum: checksum.into(),
            name: format!("m-{checksum}"),
            framework: fw,
            task,
            quantised: flops.is_multiple_of(2),
            size_bytes: flops / 2,
            flops,
            params: flops / 4,
            apps_by_snapshot: [("Apr 2021".to_string(), 2u64)].into_iter().collect(),
        }
    }

    pub(crate) fn tiny_index() -> CorpusIndex {
        let mut idx = CorpusIndex::new();
        idx.ingest_snapshot(
            "Apr 2021",
            vec![
                model("aa", Framework::TfLite, Some(Task::ObjectDetection), 100),
                model("bb", Framework::Caffe, Some(Task::TextClassification), 50),
                model("cc", Framework::TfLite, None, 100),
                model("dd", Framework::Ncnn, Some(Task::ObjectDetection), 75),
            ],
            vec![
                AppDoc {
                    package: "com.a".into(),
                    category: "health & fitness".into(),
                    by_snapshot: [(
                        "Apr 2021".to_string(),
                        AppSnap {
                            models: 2,
                            ml: true,
                            cloud: false,
                        },
                    )]
                    .into_iter()
                    .collect(),
                },
                AppDoc {
                    package: "com.b".into(),
                    category: "finance".into(),
                    by_snapshot: [(
                        "Apr 2021".to_string(),
                        AppSnap {
                            models: 0,
                            ml: false,
                            cloud: true,
                        },
                    )]
                    .into_iter()
                    .collect(),
                },
            ],
        );
        idx
    }

    #[test]
    fn posting_list_intersection_and_union() {
        let idx = tiny_index();
        let q = ModelQuery {
            frameworks: vec!["tflite".into(), "ncnn".into()],
            tasks: vec!["object detection".into()],
            ..ModelQuery::default()
        };
        let got: Vec<&str> = idx.query_models(&q).iter().map(|m| m.checksum.as_str()).collect();
        // aa (tflite, detection, 100 flops) then dd (ncnn, detection, 75).
        assert_eq!(got, vec!["aa", "dd"]);
    }

    #[test]
    fn ranking_is_flops_desc_then_checksum_asc() {
        let idx = tiny_index();
        let got: Vec<&str> = idx
            .query_models(&ModelQuery::default())
            .iter()
            .map(|m| m.checksum.as_str())
            .collect();
        // aa and cc tie at 100 flops: checksum breaks the tie.
        assert_eq!(got, vec!["aa", "cc", "dd", "bb"]);
    }

    #[test]
    fn range_scans_are_inclusive() {
        let idx = tiny_index();
        let q = ModelQuery {
            min_flops: Some(50),
            max_flops: Some(75),
            ..ModelQuery::default()
        };
        let got: Vec<&str> = idx.query_models(&q).iter().map(|m| m.checksum.as_str()).collect();
        assert_eq!(got, vec!["dd", "bb"]);
        let q = ModelQuery {
            limit: Some(1),
            ..q
        };
        assert_eq!(idx.query_models(&q).len(), 1);
    }

    #[test]
    fn app_queries_filter_and_rank_by_package() {
        let idx = tiny_index();
        let all = idx.query_apps(&AppQuery::default());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].package, "com.a");
        let ml = idx.query_apps(&AppQuery {
            ml_only: true,
            ..AppQuery::default()
        });
        assert_eq!(ml.len(), 1);
        assert_eq!(ml[0].package, "com.a");
        let cloudy = idx.query_apps(&AppQuery {
            cloud: Some(true),
            ..AppQuery::default()
        });
        assert_eq!(cloudy.len(), 1);
        assert_eq!(cloudy[0].package, "com.b");
        let cat = idx.query_apps(&AppQuery {
            categories: vec!["health & fitness".into()],
            ..AppQuery::default()
        });
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn reingesting_a_snapshot_is_idempotent() {
        let mut idx = tiny_index();
        let before = idx.stats_text();
        let g = idx.generation();
        idx.ingest_snapshot(
            "Apr 2021",
            vec![
                model("aa", Framework::TfLite, Some(Task::ObjectDetection), 100),
                model("bb", Framework::Caffe, Some(Task::TextClassification), 50),
                model("cc", Framework::TfLite, None, 100),
                model("dd", Framework::Ncnn, Some(Task::ObjectDetection), 75),
            ],
            vec![],
        );
        // Same models; the apps of that snapshot were replaced (none now),
        // the generation advanced.
        assert_eq!(idx.model_count(), 4);
        assert_eq!(idx.app_count(), 0);
        assert_eq!(idx.generation(), g + 1);
        assert_ne!(idx.stats_text(), before, "apps changed");
    }

    #[test]
    fn second_snapshot_merges_by_checksum() {
        let mut idx = tiny_index();
        let mut carried = model("aa", Framework::TfLite, Some(Task::ObjectDetection), 100);
        carried.apps_by_snapshot = [("Feb 2020".to_string(), 5u64)].into_iter().collect();
        let mut fresh = model("ee", Framework::TfLite, None, 10);
        fresh.apps_by_snapshot = [("Feb 2020".to_string(), 1u64)].into_iter().collect();
        idx.ingest_snapshot("Feb 2020", vec![carried, fresh], vec![]);
        assert_eq!(idx.model_count(), 5, "aa merged, ee new");
        assert_eq!(idx.snapshot_labels(), vec!["Apr 2021", "Feb 2020"]);
        let aa = &idx.models()[0];
        assert_eq!(aa.checksum, "aa");
        assert_eq!(aa.app_count(Some("Feb 2020")), 5);
        assert_eq!(aa.app_count(Some("Apr 2021")), 2);
        assert_eq!(aa.app_count(None), 5, "max across snapshots");
        // Snapshot-scoped query sees only that snapshot's models.
        let q = ModelQuery {
            snapshot: Some("Feb 2020".into()),
            ..ModelQuery::default()
        };
        assert_eq!(idx.query_models(&q).len(), 2);
    }

    #[test]
    fn esc_roundtrips() {
        for s in ["", "plain", "two words", "a%b", "tab\there", "nl\nhere", "100%"] {
            assert_eq!(unesc(&esc(s)), s, "{s:?}");
            assert!(!esc(s).contains(' '), "{s:?}");
        }
        // Invalid escapes pass through.
        assert_eq!(unesc("%zz"), "%zz");
        assert_eq!(unesc("%2"), "%2");
    }
}
