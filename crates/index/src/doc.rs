//! The indexed documents.
//!
//! One [`ModelDoc`] per unique model checksum and one [`AppDoc`] per
//! package. Facts that vary between study snapshots (how many apps carry
//! a model, whether an app ships models at all) live in per-snapshot
//! maps, so both the Feb 2020 and Apr 2021 corpora share a single index
//! and snapshot-scoped queries stay exact.

use gaugenn_dnn::task::Task;
use gaugenn_modelfmt::Framework;
use std::collections::BTreeMap;

/// One unique model (checksum-keyed), as indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelDoc {
    /// md5 over all model files — the document key.
    pub checksum: String,
    /// Model name from the graph.
    pub name: String,
    /// Container framework (which is also the file *format* in this
    /// corpus — the two dimensions coincide).
    pub framework: Framework,
    /// Task classification, when one was assigned (§4.4).
    pub task: Option<Task>,
    /// Whether the model is quantised (int8 weights or activations,
    /// §6.1).
    pub quantised: bool,
    /// Serialized size in bytes (all files).
    pub size_bytes: u64,
    /// Total FLOPs from the trace.
    pub flops: u64,
    /// Total trainable parameters from the trace.
    pub params: u64,
    /// Snapshot label → number of apps carrying this model there.
    pub apps_by_snapshot: BTreeMap<String, u64>,
}

impl ModelDoc {
    /// Apps carrying this model: the given snapshot's count, or — with
    /// no snapshot selected — the maximum across snapshots (a count
    /// summed over snapshots would double-count persisting apps).
    pub fn app_count(&self, snapshot: Option<&str>) -> u64 {
        match snapshot {
            Some(label) => self.apps_by_snapshot.get(label).copied().unwrap_or(0),
            None => self.apps_by_snapshot.values().copied().max().unwrap_or(0),
        }
    }
}

/// Per-snapshot app facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AppSnap {
    /// Model instances extracted from the app in that snapshot.
    pub models: u64,
    /// ML-powered (models or framework libraries, §3.1).
    pub ml: bool,
    /// Invokes cloud ML APIs (§6.4).
    pub cloud: bool,
}

/// One app (package-keyed), as indexed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppDoc {
    /// Package name — the document key.
    pub package: String,
    /// Store category.
    pub category: String,
    /// Snapshot label → that snapshot's facts.
    pub by_snapshot: BTreeMap<String, AppSnap>,
}

impl AppDoc {
    /// The app's facts for `snapshot`, or — with no snapshot selected —
    /// the union view (max model count, OR'd flags).
    pub fn snap(&self, snapshot: Option<&str>) -> AppSnap {
        match snapshot {
            Some(label) => self.by_snapshot.get(label).copied().unwrap_or_default(),
            None => {
                let mut merged = AppSnap::default();
                for s in self.by_snapshot.values() {
                    merged.models = merged.models.max(s.models);
                    merged.ml |= s.ml;
                    merged.cloud |= s.cloud;
                }
                merged
            }
        }
    }
}

/// Find a framework by its lowercase wire name.
pub fn framework_by_name(name: &str) -> Option<Framework> {
    Framework::ALL.iter().copied().find(|f| f.name() == name)
}

/// Find a task by its wire name (Table 3 label, spaces included).
pub fn task_by_name(name: &str) -> Option<Task> {
    Task::ALL.iter().copied().find(|t| t.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_lookups_roundtrip_every_variant() {
        for f in Framework::ALL {
            assert_eq!(framework_by_name(f.name()), Some(f));
        }
        for t in Task::ALL {
            assert_eq!(task_by_name(t.name()), Some(t));
        }
        assert_eq!(framework_by_name("no-such"), None);
        assert_eq!(task_by_name("no-such"), None);
    }

    #[test]
    fn union_snap_merges_flags_and_counts() {
        let mut doc = AppDoc {
            package: "com.x".into(),
            category: "tools".into(),
            by_snapshot: BTreeMap::new(),
        };
        doc.by_snapshot.insert(
            "Feb 2020".into(),
            AppSnap {
                models: 3,
                ml: true,
                cloud: false,
            },
        );
        doc.by_snapshot.insert(
            "Apr 2021".into(),
            AppSnap {
                models: 1,
                ml: false,
                cloud: true,
            },
        );
        let merged = doc.snap(None);
        assert_eq!(merged.models, 3);
        assert!(merged.ml && merged.cloud);
        assert_eq!(doc.snap(Some("Apr 2021")).models, 1);
        assert_eq!(doc.snap(Some("missing")).models, 0);
    }
}
