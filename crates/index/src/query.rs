//! The typed query surface and its canonical key/value grammar.
//!
//! A query is a plain struct; [`ModelQuery::to_pairs`] renders it as an
//! ordered key/value list and [`ModelQuery::from_pairs`] parses one back
//! (likewise for [`AppQuery`]). The playstore `Route` enum wraps these
//! into `/query/models?...` / `/query/apps?...` wire paths, percent-
//! encoding the values — so the route, the server dispatch and the query
//! clients all share this one grammar.
//!
//! Multi-valued keys (`framework`, `task`, `modality`, `category`)
//! repeat: `framework=tflite&framework=caffe` means *either*. Values
//! keep their decoded form here (task names contain spaces); numeric
//! values are decimal `u64`s. Unknown keys and malformed numbers are
//! ignored on parse, which keeps the grammar forward-compatible.

/// A model query: multi-valued dimension filters, inclusive numeric
/// ranges, an optional snapshot scope, and a result limit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ModelQuery {
    /// Framework names (lowercase, e.g. `tflite`); empty = any.
    pub frameworks: Vec<String>,
    /// Task names (Table 3 labels, spaces included); empty = any.
    pub tasks: Vec<String>,
    /// Modality names (`vision`/`nlp`/`audio`/`sensor`); empty = any.
    pub modalities: Vec<String>,
    /// Quantisation filter (§6.1); `None` = any.
    pub quantised: Option<bool>,
    /// Snapshot label scope (e.g. `Apr 2021`); `None` = any snapshot.
    pub snapshot: Option<String>,
    /// Minimum FLOPs, inclusive.
    pub min_flops: Option<u64>,
    /// Maximum FLOPs, inclusive.
    pub max_flops: Option<u64>,
    /// Minimum parameters, inclusive.
    pub min_params: Option<u64>,
    /// Maximum parameters, inclusive.
    pub max_params: Option<u64>,
    /// Minimum serialized size in bytes, inclusive.
    pub min_size: Option<u64>,
    /// Maximum serialized size in bytes, inclusive.
    pub max_size: Option<u64>,
    /// Keep only the first N ranked results.
    pub limit: Option<u64>,
}

impl ModelQuery {
    /// Render as the canonical ordered key/value list (values decoded —
    /// the wire layer percent-encodes them).
    pub fn to_pairs(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for v in &self.frameworks {
            out.push(("framework", v.clone()));
        }
        for v in &self.tasks {
            out.push(("task", v.clone()));
        }
        for v in &self.modalities {
            out.push(("modality", v.clone()));
        }
        if let Some(q) = self.quantised {
            out.push(("quant", q.to_string()));
        }
        if let Some(s) = &self.snapshot {
            out.push(("snapshot", s.clone()));
        }
        push_num(&mut out, "min_flops", self.min_flops);
        push_num(&mut out, "max_flops", self.max_flops);
        push_num(&mut out, "min_params", self.min_params);
        push_num(&mut out, "max_params", self.max_params);
        push_num(&mut out, "min_size", self.min_size);
        push_num(&mut out, "max_size", self.max_size);
        push_num(&mut out, "limit", self.limit);
        out
    }

    /// Parse from decoded key/value pairs (the inverse of
    /// [`ModelQuery::to_pairs`]). Unknown keys are ignored.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, String)>) -> ModelQuery {
        let mut q = ModelQuery::default();
        for (k, v) in pairs {
            match k {
                "framework" => q.frameworks.push(v),
                "task" => q.tasks.push(v),
                "modality" => q.modalities.push(v),
                "quant" => q.quantised = parse_bool(&v),
                "snapshot" => q.snapshot = Some(v),
                "min_flops" => q.min_flops = v.parse().ok(),
                "max_flops" => q.max_flops = v.parse().ok(),
                "min_params" => q.min_params = v.parse().ok(),
                "max_params" => q.max_params = v.parse().ok(),
                "min_size" => q.min_size = v.parse().ok(),
                "max_size" => q.max_size = v.parse().ok(),
                "limit" => q.limit = v.parse().ok(),
                _ => {}
            }
        }
        q
    }
}

/// An app query: category filters, ML/cloud flags, snapshot scope,
/// limit.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AppQuery {
    /// Category names (decoded, e.g. `health & fitness`); empty = any.
    pub categories: Vec<String>,
    /// Keep only ML-powered apps (scoped to the snapshot when one is
    /// selected).
    pub ml_only: bool,
    /// Cloud-ML-API usage filter; `None` = any.
    pub cloud: Option<bool>,
    /// Snapshot label scope; `None` = any snapshot.
    pub snapshot: Option<String>,
    /// Keep only the first N ranked results.
    pub limit: Option<u64>,
}

impl AppQuery {
    /// Render as the canonical ordered key/value list. `ml=true` is
    /// emitted only when set — its absence already means "any".
    pub fn to_pairs(&self) -> Vec<(&'static str, String)> {
        let mut out = Vec::new();
        for v in &self.categories {
            out.push(("category", v.clone()));
        }
        if self.ml_only {
            out.push(("ml", "true".to_string()));
        }
        if let Some(c) = self.cloud {
            out.push(("cloud", c.to_string()));
        }
        if let Some(s) = &self.snapshot {
            out.push(("snapshot", s.clone()));
        }
        push_num(&mut out, "limit", self.limit);
        out
    }

    /// Parse from decoded key/value pairs. Unknown keys are ignored.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, String)>) -> AppQuery {
        let mut q = AppQuery::default();
        for (k, v) in pairs {
            match k {
                "category" => q.categories.push(v),
                "ml" => q.ml_only = v == "true",
                "cloud" => q.cloud = parse_bool(&v),
                "snapshot" => q.snapshot = Some(v),
                "limit" => q.limit = v.parse().ok(),
                _ => {}
            }
        }
        q
    }
}

fn push_num(out: &mut Vec<(&'static str, String)>, key: &'static str, v: Option<u64>) {
    if let Some(n) = v {
        out.push((key, n.to_string()));
    }
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

/// Convenience for tests and clients: parse pairs out of an owned map
/// shape `(String, String)`.
pub fn pairs_ref(pairs: &[(String, String)]) -> impl Iterator<Item = (&str, String)> {
    pairs.iter().map(|(k, v)| (k.as_str(), v.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_query_pairs_roundtrip() {
        let q = ModelQuery {
            frameworks: vec!["tflite".into(), "caffe".into()],
            tasks: vec!["object detection".into()],
            modalities: vec![],
            quantised: Some(false),
            snapshot: Some("Apr 2021".into()),
            min_flops: Some(0),
            max_flops: Some(u64::MAX),
            min_params: None,
            max_params: None,
            min_size: Some(1024),
            max_size: None,
            limit: Some(10),
        };
        let pairs: Vec<(String, String)> = q
            .to_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(ModelQuery::from_pairs(pairs_ref(&pairs)), q);
    }

    #[test]
    fn app_query_pairs_roundtrip_and_defaults() {
        let q = AppQuery {
            categories: vec!["health & fitness".into()],
            ml_only: true,
            cloud: Some(true),
            snapshot: None,
            limit: None,
        };
        let pairs: Vec<(String, String)> = q
            .to_pairs()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        assert_eq!(AppQuery::from_pairs(pairs_ref(&pairs)), q);
        // Empty pair list → default query.
        assert_eq!(AppQuery::from_pairs(std::iter::empty()), AppQuery::default());
    }

    #[test]
    fn unknown_keys_and_bad_numbers_are_ignored() {
        let pairs = vec![
            ("nope".to_string(), "x".to_string()),
            ("limit".to_string(), "not-a-number".to_string()),
            ("quant".to_string(), "maybe".to_string()),
        ];
        let q = ModelQuery::from_pairs(pairs_ref(&pairs));
        assert_eq!(q, ModelQuery::default());
    }
}
