//! adb transport stand-in.
//!
//! The master "pushes all the necessary dependencies to the device through
//! adb and asserts the initial device state" (§3.3). Here the transport is
//! a shared in-memory device file system plus a device-state block, with
//! every operation gated on the USB data channel — when the YKUSH cuts
//! power (and with it data), adb must genuinely fail.

use crate::{HarnessError, Result};
use gaugenn_power::UsbSwitch;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Mutable device state the benchmark asserts before running (§3.3:
/// "WiFi and sensors are off, maximum screen timeout, etc").
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceState {
    /// WiFi radio.
    pub wifi_on: bool,
    /// Sensor hub active.
    pub sensors_on: bool,
    /// Screen held on (black background app).
    pub screen_on: bool,
    /// Screen timeout in seconds.
    pub screen_timeout_s: u32,
}

impl Default for DeviceState {
    fn default() -> Self {
        // A phone fresh off the shelf: everything on, short timeout.
        DeviceState {
            wifi_on: true,
            sensors_on: true,
            screen_on: true,
            screen_timeout_s: 30,
        }
    }
}

/// The shared device endpoint: file system + state + USB switch.
#[derive(Debug, Clone)]
pub struct DeviceEndpoint {
    inner: Arc<Mutex<EndpointInner>>,
}

#[derive(Debug)]
struct EndpointInner {
    files: BTreeMap<String, Vec<u8>>,
    state: DeviceState,
    usb: UsbSwitch,
    reboots: u32,
}

impl Default for DeviceEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceEndpoint {
    /// A device plugged in over USB.
    pub fn new() -> Self {
        DeviceEndpoint {
            inner: Arc::new(Mutex::new(EndpointInner {
                files: BTreeMap::new(),
                state: DeviceState::default(),
                usb: UsbSwitch::new(),
                reboots: 0,
            })),
        }
    }

    /// Current USB switch state.
    pub fn usb(&self) -> UsbSwitch {
        self.inner.lock().usb
    }

    /// Cut USB power (and data).
    pub fn usb_power_off(&self) {
        self.inner.lock().usb.power_off();
    }

    /// Restore USB power and data.
    pub fn usb_power_restore(&self) {
        self.inner.lock().usb.power_restore();
    }

    /// Device-side file read (not gated: the on-device script reads its
    /// own storage).
    pub fn read_local(&self, path: &str) -> Option<Vec<u8>> {
        self.inner.lock().files.get(path).cloned()
    }

    /// Device-side file write.
    pub fn write_local(&self, path: &str, bytes: Vec<u8>) {
        self.inner.lock().files.insert(path.to_string(), bytes);
    }

    /// Hard-reboot the device: the watchdog's recovery action when an
    /// agent hangs. USB power comes back (the switch is master-side), the
    /// state block resets to factory defaults (WiFi on, short timeout —
    /// the master must re-assert the benchmark state), and flash contents
    /// survive, exactly like power-cycling a real phone.
    pub fn hard_reboot(&self) {
        let mut inner = self.inner.lock();
        inner.usb.power_restore();
        inner.state = DeviceState::default();
        inner.reboots += 1;
    }

    /// How many times the device has been hard-rebooted.
    pub fn reboots(&self) -> u32 {
        self.inner.lock().reboots
    }

    /// Device-side state snapshot.
    pub fn state(&self) -> DeviceState {
        self.inner.lock().state.clone()
    }

    /// Device-side state mutation.
    pub fn set_state(&self, f: impl FnOnce(&mut DeviceState)) {
        f(&mut self.inner.lock().state);
    }
}

/// The master-side adb connection to one device.
#[derive(Debug, Clone)]
pub struct Adb {
    endpoint: DeviceEndpoint,
}

impl Adb {
    /// Attach to a device endpoint.
    pub fn connect(endpoint: DeviceEndpoint) -> Adb {
        Adb { endpoint }
    }

    fn check_link(&self) -> Result<()> {
        if self.endpoint.usb().adb_reachable() {
            Ok(())
        } else {
            Err(HarnessError::AdbUnreachable)
        }
    }

    /// `adb push`.
    pub fn push(&self, path: &str, bytes: Vec<u8>) -> Result<()> {
        self.check_link()?;
        self.endpoint.write_local(path, bytes);
        Ok(())
    }

    /// `adb pull`.
    pub fn pull(&self, path: &str) -> Result<Vec<u8>> {
        self.check_link()?;
        self.endpoint
            .read_local(path)
            .ok_or_else(|| HarnessError::Device(format!("no such file: {path}")))
    }

    /// `adb shell rm`.
    pub fn rm(&self, path: &str) -> Result<()> {
        self.check_link()?;
        self.endpoint.inner.lock().files.remove(path);
        Ok(())
    }

    /// Assert the §3.3 initial device state, fixing what it can: WiFi and
    /// sensors off, screen pinned on with a long timeout.
    pub fn assert_benchmark_state(&self) -> Result<()> {
        self.check_link()?;
        self.endpoint.set_state(|s| {
            s.wifi_on = false;
            s.sensors_on = false;
            s.screen_on = true;
            s.screen_timeout_s = 1800;
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pull_roundtrip() {
        let ep = DeviceEndpoint::new();
        let adb = Adb::connect(ep.clone());
        adb.push("/data/local/tmp/model.tflite", vec![1, 2, 3]).unwrap();
        assert_eq!(adb.pull("/data/local/tmp/model.tflite").unwrap(), vec![1, 2, 3]);
        adb.rm("/data/local/tmp/model.tflite").unwrap();
        assert!(adb.pull("/data/local/tmp/model.tflite").is_err());
    }

    #[test]
    fn adb_fails_when_usb_power_cut() {
        let ep = DeviceEndpoint::new();
        let adb = Adb::connect(ep.clone());
        adb.push("/x", vec![0]).unwrap();
        ep.usb_power_off();
        assert!(matches!(adb.pull("/x"), Err(HarnessError::AdbUnreachable)));
        assert!(matches!(adb.push("/y", vec![]), Err(HarnessError::AdbUnreachable)));
        ep.usb_power_restore();
        assert!(adb.pull("/x").is_ok());
    }

    #[test]
    fn device_reads_its_own_storage_while_unpowered() {
        let ep = DeviceEndpoint::new();
        let adb = Adb::connect(ep.clone());
        adb.push("/job.cfg", b"job=1".to_vec()).unwrap();
        ep.usb_power_off();
        // The headless script keeps running from local storage.
        assert_eq!(ep.read_local("/job.cfg").unwrap(), b"job=1");
        ep.write_local("/result.txt", b"ok".to_vec());
    }

    #[test]
    fn state_assertions_fix_the_device() {
        let ep = DeviceEndpoint::new();
        assert!(ep.state().wifi_on, "factory state has wifi on");
        let adb = Adb::connect(ep.clone());
        adb.assert_benchmark_state().unwrap();
        let s = ep.state();
        assert!(!s.wifi_on && !s.sensors_on && s.screen_on);
        assert!(s.screen_timeout_s >= 600);
    }
}
