//! Multi-device benchmark campaigns.
//!
//! The paper benchmarks hundreds of models across six devices. A campaign
//! fans a job list out to one worker thread per device (each with its own
//! master listener and USB switch), fed from a shared crossbeam channel —
//! devices of different speeds naturally drain the queue at different
//! rates, like the physical rack in Fig. 2.

use crate::device::DeviceAgent;
use crate::job::{JobResult, JobSpec};
use crate::master::Master;
use crossbeam::channel;
use gaugenn_soc::DeviceSpec;

/// One campaign job: a spec plus its model files.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Job spec template (the id is preserved).
    pub spec: JobSpec,
    /// Model files to push.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Outcome of one (device, job) pair.
#[derive(Debug)]
pub struct CampaignResult {
    /// Device name.
    pub device: String,
    /// Job id.
    pub job_id: u64,
    /// The measurement, or the device-side failure.
    pub outcome: Result<JobResult, String>,
}

/// Run every job on every device. Returns one result per (device, job).
///
/// Jobs are cloned per device (each device runs the full list, as in the
/// paper's per-device sweeps); devices run in parallel threads.
pub fn run_campaign(devices: &[DeviceSpec], jobs: &[Campaign]) -> Vec<CampaignResult> {
    let mut handles = Vec::new();
    for spec in devices {
        let (tx, rx) = channel::unbounded::<Campaign>();
        for j in jobs {
            tx.send(j.clone()).expect("receiver alive");
        }
        drop(tx);
        let spec = spec.clone();
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            let master = match Master::new() {
                Ok(m) => m,
                Err(e) => {
                    return vec![CampaignResult {
                        device: spec.name.to_string(),
                        job_id: 0,
                        outcome: Err(format!("master bind failed: {e}")),
                    }]
                }
            };
            let mut agent = DeviceAgent::new(spec.clone());
            while let Ok(job) = rx.recv() {
                let outcome = master
                    .run_job(&mut agent, &job.spec, &job.files)
                    .map_err(|e| e.to_string());
                out.push(CampaignResult {
                    device: spec.name.to_string(),
                    job_id: job.spec.id,
                    outcome,
                });
            }
            out
        }));
    }
    let mut all = Vec::new();
    for h in handles {
        all.extend(h.join().expect("device worker panicked"));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_modelfmt::Framework;
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::spec::{device, hdks};
    use gaugenn_soc::Backend;

    fn campaign(id: u64, task: Task, seed: u64) -> Campaign {
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        let files = gaugenn_modelfmt::encode(&g, Framework::TfLite).unwrap().files;
        Campaign {
            spec: JobSpec {
                runs: 4,
                warmups: 1,
                ..JobSpec::new(id, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
            },
            files,
        }
    }

    #[test]
    fn campaign_covers_devices_times_jobs() {
        let devices = hdks();
        let jobs = vec![
            campaign(1, Task::MovementTracking, 1),
            campaign(2, Task::KeywordDetection, 2),
        ];
        let results = run_campaign(&devices, &jobs);
        assert_eq!(results.len(), devices.len() * jobs.len());
        assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
        // Generations must order on mean latency for the same job.
        let mean = |dev: &str| -> f64 {
            results
                .iter()
                .filter(|r| r.device == dev)
                .filter_map(|r| r.outcome.as_ref().ok())
                .map(|j| j.mean_latency_ms())
                .sum::<f64>()
        };
        assert!(mean("Q845") > mean("Q855"));
        assert!(mean("Q855") > mean("Q888"));
    }

    #[test]
    fn failures_are_isolated_per_job() {
        let devices = vec![device("Q845").unwrap()];
        let good = campaign(1, Task::MovementTracking, 1);
        let mut bad = campaign(2, Task::AutoComplete, 2);
        bad.spec.backend = Backend::Snpe(gaugenn_soc::SnpeTarget::Dsp);
        let results = run_campaign(&devices, &[good, bad]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().any(|r| r.outcome.is_ok()));
        assert!(results.iter().any(|r| r.outcome.is_err()));
    }
}
