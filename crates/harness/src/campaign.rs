//! Multi-device benchmark campaigns.
//!
//! The paper benchmarks hundreds of models across six devices. A campaign
//! fans a job list out to one worker thread per device (each with its own
//! master listener and USB switch), fed from a shared crossbeam channel —
//! devices of different speeds naturally drain the queue at different
//! rates, like the physical rack in Fig. 2.
//!
//! Campaigns are built to survive a bad night on the rack: a panicking
//! worker is isolated into per-job `Err` outcomes instead of tearing down
//! the run, transient failures (watchdog timeouts, dead adb links) are
//! retried, and a device that fails [`CampaignConfig::quarantine_after`]
//! jobs in a row is quarantined — its remaining jobs are marked failed
//! without being run, so one bricked phone cannot stall the fleet. Every
//! (device, job) pair always yields exactly one [`CampaignResult`].
//!
//! Quarantine is permanent by default (a bricked phone stays bricked for
//! the night), but [`CampaignConfig::probation_cooldown_ms`] turns it
//! into a cool-down on the campaign's own clock: once the cool-down
//! elapses the next job runs as a *probe*. A successful probe clears the
//! quarantine and its strike count; a failed probe re-quarantines the
//! device with a **doubled** cool-down, so a flapping device backs off
//! exponentially instead of burning a probe job per queue entry. On a
//! [`LogicalClock`](crate::clock::LogicalClock) the whole
//! quarantine/probation schedule is time-reproducible.

use crate::device::DeviceAgent;
use crate::job::{JobResult, JobSpec};
use crate::master::{Master, MasterConfig};
use crossbeam::channel;
use gaugenn_soc::DeviceSpec;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One campaign job: a spec plus its model files.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Job spec template (the id is preserved).
    pub spec: JobSpec,
    /// Model files to push.
    pub files: Vec<(String, Vec<u8>)>,
}

/// Scripted fault for one device in a campaign (test/chaos hook): the
/// named device's agent hangs for its first `hang_jobs` jobs.
#[derive(Debug, Clone)]
pub struct DeviceScript {
    /// Device name the script applies to.
    pub device: String,
    /// Number of jobs the agent hangs on (`u32::MAX` ≈ bricked).
    pub hang_jobs: u32,
}

/// Commit hook fired for every [`CampaignResult`] the moment it is
/// committed by its device worker — the campaign's journaling seam (the
/// harness stays layer-clean of `core::journal`; callers that want
/// durable campaigns append to their own journal here).
pub type CommitHook = Arc<dyn Fn(&CampaignResult) + Send + Sync>;

/// Resilience knobs for a campaign.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Watchdog/retry configuration handed to each per-device master.
    pub master: MasterConfig,
    /// Campaign-level retries per job on *transient* errors (on top of
    /// the master's own watchdog attempts).
    pub job_retries: u32,
    /// Quarantine a device after this many consecutive failed jobs; its
    /// remaining jobs fail fast without touching the hardware.
    pub quarantine_after: u32,
    /// Probation cool-down in milliseconds on the campaign clock
    /// ([`MasterConfig::clock`]). `None` (the default) keeps quarantine
    /// permanent; `Some(ms)` lets a quarantined device run one probe job
    /// after the cool-down elapses — success clears the quarantine,
    /// failure re-quarantines with the cool-down doubled.
    pub probation_cooldown_ms: Option<u64>,
    /// Fleet-wide probation budget: at most this many devices may hold a
    /// probation slot (serve cool-downs and burn probe jobs) at once.
    /// A device that enters quarantine when every slot is taken is
    /// quarantined *permanently* — its queue fails fast instead of
    /// stalling the campaign tail with doomed probes when the whole
    /// fleet flaps at once. `None` (the default) leaves probation
    /// unbudgeted. Slots are released by a successful probe.
    pub max_probation_devices: Option<usize>,
    /// Scripted faults (empty for production runs).
    pub scripts: Vec<DeviceScript>,
    /// Fired once per committed result, on the committing device's
    /// worker thread. `None` (the default) journals nothing.
    pub on_commit: Option<CommitHook>,
    /// `(device, job id)` pairs a previous (crashed) attempt already
    /// committed: the worker neither runs nor re-emits them, so a resumed
    /// campaign's results concatenated with the journaled ones cover
    /// exactly devices × jobs.
    pub completed: Option<Arc<BTreeSet<(String, u64)>>>,
}

impl std::fmt::Debug for CampaignConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignConfig")
            .field("master", &self.master)
            .field("job_retries", &self.job_retries)
            .field("quarantine_after", &self.quarantine_after)
            .field("probation_cooldown_ms", &self.probation_cooldown_ms)
            .field("max_probation_devices", &self.max_probation_devices)
            .field("scripts", &self.scripts)
            .field("on_commit", &self.on_commit.as_ref().map(|_| "<hook>"))
            .field("completed", &self.completed)
            .finish()
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            master: MasterConfig::default(),
            job_retries: 1,
            quarantine_after: 3,
            probation_cooldown_ms: None,
            max_probation_devices: None,
            scripts: Vec::new(),
            on_commit: None,
            completed: None,
        }
    }
}

/// Outcome of one (device, job) pair.
#[derive(Debug)]
pub struct CampaignResult {
    /// Device name.
    pub device: String,
    /// Job id.
    pub job_id: u64,
    /// The measurement, or the device-side failure.
    pub outcome: Result<JobResult, String>,
}

/// Run every job on every device with the default resilience config.
pub fn run_campaign(devices: &[DeviceSpec], jobs: &[Campaign]) -> Vec<CampaignResult> {
    run_campaign_with(devices, jobs, &CampaignConfig::default())
}

/// Run every job on every device. Returns exactly one result per
/// (device, job) pair, whatever fails.
///
/// Jobs are cloned per device (each device runs the full list, as in the
/// paper's per-device sweeps); devices run in parallel threads.
pub fn run_campaign_with(
    devices: &[DeviceSpec],
    jobs: &[Campaign],
    config: &CampaignConfig,
) -> Vec<CampaignResult> {
    let budget = Arc::new(ProbationBudget::new(config.max_probation_devices));
    let mut handles = Vec::new();
    for spec in devices {
        // gaugelint: channel-pair(campaign.jobs) — per-device job queue, fed here and drained by this device's worker thread
        let (tx, rx) = channel::unbounded_named::<Campaign>("campaign.jobs");
        for j in jobs {
            // gaugelint: allow(unwrap-in-fault-path) — provably infallible: rx lives in this scope until after the loop, the channel cannot be closed yet
            tx.send(j.clone()).expect("receiver alive");
        }
        drop(tx);
        let spec = spec.clone();
        let config = config.clone();
        let budget = Arc::clone(&budget);
        let device_name = spec.name.to_string();
        let worker = std::thread::spawn(move || device_worker(spec, rx, &config, &budget));
        handles.push((device_name, worker, jobs.len()));
    }
    let mut all = Vec::new();
    for (device, handle, n_jobs) in handles {
        match handle.join() {
            Ok(results) => all.extend(results),
            // A worker that somehow panicked outside the per-job guard
            // still yields one Err per job, keeping the devices×jobs
            // invariant for downstream accounting.
            Err(_) => all.extend((0..n_jobs).map(|_| CampaignResult {
                device: device.clone(),
                job_id: 0,
                outcome: Err("device worker panicked".into()),
            })),
        }
    }
    all
}

/// The per-device worker loop: drain the queue, retrying transient
/// failures and quarantining the device after too many consecutive ones.
fn device_worker(
    spec: DeviceSpec,
    rx: channel::Receiver<Campaign>,
    config: &CampaignConfig,
    budget: &ProbationBudget,
) -> Vec<CampaignResult> {
    let device = spec.name.to_string();
    let mut out = Vec::new();
    let commit = |out: &mut Vec<CampaignResult>, result: CampaignResult| {
        if let Some(hook) = &config.on_commit {
            hook(&result);
        }
        out.push(result);
    };
    let skip = |job: &Campaign| {
        config
            .completed
            .as_ref()
            .is_some_and(|done| done.contains(&(device.clone(), job.spec.id)))
    };
    let master = match Master::with_config(config.master.clone()) {
        Ok(m) => m,
        Err(e) => {
            // No listener, no campaign: every queued job becomes a
            // structured failure instead of a silent disappearance.
            let err = format!("master bind failed: {e}");
            while let Ok(job) = rx.recv() {
                if skip(&job) {
                    continue;
                }
                commit(
                    &mut out,
                    CampaignResult {
                        device: device.clone(),
                        job_id: job.spec.id,
                        outcome: Err(err.clone()),
                    },
                );
            }
            return out;
        }
    };
    let mut agent = DeviceAgent::new(spec);
    // The agent polls on the same clock the master's watchdog runs on,
    // so a campaign on a logical clock is fully time-reproducible.
    agent.clock = config.master.clock.clone();
    if let Some(script) = config.scripts.iter().find(|s| s.device == device) {
        agent.hang_jobs_remaining = script.hang_jobs;
    }
    let mut gate = ProbationGate::new(config.quarantine_after, config.probation_cooldown_ms);
    // Whether this device holds one of the fleet's probation slots.
    let mut holds_slot = false;
    while let Ok(job) = rx.recv() {
        if skip(&job) {
            // A previous (crashed) attempt already committed this pair:
            // resumed campaigns neither run nor re-emit it.
            continue;
        }
        let verdict = gate.verdict(config.master.clock.now_ms());
        if matches!(verdict, GateVerdict::Quarantined) {
            let reason = if gate.probation_denied {
                "device quarantined permanently (fleet probation budget exhausted)".to_string()
            } else {
                format!(
                    "device quarantined after {} consecutive failures",
                    gate.strikes
                )
            };
            commit(
                &mut out,
                CampaignResult {
                    device: device.clone(),
                    job_id: job.spec.id,
                    outcome: Err(reason),
                },
            );
            continue;
        }
        let probing = matches!(verdict, GateVerdict::Probe);
        let outcome = run_one_job(&master, &mut agent, &job, config.job_retries);
        let ok = outcome.is_ok();
        let was_quarantined = gate.quarantined_at.is_some();
        gate.record(config.master.clock.now_ms(), ok, probing);
        if gate.quarantined_at.is_some() && !was_quarantined && gate.base_cooldown.is_some() {
            // Freshly quarantined with probation enabled: probation is
            // only granted while the fleet has slots left. (A failed
            // probe re-quarantines but keeps its existing slot.)
            if budget.try_acquire() {
                holds_slot = true;
            } else {
                gate.probation_denied = true;
            }
        }
        if ok && holds_slot {
            budget.release();
            holds_slot = false;
        }
        commit(
            &mut out,
            CampaignResult {
                device: device.clone(),
                job_id: job.spec.id,
                outcome,
            },
        );
    }
    out
}

/// Fleet-wide probation slot counter ([`CampaignConfig::max_probation_devices`]).
#[derive(Debug)]
struct ProbationBudget {
    /// Remaining slots; `None` = unbudgeted.
    slots: Option<AtomicUsize>,
}

impl ProbationBudget {
    fn new(max: Option<usize>) -> ProbationBudget {
        ProbationBudget {
            slots: max.map(AtomicUsize::new),
        }
    }

    /// Take one slot if any remain (always succeeds when unbudgeted).
    fn try_acquire(&self) -> bool {
        let Some(slots) = &self.slots else {
            return true;
        };
        slots
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    fn release(&self) {
        if let Some(slots) = &self.slots {
            slots.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// What the probation gate says about the next job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateVerdict {
    /// Device healthy: run the job normally.
    Run,
    /// Device quarantined but its cool-down has been served: run the job
    /// as a probe.
    Probe,
    /// Device quarantined and still cooling down (or quarantine is
    /// permanent): fail the job fast without touching the hardware.
    Quarantined,
}

/// Per-device quarantine/probation state machine on explicit millisecond
/// timestamps (the campaign clock), so the schedule is unit-testable and
/// time-reproducible on a logical clock.
#[derive(Debug)]
struct ProbationGate {
    quarantine_after: u32,
    base_cooldown: Option<u64>,
    /// Consecutive failures so far.
    strikes: u32,
    /// When the current quarantine (or failed probe) started.
    quarantined_at: Option<u64>,
    /// Cool-down the current quarantine must serve; doubles on every
    /// failed probe, resets to base on any success.
    cooldown_ms: u64,
    /// The fleet's probation budget was exhausted when this device
    /// entered quarantine: the quarantine is permanent, cool-down or not.
    probation_denied: bool,
}

impl ProbationGate {
    fn new(quarantine_after: u32, base_cooldown: Option<u64>) -> ProbationGate {
        ProbationGate {
            quarantine_after: quarantine_after.max(1),
            base_cooldown,
            strikes: 0,
            quarantined_at: None,
            cooldown_ms: base_cooldown.unwrap_or(0),
            probation_denied: false,
        }
    }

    fn verdict(&self, now_ms: u64) -> GateVerdict {
        if self.strikes < self.quarantine_after {
            return GateVerdict::Run;
        }
        if self.probation_denied {
            return GateVerdict::Quarantined;
        }
        match (self.base_cooldown, self.quarantined_at) {
            (Some(_), Some(since)) if now_ms.saturating_sub(since) >= self.cooldown_ms => {
                GateVerdict::Probe
            }
            _ => GateVerdict::Quarantined,
        }
    }

    /// Record a job outcome. Only called after a `Run` or `Probe`
    /// verdict — quarantined jobs never reach the hardware.
    fn record(&mut self, now_ms: u64, ok: bool, probing: bool) {
        if ok {
            self.strikes = 0;
            self.quarantined_at = None;
            self.cooldown_ms = self.base_cooldown.unwrap_or(0);
            return;
        }
        self.strikes += 1;
        if probing {
            // Failed probe: straight back to quarantine, and the next
            // probe waits twice as long.
            self.quarantined_at = Some(now_ms);
            self.cooldown_ms = self.cooldown_ms.saturating_mul(2).max(1);
        } else if self.strikes >= self.quarantine_after && self.quarantined_at.is_none() {
            // Strike threshold crossed: start serving the cool-down.
            self.quarantined_at = Some(now_ms);
        }
    }
}

/// One job with campaign-level retries. A panic anywhere inside the
/// master/agent machinery is caught and reported as this job's failure.
fn run_one_job(
    master: &Master,
    agent: &mut DeviceAgent,
    job: &Campaign,
    retries: u32,
) -> Result<JobResult, String> {
    let mut last = String::new();
    for _ in 0..=retries {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            master.run_job(agent, &job.spec, &job.files)
        }));
        match attempt {
            Ok(Ok(r)) => return Ok(r),
            Ok(Err(e)) => {
                let transient = e.is_transient();
                last = e.to_string();
                if !transient {
                    return Err(last);
                }
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                return Err(format!("worker panicked: {msg}"));
            }
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_modelfmt::Framework;
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::spec::{device, hdks};
    use gaugenn_soc::Backend;
    use std::time::Duration;

    fn campaign(id: u64, task: Task, seed: u64) -> Campaign {
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        let files = gaugenn_modelfmt::encode(&g, Framework::TfLite).unwrap().files;
        Campaign {
            spec: JobSpec {
                runs: 4,
                warmups: 1,
                ..JobSpec::new(id, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
            },
            files,
        }
    }

    #[test]
    fn campaign_covers_devices_times_jobs() {
        let devices = hdks();
        let jobs = vec![
            campaign(1, Task::MovementTracking, 1),
            campaign(2, Task::KeywordDetection, 2),
        ];
        let results = run_campaign(&devices, &jobs);
        assert_eq!(results.len(), devices.len() * jobs.len());
        assert!(results.iter().all(|r| r.outcome.is_ok()), "{results:?}");
        // Generations must order on mean latency for the same job.
        let mean = |dev: &str| -> f64 {
            results
                .iter()
                .filter(|r| r.device == dev)
                .filter_map(|r| r.outcome.as_ref().ok())
                .map(|j| j.mean_latency_ms())
                .sum::<f64>()
        };
        assert!(mean("Q845") > mean("Q855"));
        assert!(mean("Q855") > mean("Q888"));
    }

    #[test]
    fn failures_are_isolated_per_job() {
        let devices = vec![device("Q845").unwrap()];
        let good = campaign(1, Task::MovementTracking, 1);
        let mut bad = campaign(2, Task::AutoComplete, 2);
        bad.spec.backend = Backend::Snpe(gaugenn_soc::SnpeTarget::Dsp);
        let results = run_campaign(&devices, &[good, bad]);
        assert_eq!(results.len(), 2);
        assert!(results.iter().any(|r| r.outcome.is_ok()));
        assert!(results.iter().any(|r| r.outcome.is_err()));
    }

    #[test]
    fn hung_device_is_quarantined_while_others_finish() {
        let devices = vec![device("Q845").unwrap(), device("Q888").unwrap()];
        let jobs: Vec<Campaign> = (1..=4)
            .map(|id| campaign(id, Task::MovementTracking, id))
            .collect();
        let config = CampaignConfig {
            master: MasterConfig {
                accept_timeout: Duration::from_millis(50),
                attempts: 1,
                ..MasterConfig::default()
            },
            job_retries: 0,
            quarantine_after: 2,
            probation_cooldown_ms: None,
            scripts: vec![DeviceScript {
                device: "Q845".into(),
                hang_jobs: u32::MAX,
            }],
            ..CampaignConfig::default()
        };
        let results = run_campaign_with(&devices, &jobs, &config);
        assert_eq!(results.len(), devices.len() * jobs.len());
        // The healthy device finished everything.
        assert!(results
            .iter()
            .filter(|r| r.device == "Q888")
            .all(|r| r.outcome.is_ok()));
        // The hung one failed everything: two real watchdog timeouts,
        // then fail-fast quarantine for the rest of its queue.
        let hung: Vec<_> = results.iter().filter(|r| r.device == "Q845").collect();
        assert!(hung.iter().all(|r| r.outcome.is_err()));
        let quarantined = hung
            .iter()
            .filter(|r| {
                r.outcome
                    .as_ref()
                    .unwrap_err()
                    .contains("quarantined")
            })
            .count();
        assert_eq!(quarantined, 2, "{results:?}");
    }

    #[test]
    fn probation_gate_probes_after_cooldown_and_doubles_on_refailure() {
        let mut g = ProbationGate::new(2, Some(40));
        // Two strikes quarantine the device at t = 100.
        g.record(50, false, false);
        assert_eq!(g.verdict(50), GateVerdict::Run);
        g.record(100, false, false);
        assert_eq!(g.verdict(100), GateVerdict::Quarantined);
        assert_eq!(g.verdict(139), GateVerdict::Quarantined);
        // Cool-down served: the next job is a probe. It fails, so the
        // next cool-down is doubled and served from the failure time.
        assert_eq!(g.verdict(140), GateVerdict::Probe);
        g.record(150, false, true);
        assert_eq!(g.cooldown_ms, 80);
        assert_eq!(g.verdict(229), GateVerdict::Quarantined);
        assert_eq!(g.verdict(230), GateVerdict::Probe);
        // A successful probe clears the strikes and resets the cool-down.
        g.record(240, true, true);
        assert_eq!(g.verdict(240), GateVerdict::Run);
        assert_eq!(g.strikes, 0);
        assert_eq!(g.cooldown_ms, 40);
    }

    #[test]
    fn probation_gate_without_cooldown_is_permanent() {
        let mut g = ProbationGate::new(1, None);
        g.record(10, false, false);
        assert_eq!(g.verdict(u64::MAX), GateVerdict::Quarantined);
    }

    #[test]
    fn probation_budget_stops_mass_flapping_from_stalling_the_tail() {
        // Two of three devices flap forever. Un-budgeted, both would keep
        // winning zero-cool-down probes and burn a real watchdog timeout
        // on every queued job. With one probation slot, the loser of the
        // slot race is quarantined permanently and its tail fails fast.
        let devices = vec![
            device("Q845").unwrap(),
            device("Q855").unwrap(),
            device("Q888").unwrap(),
        ];
        let jobs: Vec<Campaign> = (1..=4)
            .map(|id| campaign(id, Task::MovementTracking, id))
            .collect();
        let config = CampaignConfig {
            master: MasterConfig {
                accept_timeout: Duration::from_millis(50),
                attempts: 1,
                clock: std::sync::Arc::new(crate::clock::LogicalClock::new()),
            },
            job_retries: 0,
            quarantine_after: 1,
            probation_cooldown_ms: Some(0),
            max_probation_devices: Some(1),
            scripts: vec![
                DeviceScript {
                    device: "Q845".into(),
                    hang_jobs: u32::MAX,
                },
                DeviceScript {
                    device: "Q855".into(),
                    hang_jobs: u32::MAX,
                },
            ],
            ..CampaignConfig::default()
        };
        let results = run_campaign_with(&devices, &jobs, &config);
        assert_eq!(results.len(), devices.len() * jobs.len());
        // The healthy device is untouched by the flappers.
        assert!(results
            .iter()
            .filter(|r| r.device == "Q888")
            .all(|r| r.outcome.is_ok()));
        // Every flapper job failed, and exactly one flapper (whichever
        // lost the slot race) was denied probation for its whole tail.
        let denied: Vec<&CampaignResult> = results
            .iter()
            .filter(|r| {
                matches!(&r.outcome, Err(e) if e.contains("probation budget exhausted"))
            })
            .collect();
        assert_eq!(denied.len(), 3, "{results:?}");
        assert!(
            denied.iter().all(|r| r.device == denied[0].device),
            "one device loses the slot race: {results:?}"
        );
        assert!(results
            .iter()
            .filter(|r| r.device != "Q888")
            .all(|r| r.outcome.is_err()));
    }

    #[test]
    fn commit_hook_fires_per_result_and_completed_pairs_are_skipped() {
        let devices = vec![device("Q845").unwrap()];
        let jobs = vec![
            campaign(1, Task::MovementTracking, 1),
            campaign(2, Task::KeywordDetection, 2),
        ];
        let committed: Arc<std::sync::Mutex<Vec<(String, u64)>>> = Arc::default();
        let sink = Arc::clone(&committed);
        let mut config = CampaignConfig {
            on_commit: Some(Arc::new(move |r: &CampaignResult| {
                sink.lock().unwrap().push((r.device.clone(), r.job_id));
            })),
            ..CampaignConfig::default()
        };
        let results = run_campaign_with(&devices, &jobs, &config);
        assert_eq!(results.len(), 2);
        {
            let seen = committed.lock().unwrap();
            assert_eq!(seen.len(), 2, "one commit per result");
            assert!(seen.contains(&("Q845".to_string(), 1)));
            assert!(seen.contains(&("Q845".to_string(), 2)));
        }

        // Resume over a journal that already holds (Q845, job 1): the
        // pair is neither run nor re-emitted nor re-committed.
        config.completed = Some(Arc::new(BTreeSet::from([("Q845".to_string(), 1u64)])));
        let resumed = run_campaign_with(&devices, &jobs, &config);
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].job_id, 2);
        assert_eq!(committed.lock().unwrap().len(), 3);
    }

    #[test]
    fn probed_device_rejoins_the_campaign() {
        // The device hangs on its first two jobs (earning quarantine),
        // then recovers. With a zero cool-down the third job runs as the
        // probe, succeeds, and clears the quarantine — the schedule is
        // exact on the shared logical clock.
        let devices = vec![device("Q845").unwrap()];
        let jobs: Vec<Campaign> = (1..=4)
            .map(|id| campaign(id, Task::MovementTracking, id))
            .collect();
        let config = CampaignConfig {
            master: MasterConfig {
                accept_timeout: Duration::from_millis(50),
                attempts: 1,
                clock: std::sync::Arc::new(crate::clock::LogicalClock::new()),
            },
            job_retries: 0,
            quarantine_after: 2,
            probation_cooldown_ms: Some(0),
            scripts: vec![DeviceScript {
                device: "Q845".into(),
                hang_jobs: 2,
            }],
            ..CampaignConfig::default()
        };
        let results = run_campaign_with(&devices, &jobs, &config);
        assert_eq!(results.len(), 4);
        let ok: Vec<bool> = results.iter().map(|r| r.outcome.is_ok()).collect();
        assert_eq!(ok, [false, false, true, true], "{results:?}");
        // Nothing was failed fast: the probe (job 3) reached the device.
        assert!(results
            .iter()
            .all(|r| !matches!(&r.outcome, Err(e) if e.contains("quarantined"))));
    }
}
