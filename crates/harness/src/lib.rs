//! # gaugenn-harness — master–slave on-device benchmark harness
//!
//! Reproduces the gaugeNN benchmarking platform of §3.3 (Figs. 2 and 3):
//! a master orchestrates phones connected over USB, pushes models and a
//! headless benchmark script via adb, cuts USB power through a
//! programmable switch so charging cannot pollute the Monsoon capture,
//! waits for the device's netcat-style TCP completion message, then
//! restores power and collects results.
//!
//! The "devices" here are simulated agents wrapping the `gaugenn-soc`
//! performance model and `gaugenn-power` energy substrate, but the
//! *orchestration* is real: a TCP listener on the master, a device thread
//! that connects back, adb-style push/pull gated on the USB data channel,
//! and text-framed job/result files.
//!
//! * [`job`] — job specs and result files (text-framed, adb-pullable).
//! * [`adb`] — the adb transport and on-device file system stand-in.
//! * [`clock`] — the injectable time source the watchdog deadlines run
//!   on (wall clock in production, logical clock in tests).
//! * [`device`] — the device agent: state assertions, warm-up runs, timed
//!   runs, completion notification.
//! * [`master`] — single-device orchestration (the Fig. 3 workflow).
//! * [`campaign`] — multi-device fan-out with crossbeam work queues.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adb;
pub mod campaign;
pub mod clock;
pub mod device;
pub mod job;
pub mod master;

pub use campaign::{
    run_campaign, run_campaign_with, Campaign, CampaignConfig, CampaignResult, DeviceScript,
};
pub use clock::{Clock, LogicalClock, WallClock};
pub use job::{JobSpec, JobResult};
pub use master::{Master, MasterConfig};

/// Errors from the harness.
#[derive(Debug)]
pub enum HarnessError {
    /// Socket failure.
    Io(std::io::Error),
    /// adb operation attempted without a data channel.
    AdbUnreachable,
    /// Device-side failure (model incompatible with backend, bad state…).
    Device(String),
    /// Job/result file framing problem.
    Format(String),
    /// The watchdog deadline expired before the device phoned home.
    Timeout(String),
}

impl HarnessError {
    /// Whether the same job may succeed on retry: watchdog timeouts, IO
    /// hiccups and a dead adb link are transient (the device may recover
    /// after a power-cycle); device-side rejections and framing errors
    /// will fail identically every time.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            HarnessError::Timeout(_) | HarnessError::Io(_) | HarnessError::AdbUnreachable
        )
    }
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Io(e) => write!(f, "io error: {e}"),
            HarnessError::AdbUnreachable => write!(f, "adb unreachable (usb data channel off)"),
            HarnessError::Device(r) => write!(f, "device error: {r}"),
            HarnessError::Format(r) => write!(f, "format error: {r}"),
            HarnessError::Timeout(r) => write!(f, "watchdog timeout: {r}"),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> Self {
        HarnessError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, HarnessError>;
