//! The device agent: the "unattended, headless script that runs on the
//! device upon disconnection of the USB power" (§3.3).
//!
//! Its lifecycle mirrors Fig. 3 exactly: ① wait until USB power is off;
//! ② run warm-up inferences; ③ run the measured inferences with sleeps in
//! between; ④ turn WiFi on and notify the master over TCP.

use crate::adb::DeviceEndpoint;
use crate::clock::{Clock, WallClock};
use crate::job::{JobResult, JobSpec};
use crate::{HarnessError, Result};
use gaugenn_dnn::exec::Executor;
use gaugenn_dnn::trace::trace_graph_batched;
use gaugenn_power::monsoon::PowerMonitor;
use gaugenn_power::measure_inference;
use gaugenn_soc::thermal::ThermalState;
use gaugenn_soc::DeviceSpec;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Conventional on-device paths.
pub const JOB_PATH: &str = "/data/local/tmp/gauge/job.cfg";
/// Result file the master pulls after completion.
pub const RESULT_PATH: &str = "/data/local/tmp/gauge/result.txt";
/// Directory models are pushed to.
pub const MODEL_DIR: &str = "/data/local/tmp/gauge/models";

/// A simulated device under test.
pub struct DeviceAgent {
    /// Hardware spec (Table 1 row).
    pub spec: DeviceSpec,
    /// Shared endpoint (file system + USB + state).
    pub endpoint: DeviceEndpoint,
    /// Thermal state carried across jobs.
    pub thermal: ThermalState,
    /// Seed for measurement noise.
    pub noise_seed: u64,
    /// Scripted-fault knob: for this many upcoming jobs the agent "hangs"
    /// — it returns without ever phoning the master back, so the master's
    /// watchdog must fire. Zero (the default) means behave normally.
    pub hang_jobs_remaining: u32,
    /// Time source for the power-off poll deadline. Tests share a
    /// [`LogicalClock`](crate::clock::LogicalClock) with the master so
    /// watchdog interplay is reproducible.
    pub clock: Arc<dyn Clock>,
}

impl DeviceAgent {
    /// A cool device plugged in over USB.
    pub fn new(spec: DeviceSpec) -> DeviceAgent {
        DeviceAgent {
            spec,
            endpoint: DeviceEndpoint::new(),
            thermal: ThermalState::cool(),
            noise_seed: 0xD17E,
            hang_jobs_remaining: 0,
            clock: Arc::new(WallClock),
        }
    }

    /// Run the headless benchmark loop once: wait for power-off, execute
    /// the pushed job, write results, notify `master_addr` over TCP.
    ///
    /// Blocks until USB power is observed off or `poll_timeout` expires.
    pub fn run_headless(&mut self, master_addr: SocketAddr, poll_timeout: Duration) -> Result<()> {
        // Scripted hang: the agent dies silently — no completion message,
        // no result file — and the master's watchdog has to notice.
        if self.hang_jobs_remaining > 0 {
            self.hang_jobs_remaining = self.hang_jobs_remaining.saturating_sub(1);
            return Err(HarnessError::Device(
                "scripted hang: agent never phoned home".into(),
            ));
        }
        // ① Wait until the USB power channel goes dark.
        let deadline_ms = self.clock.now_ms() + poll_timeout.as_millis() as u64;
        while self.endpoint.usb().power_on {
            if self.clock.now_ms() > deadline_ms {
                return Err(HarnessError::Device("usb power never went off".into()));
            }
            self.clock.sleep_ms(1);
        }
        // The measurement gate: exactly the physical constraint the YKUSH
        // exists to enforce.
        self.endpoint
            .usb()
            .assert_measurable()
            .map_err(|e| HarnessError::Device(e.to_string()))?;

        let job_bytes = self
            .endpoint
            .read_local(JOB_PATH)
            .ok_or_else(|| HarnessError::Device("no job pushed".into()))?;
        let job = JobSpec::from_text(&String::from_utf8_lossy(&job_bytes))?;
        let result = self.execute(&job);

        // ④ Turn WiFi back on and send the netcat-style completion line.
        self.endpoint.set_state(|s| s.wifi_on = true);
        match &result {
            Ok(r) => self
                .endpoint
                .write_local(RESULT_PATH, r.to_text().into_bytes()),
            Err(e) => self
                .endpoint
                .write_local(RESULT_PATH, format!("error={e}\n").into_bytes()),
        }
        let mut stream = TcpStream::connect(master_addr)?;
        stream.set_nodelay(true)?;
        let status = if result.is_ok() { "DONE" } else { "FAIL" };
        writeln!(stream, "{status} {}", job.id)?;
        Ok(())
    }

    /// Execute a job against the SoC/power model (②–③ of the workflow).
    pub fn execute(&mut self, job: &JobSpec) -> Result<JobResult> {
        let model_path = format!("{MODEL_DIR}/{}", job.model_file);
        let model_bytes = self
            .endpoint
            .read_local(&model_path)
            .ok_or_else(|| HarnessError::Device(format!("model not pushed: {model_path}")))?;
        // The device runs whatever bytes it was given — so it must parse
        // and validate them like a real interpreter would.
        let graph = decode_model(&job.model_file, &model_bytes)?;
        let trace = trace_graph_batched(&graph, job.batch)
            .map_err(|e| HarnessError::Device(e.to_string()))?;

        if job.verify_outputs {
            let ex = Executor::new(&graph).map_err(|e| HarnessError::Device(e.to_string()))?;
            let out = ex
                .run_random(job.batch, self.noise_seed)
                .map_err(|e| HarnessError::Device(e.to_string()))?;
            if out.iter().any(|t| t.data.iter().any(|v| !v.is_finite())) {
                return Err(HarnessError::Device("non-finite model output".into()));
            }
        }

        let mut latencies = Vec::with_capacity(job.runs as usize);
        let mut energies = Vec::with_capacity(job.runs as usize);
        let mut power_acc = 0.0;
        // ② Warm-ups: first runs are slower (cold caches); they heat the
        // die but are not recorded.
        for w in 0..job.warmups {
            let monitor = PowerMonitor::new(self.noise_seed ^ (job.id << 8) ^ w as u64);
            let rep = measure_inference(&self.spec, job.backend, &trace, &self.thermal, &monitor)
                .map_err(|e| HarnessError::Device(e.to_string()))?;
            let cold_factor = 1.0 + 0.5 / (w as f64 + 1.0);
            self.thermal.step(
                &self.spec,
                rep.avg_power_w,
                rep.latency_ms * cold_factor / 1e3,
            );
        }
        // ③ Measured runs with inter-run sleeps.
        for r in 0..job.runs {
            let monitor =
                PowerMonitor::new(self.noise_seed ^ (job.id << 8) ^ (0x1000 + r) as u64);
            let rep = measure_inference(&self.spec, job.backend, &trace, &self.thermal, &monitor)
                .map_err(|e| HarnessError::Device(e.to_string()))?;
            latencies.push(rep.latency_ms);
            energies.push(rep.energy_mj);
            power_acc += rep.avg_power_w;
            self.thermal
                .step(&self.spec, rep.avg_power_w, rep.latency_ms / 1e3);
            // Inter-run sleep cools the die (idle power only).
            self.thermal.step(
                &self.spec,
                self.spec.soc.idle_power_w,
                job.sleep_ms as f64 / 1e3,
            );
        }
        Ok(JobResult {
            job_id: job.id,
            device: self.spec.name.to_string(),
            latencies_ms: latencies,
            energies_mj: energies,
            avg_power_w: power_acc / job.runs.max(1) as f64,
            final_temp_c: self.thermal.temp_c,
        })
    }
}

/// Decode pushed model bytes via signature validation (the device-side
/// interpreter rejects what it cannot load).
fn decode_model(file_name: &str, bytes: &[u8]) -> Result<gaugenn_dnn::Graph> {
    let validated = gaugenn_modelfmt::validate(file_name, bytes)
        .ok_or_else(|| HarnessError::Device(format!("'{file_name}' failed validation")))?;
    gaugenn_modelfmt::decode(
        validated.framework,
        &[(file_name.to_string(), bytes.to_vec())],
    )
    .map_err(|e| HarnessError::Device(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_modelfmt::Framework;
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::spec::device;
    use gaugenn_soc::Backend;

    fn push_model(agent: &DeviceAgent, task: Task, seed: u64) -> String {
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        let art = gaugenn_modelfmt::encode(&g, Framework::TfLite).unwrap();
        let (name, bytes) = &art.files[0];
        agent
            .endpoint
            .write_local(&format!("{MODEL_DIR}/{name}"), bytes.clone());
        name.clone()
    }

    #[test]
    fn execute_produces_measurements() {
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        let model = push_model(&agent, Task::MovementTracking, 1);
        let job = JobSpec {
            verify_outputs: true,
            ..JobSpec::new(1, model, Backend::Cpu(ThreadConfig::unpinned(4)))
        };
        let r = agent.execute(&job).unwrap();
        assert_eq!(r.latencies_ms.len(), 10);
        assert_eq!(r.energies_mj.len(), 10);
        assert!(r.mean_latency_ms() > 0.0);
        assert!(r.avg_power_w > 0.0);
        assert!(r.final_temp_c >= 25.0);
    }

    #[test]
    fn missing_model_is_an_error() {
        let mut agent = DeviceAgent::new(device("A20").unwrap());
        let job = JobSpec::new(2, "ghost.tflite", Backend::Cpu(ThreadConfig::unpinned(4)));
        assert!(agent.execute(&job).is_err());
    }

    #[test]
    fn corrupted_model_rejected_by_device() {
        let agent0 = DeviceAgent::new(device("A20").unwrap());
        let model = push_model(&agent0, Task::MovementTracking, 3);
        // Corrupt the pushed bytes.
        let path = format!("{MODEL_DIR}/{model}");
        let mut bytes = agent0.endpoint.read_local(&path).unwrap();
        for b in bytes.iter_mut() {
            *b ^= 0x5A;
        }
        agent0.endpoint.write_local(&path, bytes);
        let mut agent = agent0;
        let job = JobSpec::new(3, model, Backend::Cpu(ThreadConfig::unpinned(4)));
        assert!(agent.execute(&job).is_err());
    }

    #[test]
    fn incompatible_backend_fails_cleanly() {
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        let model = push_model(&agent, Task::AutoComplete, 4); // LSTM model
        let job = JobSpec::new(4, model, Backend::Snpe(gaugenn_soc::SnpeTarget::Dsp));
        let err = agent.execute(&job).unwrap_err();
        assert!(err.to_string().contains("does not support"), "{err}");
    }

    #[test]
    fn repeated_jobs_heat_the_device() {
        let mut agent = DeviceAgent::new(device("S21").unwrap());
        let g = build_for_task(Task::SemanticSegmentation, 5, SizeClass::Medium, true).graph;
        let art = gaugenn_modelfmt::encode(&g, Framework::TfLite).unwrap();
        let (name, bytes) = &art.files[0];
        agent
            .endpoint
            .write_local(&format!("{MODEL_DIR}/{name}"), bytes.clone());
        let job = JobSpec {
            runs: 50,
            sleep_ms: 0,
            ..JobSpec::new(5, name.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
        };
        let r = agent.execute(&job).unwrap();
        assert!(r.final_temp_c > 25.15, "temp {}", r.final_temp_c);
    }
}
