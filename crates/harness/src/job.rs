//! Benchmark job specifications and result files.
//!
//! Jobs and results cross the adb boundary as text files — the same way
//! the paper's headless on-device script consumes a config and leaves a
//! results file for the master to pull.

use crate::{HarnessError, Result};
use gaugenn_soc::sched::ThreadConfig;
use gaugenn_soc::{Backend, SnpeTarget};

/// One benchmark job (§3.3: "a configurable amount of warmup inferences …
/// the actual benchmark inferences with a configurable inter-experiment
/// sleep period").
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id.
    pub id: u64,
    /// Model file name on the device (under the push directory).
    pub model_file: String,
    /// Backend to execute on.
    pub backend: Backend,
    /// Batch size per inference.
    pub batch: usize,
    /// Warm-up inferences (cold-cache outlier removal).
    pub warmups: u32,
    /// Measured inferences.
    pub runs: u32,
    /// Sleep between runs, milliseconds (simulated time).
    pub sleep_ms: u32,
    /// Execute a real reference-interpreter forward pass per measured run
    /// (tests only; expensive for big models).
    pub verify_outputs: bool,
}

impl JobSpec {
    /// Conventional defaults: 3 warmups, 10 runs, 50 ms sleeps.
    pub fn new(id: u64, model_file: impl Into<String>, backend: Backend) -> JobSpec {
        JobSpec {
            id,
            model_file: model_file.into(),
            backend,
            batch: 1,
            warmups: 3,
            runs: 10,
            sleep_ms: 50,
            verify_outputs: false,
        }
    }

    /// Serialise to the on-device config file format.
    pub fn to_text(&self) -> String {
        format!(
            "job={}\nmodel={}\nbackend={}\nbatch={}\nwarmups={}\nruns={}\nsleep_ms={}\nverify={}\n",
            self.id,
            self.model_file,
            backend_token(&self.backend),
            self.batch,
            self.warmups,
            self.runs,
            self.sleep_ms,
            self.verify_outputs,
        )
    }

    /// Parse the on-device config file format.
    pub fn from_text(text: &str) -> Result<JobSpec> {
        let get = |key: &str| -> Result<&str> {
            text.lines()
                .find_map(|l| l.strip_prefix(key))
                .ok_or_else(|| HarnessError::Format(format!("job file missing '{key}'")))
        };
        Ok(JobSpec {
            id: parse(get("job=")?)?,
            model_file: get("model=")?.to_string(),
            backend: parse_backend(get("backend=")?)?,
            batch: parse(get("batch=")?)?,
            warmups: parse(get("warmups=")?)?,
            runs: parse(get("runs=")?)?,
            sleep_ms: parse(get("sleep_ms=")?)?,
            verify_outputs: get("verify=")? == "true",
        })
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T> {
    s.parse()
        .map_err(|_| HarnessError::Format(format!("bad numeric field '{s}'")))
}

fn backend_token(b: &Backend) -> String {
    match b {
        Backend::Cpu(c) => format!("cpu:{}", c.label()),
        Backend::Xnnpack(c) => format!("xnnpack:{}", c.label()),
        Backend::Nnapi => "nnapi".into(),
        Backend::Gpu => "gpu".into(),
        Backend::Snpe(SnpeTarget::Cpu) => "snpe-cpu".into(),
        Backend::Snpe(SnpeTarget::Gpu) => "snpe-gpu".into(),
        Backend::Snpe(SnpeTarget::Dsp) => "snpe-dsp".into(),
    }
}

fn parse_backend(s: &str) -> Result<Backend> {
    let thread_cfg = |label: &str| -> Result<ThreadConfig> {
        if let Some((t, a)) = label.split_once('a') {
            Ok(ThreadConfig::pinned(parse(t)?, parse(a)?))
        } else {
            Ok(ThreadConfig::unpinned(parse(label)?))
        }
    };
    Ok(match s {
        "nnapi" => Backend::Nnapi,
        "gpu" => Backend::Gpu,
        "snpe-cpu" => Backend::Snpe(SnpeTarget::Cpu),
        "snpe-gpu" => Backend::Snpe(SnpeTarget::Gpu),
        "snpe-dsp" => Backend::Snpe(SnpeTarget::Dsp),
        other => {
            let (kind, label) = other
                .split_once(':')
                .ok_or_else(|| HarnessError::Format(format!("bad backend '{other}'")))?;
            match kind {
                "cpu" => Backend::Cpu(thread_cfg(label)?),
                "xnnpack" => Backend::Xnnpack(thread_cfg(label)?),
                _ => return Err(HarnessError::Format(format!("bad backend '{other}'"))),
            }
        }
    })
}

/// Measured results of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id.
    pub job_id: u64,
    /// Device name.
    pub device: String,
    /// Per-run latency, milliseconds.
    pub latencies_ms: Vec<f64>,
    /// Per-run energy, millijoules.
    pub energies_mj: Vec<f64>,
    /// Mean power across runs, watts.
    pub avg_power_w: f64,
    /// Die temperature at the end of the job, °C.
    pub final_temp_c: f64,
}

impl JobResult {
    /// Mean latency over the measured runs.
    pub fn mean_latency_ms(&self) -> f64 {
        mean(&self.latencies_ms)
    }

    /// Mean energy over the measured runs.
    pub fn mean_energy_mj(&self) -> f64 {
        mean(&self.energies_mj)
    }

    /// Serialise to the on-device results file format.
    pub fn to_text(&self) -> String {
        let lat: Vec<String> = self.latencies_ms.iter().map(|v| format!("{v:.6}")).collect();
        let en: Vec<String> = self.energies_mj.iter().map(|v| format!("{v:.6}")).collect();
        format!(
            "job={}\ndevice={}\nlat_ms={}\nenergy_mj={}\navg_power_w={:.6}\nfinal_temp_c={:.3}\n",
            self.job_id,
            self.device,
            lat.join(","),
            en.join(","),
            self.avg_power_w,
            self.final_temp_c,
        )
    }

    /// Parse the results file format.
    pub fn from_text(text: &str) -> Result<JobResult> {
        let get = |key: &str| -> Result<&str> {
            text.lines()
                .find_map(|l| l.strip_prefix(key))
                .ok_or_else(|| HarnessError::Format(format!("result file missing '{key}'")))
        };
        let list = |s: &str| -> Result<Vec<f64>> {
            if s.is_empty() {
                return Ok(vec![]);
            }
            s.split(',').map(parse::<f64>).collect()
        };
        Ok(JobResult {
            job_id: parse(get("job=")?)?,
            device: get("device=")?.to_string(),
            latencies_ms: list(get("lat_ms=")?)?,
            energies_mj: list(get("energy_mj=")?)?,
            avg_power_w: parse(get("avg_power_w=")?)?,
            final_temp_c: parse(get("final_temp_c=")?)?,
        })
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_roundtrip_all_backends() {
        let backends = [
            Backend::Cpu(ThreadConfig::unpinned(4)),
            Backend::Cpu(ThreadConfig::pinned(4, 2)),
            Backend::Xnnpack(ThreadConfig::unpinned(2)),
            Backend::Nnapi,
            Backend::Gpu,
            Backend::Snpe(SnpeTarget::Cpu),
            Backend::Snpe(SnpeTarget::Gpu),
            Backend::Snpe(SnpeTarget::Dsp),
        ];
        for (i, b) in backends.into_iter().enumerate() {
            let spec = JobSpec {
                batch: 5,
                verify_outputs: true,
                ..JobSpec::new(i as u64, "m.tflite", b)
            };
            let back = JobSpec::from_text(&spec.to_text()).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn result_roundtrip() {
        let r = JobResult {
            job_id: 9,
            device: "Q845".into(),
            latencies_ms: vec![10.5, 11.25, 10.75],
            energies_mj: vec![80.0, 81.5],
            avg_power_w: 7.2,
            final_temp_c: 41.5,
        };
        let back = JobResult::from_text(&r.to_text()).unwrap();
        assert_eq!(back.job_id, 9);
        assert_eq!(back.latencies_ms.len(), 3);
        assert!((back.mean_latency_ms() - r.mean_latency_ms()).abs() < 1e-9);
        assert!((back.avg_power_w - 7.2).abs() < 1e-9);
    }

    #[test]
    fn empty_runs_roundtrip() {
        let r = JobResult {
            job_id: 1,
            device: "A20".into(),
            latencies_ms: vec![],
            energies_mj: vec![],
            avg_power_w: 0.0,
            final_temp_c: 25.0,
        };
        let back = JobResult::from_text(&r.to_text()).unwrap();
        assert!(back.latencies_ms.is_empty());
        assert_eq!(back.mean_latency_ms(), 0.0);
    }

    #[test]
    fn malformed_files_rejected() {
        assert!(JobSpec::from_text("nonsense").is_err());
        assert!(JobResult::from_text("job=1\n").is_err());
        assert!(JobSpec::from_text("job=x\nmodel=m\nbackend=gpu\nbatch=1\nwarmups=1\nruns=1\nsleep_ms=0\nverify=false\n").is_err());
    }
}
