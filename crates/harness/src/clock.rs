//! Injectable time source for the harness watchdogs.
//!
//! The master's completion-wait deadline and the device agent's
//! power-off poll both used to read `Instant::now()` directly, which
//! made watchdog behaviour (how many poll iterations before a timeout,
//! how much "time" a hung device burns) depend on host scheduling. A
//! [`Clock`] decouples them: production runs keep the default
//! [`WallClock`], tests inject a [`LogicalClock`] whose time advances
//! only when someone sleeps on it, so a scripted hang times out after an
//! exact, reproducible number of logical milliseconds.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A monotonic millisecond clock the watchdogs run on.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Milliseconds since an arbitrary fixed origin.
    fn now_ms(&self) -> u64;
    /// Let `ms` milliseconds pass (really, for a wall clock; logically,
    /// for a test clock — which must still yield so other threads run).
    fn sleep_ms(&self, ms: u64);
}

/// The production clock: real time, anchored at first use.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

/// Process-wide origin so `now_ms` is monotone across clock instances.
static EPOCH: OnceLock<Instant> = OnceLock::new();

impl Clock for WallClock {
    fn now_ms(&self) -> u64 {
        // The one sanctioned wall-time read in the harness: every other
        // deadline computation goes through a `Clock`.
        let epoch = *EPOCH.get_or_init(Instant::now); // gaugelint: deterministic-via(clock) — WallClock is the Clock impl itself; deterministic runs inject SimClock
        epoch.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// A deterministic clock for tests: time advances only via [`Clock::sleep_ms`]
/// (or [`LogicalClock::advance`]), never on its own. Sleeping also yields
/// the OS thread so peers sharing the clock can make progress.
#[derive(Debug, Default)]
pub struct LogicalClock {
    now: AtomicU64,
}

impl LogicalClock {
    /// A clock at t = 0.
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Advance the clock without sleeping.
    pub fn advance(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
    }
}

impl Clock for LogicalClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::Relaxed);
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock;
        let a = c.now_ms();
        c.sleep_ms(2);
        assert!(c.now_ms() >= a + 2);
    }

    #[test]
    fn logical_clock_only_moves_when_told() {
        let c = LogicalClock::new();
        assert_eq!(c.now_ms(), 0);
        c.sleep_ms(5);
        c.advance(10);
        assert_eq!(c.now_ms(), 15);
    }

    #[test]
    fn logical_clock_shared_across_threads() {
        let c = Arc::new(LogicalClock::new());
        let c2 = Arc::clone(&c);
        std::thread::spawn(move || c2.sleep_ms(7))
            .join()
            .expect("sleeper");
        assert_eq!(c.now_ms(), 7);
    }
}
