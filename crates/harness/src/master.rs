//! The master: single-device orchestration of the Fig. 3 workflow.
//!
//! For each job the master ① pushes the model and job file over adb and
//! asserts the device state, ② launches the headless agent (a thread),
//! ③ cuts USB power via the switch board, ④ waits for the device's TCP
//! completion message on its listener, ⑤ restores power, pulls the result
//! file and cleans up.
//!
//! Step ④ runs under a watchdog: an unattended rack cannot afford one hung
//! phone to stall a multi-day campaign, so the completion wait carries a
//! deadline. When it expires the master power-cycles the device through
//! the USB switch, hard-reboots it, re-asserts the benchmark state and
//! retries the job up to [`MasterConfig::attempts`] times before giving up
//! with [`HarnessError::Timeout`]. Stale completion messages from a
//! previous (timed-out) attempt are drained before each new attempt so the
//! listener can never hand an old "DONE" to a new job.

use crate::adb::Adb;
use crate::clock::{Clock, WallClock};
use crate::device::{DeviceAgent, JOB_PATH, MODEL_DIR, RESULT_PATH};
use crate::job::{JobResult, JobSpec};
use crate::{HarnessError, Result};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Watchdog/retry knobs for one master.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Deadline for the device's completion message per attempt.
    pub accept_timeout: Duration,
    /// Total attempts per job (first try included). Must be ≥ 1.
    pub attempts: u32,
    /// Time source the watchdog deadline runs on. Production uses the
    /// default [`WallClock`]; tests inject a
    /// [`LogicalClock`](crate::clock::LogicalClock) for reproducible
    /// timeout behaviour.
    pub clock: Arc<dyn Clock>,
}

impl Default for MasterConfig {
    fn default() -> Self {
        MasterConfig {
            accept_timeout: Duration::from_secs(30),
            attempts: 3,
            clock: Arc::new(WallClock),
        }
    }
}

/// The benchmark master for one device.
pub struct Master {
    listener: TcpListener,
    addr: SocketAddr,
    config: MasterConfig,
}

impl Master {
    /// Bind the completion listener on an ephemeral loopback port, with
    /// the default watchdog configuration.
    pub fn new() -> Result<Master> {
        Master::with_config(MasterConfig::default())
    }

    /// Bind with explicit watchdog/retry knobs.
    pub fn with_config(config: MasterConfig) -> Result<Master> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        // The watchdog polls the listener, so it stays nonblocking for life.
        listener.set_nonblocking(true)?;
        Ok(Master {
            listener,
            addr,
            config,
        })
    }

    /// Completion-listener address the device will netcat to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The watchdog/retry configuration.
    pub fn config(&self) -> &MasterConfig {
        &self.config
    }

    /// Run one job on one device agent, retrying through watchdog
    /// timeouts (power-cycle + reboot between attempts). Device-side
    /// failures are *not* retried — a model the device rejects once will
    /// be rejected every time.
    ///
    /// `model_files` are `(file_name, bytes)` pairs to push (split formats
    /// push several files).
    pub fn run_job(
        &self,
        agent: &mut DeviceAgent,
        job: &JobSpec,
        model_files: &[(String, Vec<u8>)],
    ) -> Result<JobResult> {
        let attempts = self.config.attempts.max(1);
        let mut last = None;
        for attempt in 1..=attempts {
            match self.run_job_once(agent, job, model_files) {
                Ok(r) => return Ok(r),
                Err(e @ HarnessError::Timeout(_)) => {
                    // Hung device: power-cycle and reboot it, then retry.
                    agent.endpoint.usb_power_restore();
                    agent.endpoint.hard_reboot();
                    last = Some(e);
                }
                Err(e) => return Err(e),
            }
            let _ = attempt;
        }
        Err(last.unwrap_or_else(|| {
            HarnessError::Timeout(format!("job {} never completed", job.id))
        }))
    }

    /// Eat completion messages left over from a previous timed-out
    /// attempt, so the next accept cannot pair an old "DONE" with a new
    /// job. The listener is nonblocking, so this returns immediately once
    /// the backlog is empty.
    fn drain_stale_completions(&self) {
        while let Ok((stream, _)) = self.listener.accept() {
            // Read and discard whatever the stale agent sent.
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
            let mut sink = String::new();
            let _ = BufReader::new(stream).read_line(&mut sink);
        }
    }

    /// Accept the completion connection under the watchdog deadline
    /// (milliseconds on the configured clock).
    fn accept_with_deadline(&self, deadline_ms: u64) -> Result<TcpStream> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.config.clock.now_ms() > deadline_ms {
                        return Err(HarnessError::Timeout(format!(
                            "no completion message within {:?}",
                            self.config.accept_timeout
                        )));
                    }
                    self.config.clock.sleep_ms(1);
                }
                Err(e) => return Err(HarnessError::Io(e)),
            }
        }
    }

    /// One attempt of the Fig. 3 workflow. On a watchdog timeout the
    /// agent is always recovered (joined) and USB power restored before
    /// the error propagates, so the caller can retry immediately.
    fn run_job_once(
        &self,
        agent: &mut DeviceAgent,
        job: &JobSpec,
        model_files: &[(String, Vec<u8>)],
    ) -> Result<JobResult> {
        let endpoint = agent.endpoint.clone();
        let adb = Adb::connect(endpoint.clone());
        self.drain_stale_completions();

        // ① Push dependencies and assert device state (USB power is on).
        endpoint.usb_power_restore();
        for (name, bytes) in model_files {
            adb.push(&format!("{MODEL_DIR}/{name}"), bytes.clone())?;
        }
        adb.push(JOB_PATH, job.to_text().into_bytes())?;
        adb.assert_benchmark_state()?;

        // ② Launch the headless agent thread, then ③ cut USB power.
        let master_addr = self.addr;
        let mut moved_agent = std::mem::replace(agent, DeviceAgent::new(agent.spec.clone()));
        let handle = std::thread::spawn(move || {
            let res = moved_agent.run_headless(master_addr, Duration::from_secs(10));
            (moved_agent, res)
        });
        endpoint.usb_power_off();

        // ④ Wait for the completion message, under the watchdog.
        let deadline_ms =
            self.config.clock.now_ms() + self.config.accept_timeout.as_millis() as u64;
        let stream = match self.accept_with_deadline(deadline_ms) {
            Ok(s) => s,
            Err(timeout) => {
                // Hung agent: restore power so the (possibly stuck) agent
                // thread can unblock, recover it, and report the timeout.
                endpoint.usb_power_restore();
                if let Ok((returned_agent, _)) = handle.join() {
                    *agent = returned_agent;
                }
                return Err(timeout);
            }
        };
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        let line = line.trim_end();

        // ⑤ Restore power, join the agent (keeping its thermal state),
        // pull results, clean up.
        endpoint.usb_power_restore();
        let (returned_agent, headless_result) = handle
            .join()
            .map_err(|_| HarnessError::Device("device agent panicked".into()))?;
        *agent = returned_agent;
        headless_result?;

        let result_bytes = adb.pull(RESULT_PATH)?;
        adb.rm(RESULT_PATH)?;
        adb.rm(JOB_PATH)?;
        for (name, _) in model_files {
            adb.rm(&format!("{MODEL_DIR}/{name}"))?;
        }

        let text = String::from_utf8_lossy(&result_bytes);
        if let Some(err) = text.strip_prefix("error=") {
            return Err(HarnessError::Device(err.trim().to_string()));
        }
        let expected = format!("DONE {}", job.id);
        if line != expected {
            return Err(HarnessError::Device(format!(
                "unexpected completion message '{line}', wanted '{expected}'"
            )));
        }
        JobResult::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_modelfmt::Framework;
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::spec::device;
    use gaugenn_soc::Backend;

    fn model_files(task: Task, seed: u64) -> Vec<(String, Vec<u8>)> {
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        gaugenn_modelfmt::encode(&g, Framework::TfLite).unwrap().files
    }

    #[test]
    fn full_workflow_roundtrip() {
        let master = Master::new().unwrap();
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        let files = model_files(Task::MovementTracking, 1);
        let job = JobSpec::new(
            42,
            files[0].0.clone(),
            Backend::Cpu(ThreadConfig::unpinned(4)),
        );
        let result = master.run_job(&mut agent, &job, &files).unwrap();
        assert_eq!(result.job_id, 42);
        assert_eq!(result.device, "Q845");
        assert_eq!(result.latencies_ms.len(), 10);
        // Device is back on USB power with WiFi restored.
        assert!(agent.endpoint.usb().power_on);
        assert!(agent.endpoint.state().wifi_on);
        // Files were cleaned up.
        assert!(agent.endpoint.read_local(RESULT_PATH).is_none());
    }

    #[test]
    fn sequential_jobs_share_thermal_history() {
        let master = Master::new().unwrap();
        let mut agent = DeviceAgent::new(device("S21").unwrap());
        let files = model_files(Task::SemanticSegmentation, 2);
        let mut temps = Vec::new();
        for id in 0..3 {
            let job = JobSpec {
                runs: 8,
                sleep_ms: 0,
                ..JobSpec::new(id, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
            };
            let r = master.run_job(&mut agent, &job, &files).unwrap();
            temps.push(r.final_temp_c);
        }
        assert!(
            temps[2] > temps[0],
            "continuous benchmarking should accumulate heat: {temps:?}"
        );
    }

    #[test]
    fn device_failure_is_reported() {
        let master = Master::new().unwrap();
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        let files = model_files(Task::AutoComplete, 3); // LSTM: DSP-incompatible
        let job = JobSpec::new(
            7,
            files[0].0.clone(),
            Backend::Snpe(gaugenn_soc::SnpeTarget::Dsp),
        );
        let err = master.run_job(&mut agent, &job, &files).unwrap_err();
        assert!(matches!(err, HarnessError::Device(_)), "{err}");
        // Device-side failures are deterministic, not watchdog events: no
        // power-cycle/reboot happened and the device is reachable again.
        assert_eq!(agent.endpoint.reboots(), 0);
        assert!(agent.endpoint.usb().power_on);
    }

    #[test]
    fn watchdog_recovers_a_hung_device() {
        let master = Master::with_config(MasterConfig {
            accept_timeout: Duration::from_millis(100),
            attempts: 3,
            ..MasterConfig::default()
        })
        .unwrap();
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        agent.hang_jobs_remaining = 1; // hang once, then behave
        let files = model_files(Task::MovementTracking, 6);
        let job = JobSpec::new(
            9,
            files[0].0.clone(),
            Backend::Cpu(ThreadConfig::unpinned(4)),
        );
        let result = master.run_job(&mut agent, &job, &files).unwrap();
        assert_eq!(result.job_id, 9);
        // The hang cost exactly one power-cycle + reboot.
        assert_eq!(agent.endpoint.reboots(), 1);
        assert!(agent.endpoint.usb().power_on);
    }

    #[test]
    fn watchdog_on_logical_clock_is_time_reproducible() {
        // With master and agent sharing a LogicalClock, a scripted hang
        // consumes an exact number of logical milliseconds: the accept
        // loop alone advances time, so each attempt burns deadline+1 ms.
        let run = || {
            let clock = Arc::new(crate::clock::LogicalClock::new());
            let master = Master::with_config(MasterConfig {
                accept_timeout: Duration::from_millis(250),
                attempts: 2,
                clock: clock.clone(),
            })
            .unwrap();
            let mut agent = DeviceAgent::new(device("Q855").unwrap());
            agent.clock = clock.clone();
            agent.hang_jobs_remaining = u32::MAX;
            let files = model_files(Task::KeywordDetection, 8);
            let job = JobSpec::new(
                13,
                files[0].0.clone(),
                Backend::Cpu(ThreadConfig::unpinned(4)),
            );
            let err = master.run_job(&mut agent, &job, &files).unwrap_err();
            assert!(matches!(err, HarnessError::Timeout(_)), "{err}");
            assert_eq!(agent.endpoint.reboots(), 2);
            clock.now_ms()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "watchdog must burn identical logical time");
        assert_eq!(a, 502, "two attempts × (250 ms deadline + 1 ms overrun)");
    }

    #[test]
    fn watchdog_gives_up_after_all_attempts() {
        let master = Master::with_config(MasterConfig {
            accept_timeout: Duration::from_millis(50),
            attempts: 2,
            ..MasterConfig::default()
        })
        .unwrap();
        let mut agent = DeviceAgent::new(device("Q855").unwrap());
        agent.hang_jobs_remaining = u32::MAX; // bricked for good
        let files = model_files(Task::KeywordDetection, 8);
        let job = JobSpec::new(
            11,
            files[0].0.clone(),
            Backend::Cpu(ThreadConfig::unpinned(4)),
        );
        let err = master.run_job(&mut agent, &job, &files).unwrap_err();
        assert!(matches!(err, HarnessError::Timeout(_)), "{err}");
        assert_eq!(agent.endpoint.reboots(), 2, "one reboot per attempt");
        // Even a permanently hung device is left powered for inspection.
        assert!(agent.endpoint.usb().power_on);
    }
}
