//! The master: single-device orchestration of the Fig. 3 workflow.
//!
//! For each job the master ① pushes the model and job file over adb and
//! asserts the device state, ② launches the headless agent (a thread),
//! ③ cuts USB power via the switch board, ④ waits for the device's TCP
//! completion message on its listener, ⑤ restores power, pulls the result
//! file and cleans up.

use crate::adb::Adb;
use crate::device::{DeviceAgent, JOB_PATH, MODEL_DIR, RESULT_PATH};
use crate::job::{JobResult, JobSpec};
use crate::{HarnessError, Result};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::time::Duration;

/// The benchmark master for one device.
pub struct Master {
    listener: TcpListener,
    addr: SocketAddr,
}

impl Master {
    /// Bind the completion listener on an ephemeral loopback port.
    pub fn new() -> Result<Master> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        Ok(Master { listener, addr })
    }

    /// Completion-listener address the device will netcat to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Run one job on one device agent, end to end.
    ///
    /// `model_files` are `(file_name, bytes)` pairs to push (split formats
    /// push several files).
    pub fn run_job(
        &self,
        agent: &mut DeviceAgent,
        job: &JobSpec,
        model_files: &[(String, Vec<u8>)],
    ) -> Result<JobResult> {
        let endpoint = agent.endpoint.clone();
        let adb = Adb::connect(endpoint.clone());

        // ① Push dependencies and assert device state (USB power is on).
        endpoint.usb_power_restore();
        for (name, bytes) in model_files {
            adb.push(&format!("{MODEL_DIR}/{name}"), bytes.clone())?;
        }
        adb.push(JOB_PATH, job.to_text().into_bytes())?;
        adb.assert_benchmark_state()?;

        // ② Launch the headless agent thread, then ③ cut USB power.
        let master_addr = self.addr;
        let mut moved_agent = std::mem::replace(agent, DeviceAgent::new(agent.spec.clone()));
        let handle = std::thread::spawn(move || {
            let res = moved_agent.run_headless(master_addr, Duration::from_secs(10));
            (moved_agent, res)
        });
        endpoint.usb_power_off();

        // ④ Wait for the completion message.
        self.listener
            .set_nonblocking(false)
            .map_err(HarnessError::Io)?;
        let (stream, _) = self.listener.accept()?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let mut line = String::new();
        BufReader::new(stream).read_line(&mut line)?;
        let line = line.trim_end();

        // ⑤ Restore power, join the agent (keeping its thermal state),
        // pull results, clean up.
        endpoint.usb_power_restore();
        let (returned_agent, headless_result) = handle
            .join()
            .map_err(|_| HarnessError::Device("device agent panicked".into()))?;
        *agent = returned_agent;
        headless_result?;

        let result_bytes = adb.pull(RESULT_PATH)?;
        adb.rm(RESULT_PATH)?;
        adb.rm(JOB_PATH)?;
        for (name, _) in model_files {
            adb.rm(&format!("{MODEL_DIR}/{name}"))?;
        }

        let text = String::from_utf8_lossy(&result_bytes);
        if let Some(err) = text.strip_prefix("error=") {
            return Err(HarnessError::Device(err.trim().to_string()));
        }
        let expected = format!("DONE {}", job.id);
        if line != expected {
            return Err(HarnessError::Device(format!(
                "unexpected completion message '{line}', wanted '{expected}'"
            )));
        }
        JobResult::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};
    use gaugenn_modelfmt::Framework;
    use gaugenn_soc::sched::ThreadConfig;
    use gaugenn_soc::spec::device;
    use gaugenn_soc::Backend;

    fn model_files(task: Task, seed: u64) -> Vec<(String, Vec<u8>)> {
        let g = build_for_task(task, seed, SizeClass::Small, true).graph;
        gaugenn_modelfmt::encode(&g, Framework::TfLite).unwrap().files
    }

    #[test]
    fn full_workflow_roundtrip() {
        let master = Master::new().unwrap();
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        let files = model_files(Task::MovementTracking, 1);
        let job = JobSpec::new(
            42,
            files[0].0.clone(),
            Backend::Cpu(ThreadConfig::unpinned(4)),
        );
        let result = master.run_job(&mut agent, &job, &files).unwrap();
        assert_eq!(result.job_id, 42);
        assert_eq!(result.device, "Q845");
        assert_eq!(result.latencies_ms.len(), 10);
        // Device is back on USB power with WiFi restored.
        assert!(agent.endpoint.usb().power_on);
        assert!(agent.endpoint.state().wifi_on);
        // Files were cleaned up.
        assert!(agent.endpoint.read_local(RESULT_PATH).is_none());
    }

    #[test]
    fn sequential_jobs_share_thermal_history() {
        let master = Master::new().unwrap();
        let mut agent = DeviceAgent::new(device("S21").unwrap());
        let files = model_files(Task::SemanticSegmentation, 2);
        let mut temps = Vec::new();
        for id in 0..3 {
            let job = JobSpec {
                runs: 8,
                sleep_ms: 0,
                ..JobSpec::new(id, files[0].0.clone(), Backend::Cpu(ThreadConfig::unpinned(4)))
            };
            let r = master.run_job(&mut agent, &job, &files).unwrap();
            temps.push(r.final_temp_c);
        }
        assert!(
            temps[2] > temps[0],
            "continuous benchmarking should accumulate heat: {temps:?}"
        );
    }

    #[test]
    fn device_failure_is_reported() {
        let master = Master::new().unwrap();
        let mut agent = DeviceAgent::new(device("Q845").unwrap());
        let files = model_files(Task::AutoComplete, 3); // LSTM: DSP-incompatible
        let job = JobSpec::new(
            7,
            files[0].0.clone(),
            Backend::Snpe(gaugenn_soc::SnpeTarget::Dsp),
        );
        let err = master.run_job(&mut agent, &job, &files).unwrap_err();
        assert!(matches!(err, HarnessError::Device(_)), "{err}");
        // Device recovered: power restored, adb reachable.
        assert!(agent.endpoint.usb().power_on);
    }
}
