//! Cloud ML API detection (§3.2, §6.4, Fig. 15).
//!
//! gaugeNN "automates the process of decompiling these binaries and
//! performs string matching on the smali files to detect known cloud DNN
//! framework calls", recognising Google Firebase, Google Cloud and Amazon
//! AWS ML services.

use gaugenn_apk::Apk;

/// A cloud ML provider family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Provider {
    /// Google Firebase ML.
    GoogleFirebase,
    /// Google Cloud AI APIs.
    GoogleCloud,
    /// Amazon AWS ML services.
    AmazonAws,
}

impl Provider {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            Provider::GoogleFirebase => "Google Firebase ML",
            Provider::GoogleCloud => "Google Cloud AI",
            Provider::AmazonAws => "Amazon AWS ML",
        }
    }

    /// Whether this is a Google-family API (the paper aggregates Firebase
    /// and Google Cloud as "Google AI services").
    pub const fn is_google(self) -> bool {
        matches!(self, Provider::GoogleFirebase | Provider::GoogleCloud)
    }
}

/// Known call-site patterns, in smali-flavoured form.
const PATTERNS: [(Provider, &str); 6] = [
    (Provider::GoogleFirebase, "com/google/firebase/ml"),
    (Provider::GoogleFirebase, "com.google.firebase.ml"),
    (Provider::GoogleCloud, "com/google/cloud/vision"),
    (Provider::GoogleCloud, "com.google.cloud."),
    (Provider::AmazonAws, "com/amazonaws/services"),
    (Provider::AmazonAws, "com.amazonaws.services"),
];

/// Scan smali text for cloud API call sites.
pub fn scan_smali(smali: &str) -> Vec<Provider> {
    let mut out: Vec<Provider> = PATTERNS
        .iter()
        .filter(|(_, pat)| smali.contains(pat))
        .map(|(p, _)| *p)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Decompile an APK's dex to smali and scan it.
pub fn scan_apk(apk: &Apk) -> Vec<Provider> {
    match apk.dex() {
        Ok(dex) => scan_smali(&dex.to_smali()),
        Err(_) => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_apk::apk::ApkBuilder;

    #[test]
    fn detects_each_provider() {
        let cases = [
            (
                "Lcom/google/firebase/ml/vision/FirebaseVision;",
                Provider::GoogleFirebase,
            ),
            (
                "Lcom/google/cloud/vision/v1/ImageAnnotatorClient;",
                Provider::GoogleCloud,
            ),
            (
                "Lcom/amazonaws/services/rekognition/AmazonRekognitionClient;",
                Provider::AmazonAws,
            ),
        ];
        for (class_ref, want) in cases {
            let smali = format!("    const-string v0, \"{class_ref}\"\n");
            assert_eq!(scan_smali(&smali), vec![want], "{class_ref}");
        }
    }

    #[test]
    fn multiple_providers_deduped_and_sorted() {
        let smali = "com/google/firebase/ml/x com/google/firebase/ml/y com/amazonaws/services/z";
        let found = scan_smali(smali);
        assert_eq!(found, vec![Provider::GoogleFirebase, Provider::AmazonAws]);
    }

    #[test]
    fn clean_code_yields_nothing() {
        assert!(scan_smali("const-string v0, \"android/widget/TextView\"").is_empty());
    }

    #[test]
    fn scan_through_real_apk() {
        let mut b = ApkBuilder::new("com.example.cloudy", 1);
        b.add_class_ref("com.google.firebase.ml.vision.FirebaseVision");
        let apk = Apk::parse(&b.finish().unwrap()).unwrap();
        assert_eq!(scan_apk(&apk), vec![Provider::GoogleFirebase]);
    }

    #[test]
    fn google_family_flag() {
        assert!(Provider::GoogleFirebase.is_google());
        assert!(Provider::GoogleCloud.is_google());
        assert!(!Provider::AmazonAws.is_google());
    }
}
