//! # gaugenn-analysis — offline analysis toolkit
//!
//! Everything gaugeNN computes *about* the corpus without running models on
//! devices (§3.2, §4):
//!
//! * [`md5`] — MD5 from the RFC 1321 specification; the paper
//!   md5-checksums models and per-layer weights for its uniqueness and
//!   fine-tuning analyses (§4.5). Checksum use only — never security.
//! * [`etl`] — an in-memory document index standing in for the paper's
//!   ElasticSearch instance ("for quick ETL analytics and cross-snapshot
//!   investigations", §3.1).
//! * [`dedup`] — model/weight checksum dedup, weight-sharing and
//!   layer-diff lineage detection (§4.5).
//! * [`classify`] — the rule-based task classifier standing in for the
//!   three-researcher majority vote of §4.4 (name hints, input/output
//!   dimensions, layer types), plus layer-composition aggregation (Fig. 6).
//! * [`cloudapi`] — smali string matching for Google Firebase / Google
//!   Cloud / AWS ML call sites (§3.2, Fig. 15).
//! * [`optim`] — the §6.1 optimisation census: clustering/pruning name
//!   prefixes, weight sparsity, quantisation adoption.
//! * [`stats`] — ECDF, Gaussian KDE, quantiles and least-squares line
//!   fits used throughout the figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod classify;
pub mod cloudapi;
pub mod dedup;
pub mod etl;
pub mod md5;
pub mod optim;
pub mod stats;

pub use classify::classify_graph;
pub use dedup::{model_checksum, DedupReport};
pub use md5::md5_hex;
