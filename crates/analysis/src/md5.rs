//! MD5 message digest, implemented from RFC 1321.
//!
//! Used exactly as the paper uses it: content fingerprinting for model and
//! per-layer weight dedup (§4.5). MD5 is cryptographically broken; nothing
//! here treats it as a security primitive.
//!
//! The hasher is streaming and block-at-a-time: [`Md5::update`] compresses
//! 64-byte blocks straight out of the caller's slice, so hashing an APK's
//! model files never copies the payload (the original implementation
//! cloned the whole message to pad it — an extra allocation and memcpy of
//! every model in the corpus, on what is now the analysis pool's hot
//! path). The four round groups are unrolled so the per-step `f`/`g`
//! selection is resolved at compile time. A byte-exact port of the old
//! scalar one-shot implementation is kept in [`reference`] and pinned
//! against the kernel by property tests.

/// Per-round shift amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9,
    14, 20, 5, 9, 14, 20, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 6, 10, 15,
    21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived constants.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613,
    0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193,
    0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d,
    0x02441453, 0xd8a1e681, 0xe7d3fbc8, 0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed,
    0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122,
    0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665, 0xf4292244,
    0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb,
    0xeb86d391,
];

/// Streaming MD5 state. Feed any number of [`Md5::update`] calls, then
/// [`Md5::finalize`]; the digest equals `md5` of the concatenated input.
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message bytes fed so far.
    len: u64,
    /// Carry buffer for a trailing partial block.
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

/// One compression round step, with `f` and `g` resolved at the call site.
macro_rules! md5_step {
    ($a:ident, $b:ident, $c:ident, $d:ident, $f:expr, $i:expr, $g:expr, $m:ident) => {
        let f = $f;
        let tmp = $d;
        $d = $c;
        $c = $b;
        $b = $b.wrapping_add(
            $a.wrapping_add(f)
                .wrapping_add(K[$i])
                .wrapping_add($m[$g])
                .rotate_left(S[$i]),
        );
        $a = tmp;
    };
}

impl Md5 {
    /// Fresh hasher.
    pub fn new() -> Md5 {
        Md5 {
            state: [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Compress one 64-byte block into the running state.
    fn compress(state: &mut [u32; 4], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        let mut i = 0;
        while i < 16 {
            md5_step!(a, b, c, d, (b & c) | (!b & d), i, i, m);
            i += 1;
        }
        while i < 32 {
            md5_step!(a, b, c, d, (d & b) | (!d & c), i, (5 * i + 1) % 16, m);
            i += 1;
        }
        while i < 48 {
            md5_step!(a, b, c, d, b ^ c ^ d, i, (3 * i + 5) % 16, m);
            i += 1;
        }
        while i < 64 {
            md5_step!(a, b, c, d, c ^ (b | !d), i, (7 * i) % 16, m);
            i += 1;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }

    /// Feed bytes; whole blocks compress directly from `data` with no copy.
    pub fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                return;
            }
            let buf = self.buf;
            Self::compress(&mut self.state, &buf);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            Self::compress(&mut self.state, block);
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Pad and return the 16-byte digest.
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding fits in at most two blocks: 0x80, zeros to 56 mod 64,
        // then the 64-bit little-endian bit length.
        let mut tail = [0u8; 128];
        tail[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        tail[self.buf_len] = 0x80;
        let tail_len = if self.buf_len < 56 { 64 } else { 128 };
        tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_le_bytes());
        for block in tail[..tail_len].chunks_exact(64) {
            Self::compress(&mut self.state, block);
        }
        let mut out = [0u8; 16];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Pad and return the digest as a lowercase hex string.
    pub fn finalize_hex(self) -> String {
        digest_hex(self.finalize())
    }
}

/// Compute the 16-byte MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut h = Md5::new();
    h.update(data);
    h.finalize()
}

/// MD5 digest as a lowercase hex string.
pub fn md5_hex(data: &[u8]) -> String {
    digest_hex(md5(data))
}

/// Render a digest as lowercase hex.
pub fn digest_hex(digest: [u8; 16]) -> String {
    let mut out = String::with_capacity(32);
    for b in digest {
        use std::fmt::Write;
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// The original scalar one-shot implementation (copy-and-pad, one fused
/// round loop), kept byte-for-byte so property tests can pin the block
/// kernel against it on arbitrary inputs.
pub mod reference {
    use super::{K, S};

    /// One-shot scalar MD5 of `data`.
    pub fn md5(data: &[u8]) -> [u8; 16] {
        let mut a0: u32 = 0x6745_2301;
        let mut b0: u32 = 0xefcd_ab89;
        let mut c0: u32 = 0x98ba_dcfe;
        let mut d0: u32 = 0x1032_5476;

        // Padding: 0x80, zeros, then the 64-bit little-endian bit length.
        let bit_len = (data.len() as u64).wrapping_mul(8);
        let mut msg = data.to_vec();
        msg.push(0x80);
        while msg.len() % 64 != 56 {
            msg.push(0);
        }
        msg.extend_from_slice(&bit_len.to_le_bytes());

        for chunk in msg.chunks_exact(64) {
            let mut m = [0u32; 16];
            for (i, w) in m.iter_mut().enumerate() {
                *w = u32::from_le_bytes([
                    chunk[4 * i],
                    chunk[4 * i + 1],
                    chunk[4 * i + 2],
                    chunk[4 * i + 3],
                ]);
            }
            let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
            for i in 0..64 {
                let (f, g) = match i / 16 {
                    0 => ((b & c) | (!b & d), i),
                    1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                    2 => (b ^ c ^ d, (3 * i + 5) % 16),
                    _ => (c ^ (b | !d), (7 * i) % 16),
                };
                let tmp = d;
                d = c;
                c = b;
                b = b.wrapping_add(
                    a.wrapping_add(f)
                        .wrapping_add(K[i])
                        .wrapping_add(m[g])
                        .rotate_left(S[i]),
                );
                a = tmp;
            }
            a0 = a0.wrapping_add(a);
            b0 = b0.wrapping_add(b);
            c0 = c0.wrapping_add(c);
            d0 = d0.wrapping_add(d);
        }

        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&a0.to_le_bytes());
        out[4..8].copy_from_slice(&b0.to_le_bytes());
        out[8..12].copy_from_slice(&c0.to_le_bytes());
        out[12..16].copy_from_slice(&d0.to_le_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1321_test_suite() {
        // The seven official test vectors from RFC 1321 appendix A.5.
        let vectors = [
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in vectors {
            assert_eq!(md5_hex(input.as_bytes()), want, "md5({input:?})");
            assert_eq!(digest_hex(reference::md5(input.as_bytes())), want);
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths straddling the 56-byte padding boundary must all work,
        // and the block kernel must agree with the reference scalar.
        for n in 0..200 {
            let data = vec![0xABu8; n];
            let h = md5_hex(&data);
            assert_eq!(h.len(), 32);
            assert_eq!(h, digest_hex(reference::md5(&data)), "len {n}");
            // Digest changes with one more byte.
            let mut data2 = data.clone();
            data2.push(0xAB);
            assert_ne!(h, md5_hex(&data2), "len {n}");
        }
    }

    #[test]
    fn streaming_split_points_match_oneshot() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 7 + 3) as u8).collect();
        let want = md5_hex(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 300, 511, 512] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize_hex(), want, "split at {split}");
        }
        // Many tiny updates.
        let mut h = Md5::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finalize_hex(), want);
    }

    #[test]
    fn binary_data() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(md5_hex(&data), "e2c865db4162bed963bfaa9ef6ac18f0");
    }
}
