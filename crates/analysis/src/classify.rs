//! Task classification and layer composition (§4.4, Fig. 6, Table 3).
//!
//! The paper's labelling was manual: "we manually looked into the naming,
//! input/output dimensions and layer types of the encountered DNN models
//! … across three ML researchers with a majority vote", identifying 91.9 %
//! of models, "with around 67 % having names which hint either the model,
//! task at hand or both". This module encodes the same three evidence
//! sources as rules: name hints first, then input/output-shape heuristics,
//! then layer-type structure.

use gaugenn_dnn::graph::LayerKind;
use gaugenn_dnn::shape::infer_shapes;
use gaugenn_dnn::task::{Modality, Task};
use gaugenn_dnn::tensor::{DType, Shape};
use gaugenn_dnn::Graph;
use std::collections::BTreeMap;

/// A classification with its evidence source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Classification {
    /// The assigned task.
    pub task: Task,
    /// What evidence drove the decision.
    pub evidence: Evidence,
}

/// Which of the three §4.4 evidence sources decided the label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Evidence {
    /// The model name carried a task hint.
    NameHint,
    /// Input/output dimensions decided it.
    IoDims,
    /// Layer structure decided it.
    Structure,
}

/// Classify a decoded model. Returns `None` for models none of the rules
/// can place (the paper's unidentified 8.1 %).
pub fn classify_graph(graph: &Graph) -> Option<Classification> {
    if let Some(task) = by_name(&graph.name) {
        return Some(Classification {
            task,
            evidence: Evidence::NameHint,
        });
    }
    let shapes = infer_shapes(graph).ok()?;
    let input = graph.nodes.iter().find_map(|n| match &n.kind {
        LayerKind::Input { shape, dtype } => Some((shape.clone(), *dtype)),
        _ => None,
    })?;
    if let Some(task) = by_io_dims(graph, &input, &shapes) {
        return Some(Classification {
            task,
            evidence: Evidence::IoDims,
        });
    }
    by_structure(graph, &input).map(|task| Classification {
        task,
        evidence: Evidence::Structure,
    })
}

fn by_name(name: &str) -> Option<Task> {
    let lower = name.to_ascii_lowercase();
    // Longest hints first so "autocomplete" wins over "auto".
    let mut hints: Vec<(Task, &str)> = Task::ALL.iter().map(|&t| (t, t.name_hint())).collect();
    hints.sort_by_key(|(_, h)| std::cmp::Reverse(h.len()));
    for (task, hint) in hints {
        // Token match to avoid "ar" firing inside "hair".
        let is_match = lower
            .split(|c: char| !c.is_ascii_alphanumeric())
            .any(|tok| tok == hint);
        if is_match {
            return Some(task);
        }
    }
    None
}

fn by_io_dims(graph: &Graph, input: &(Shape, DType), shapes: &[Shape]) -> Option<Task> {
    let (in_shape, in_dtype) = input;
    let outs: Vec<&Shape> = graph.outputs.iter().map(|&o| &shapes[o]).collect();
    match (in_shape.rank(), in_dtype) {
        // Token-id sequences are NLP.
        (2, DType::I32) => {
            let out = outs.first()?;
            Some(match out.channels() {
                c if c >= 1000 => Task::AutoComplete, // vocab-sized head
                3 => Task::SentimentPrediction,
                2 => Task::ContentFilter,
                _ => Task::TextClassification,
            })
        }
        // Rank-3 float sequences are sensor streams.
        (3, DType::F32) => Some(Task::CrashDetection),
        (2, DType::F32) => Some(Task::MovementTracking),
        (4, DType::F32) => {
            let (h, w, c) = in_shape.hwc()?;
            if c == 1 {
                // Single-channel planes: spectrograms or text-line crops.
                let out = outs.first()?;
                return Some(match out.channels() {
                    521 => Task::SoundRecognition,
                    29 => Task::SpeechRecognition,
                    12 if h >= 40 => Task::KeywordDetection,
                    96 => Task::TextRecognition,
                    _ if w > 2 * h => Task::TextRecognition, // wide text strip
                    _ => Task::SoundRecognition,
                });
            }
            // RGB vision. Two output heads of matched spatial size =
            // detector (class scores + box regressors).
            if outs.len() == 2 {
                let boxy = outs
                    .iter()
                    .any(|o| o.rank() == 4 && o.channels() % 4 == 0);
                if boxy {
                    // BlazeFace-style heads are tiny (2 anchors); FSSD heads
                    // are wide (6 anchors × 21 classes).
                    let max_c = outs.iter().map(|o| o.channels()).max()?;
                    return Some(if max_c <= 40 {
                        Task::FaceDetection
                    } else {
                        Task::ObjectDetection
                    });
                }
            }
            let out = outs.first()?;
            if out.rank() == 4 {
                let (oh, ow, oc) = out.hwc()?;
                if oh == h && ow == w && oc <= 4 {
                    return Some(Task::SemanticSegmentation);
                }
                if oc == 17 {
                    return Some(Task::PoseEstimation);
                }
            }
            if out.rank() == 2 {
                let units = out.channels();
                if units >= 3 * 400 && units % 3 == 0 {
                    return Some(Task::ContourDetection); // dense landmark vector
                }
                if units >= 100 {
                    return Some(Task::ImageClassification);
                }
            }
            None
        }
        _ => None,
    }
}

fn by_structure(graph: &Graph, input: &(Shape, DType)) -> Option<Task> {
    let has_recurrent = graph
        .nodes
        .iter()
        .any(|n| matches!(n.kind, LayerKind::Lstm { .. } | LayerKind::Gru { .. }));
    let has_conv = graph
        .nodes
        .iter()
        .any(|n| matches!(n.kind, LayerKind::Conv2d { .. }));
    match (input.0.rank(), has_conv, has_recurrent) {
        (4, true, true) => Some(Task::TextRecognition), // CRNN shape
        (4, true, false) => Some(Task::OtherVision),
        (_, false, true) => Some(Task::AutoComplete),
        _ => None,
    }
}

/// Layer-family composition per modality (Fig. 6): counts of each layer
/// family across a set of models grouped by their input modality.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerComposition {
    /// `(modality, family) -> count`.
    pub counts: BTreeMap<(Modality, String), u64>,
}

impl LayerComposition {
    /// Accumulate one model's layers under `modality`.
    pub fn add(&mut self, modality: Modality, graph: &Graph) {
        for n in &graph.nodes {
            if matches!(n.kind, LayerKind::Input { .. }) {
                continue;
            }
            *self
                .counts
                .entry((modality, n.kind.family().to_string()))
                .or_default() += 1;
        }
    }

    /// Fraction of `family` among all layers of `modality`.
    pub fn fraction(&self, modality: Modality, family: &str) -> f64 {
        let total: u64 = self
            .counts
            .iter()
            .filter(|((m, _), _)| *m == modality)
            .map(|(_, c)| c)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let f = self
            .counts
            .get(&(modality, family.to_string()))
            .copied()
            .unwrap_or(0);
        f as f64 / total as f64
    }

    /// All families of a modality, sorted descending by count.
    pub fn top_families(&self, modality: Modality) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counts
            .iter()
            .filter(|((m, _), _)| *m == modality)
            .map(|((_, f), c)| (f.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    #[test]
    fn hinted_names_classified_exactly() {
        for (i, &task) in Task::ALL.iter().enumerate() {
            let m = build_for_task(task, 700 + i as u64, SizeClass::Small, true);
            let c = classify_graph(&m.graph).unwrap_or_else(|| panic!("{task:?} unclassified"));
            assert_eq!(c.task, task, "hinted {task:?}");
            assert_eq!(c.evidence, Evidence::NameHint);
        }
    }

    #[test]
    fn opaque_names_mostly_recovered_from_dims() {
        // Without name hints the classifier must recover most tasks from
        // shapes/structure — at least modality-correct, like the paper's
        // manual process.
        let mut correct_task = 0;
        let mut correct_modality = 0;
        let mut classified = 0;
        let n = Task::ALL.len();
        for (i, &task) in Task::ALL.iter().enumerate() {
            let m = build_for_task(task, 900 + i as u64, SizeClass::Small, false);
            if let Some(c) = classify_graph(&m.graph) {
                classified += 1;
                if c.task == task {
                    correct_task += 1;
                }
                if c.task.modality() == task.modality() {
                    correct_modality += 1;
                }
                assert_ne!(c.evidence, Evidence::NameHint, "{task:?}: name was opaque");
            }
        }
        assert!(
            classified as f64 / n as f64 >= 0.9,
            "classified {classified}/{n}"
        );
        assert!(
            correct_modality as f64 / classified as f64 >= 0.9,
            "modality {correct_modality}/{classified}"
        );
        assert!(
            correct_task as f64 / classified as f64 >= 0.6,
            "task {correct_task}/{classified}"
        );
    }

    #[test]
    fn ar_hint_does_not_fire_inside_hair() {
        let mut g = build_for_task(Task::HairReconstruction, 7, SizeClass::Small, false).graph;
        g.name = "hair_effects_v2".into();
        let c = classify_graph(&g).unwrap();
        assert_eq!(c.task, Task::HairReconstruction);
    }

    #[test]
    fn layer_composition_convolutions_dominate_vision() {
        // Fig. 6: convolutions are the most popular layer type for images.
        let mut comp = LayerComposition::default();
        for seed in 0..5 {
            let m = build_for_task(Task::ObjectDetection, seed, SizeClass::Small, true);
            comp.add(Modality::Vision, &m.graph);
        }
        for seed in 0..3 {
            let m = build_for_task(Task::AutoComplete, seed, SizeClass::Small, true);
            comp.add(Modality::Nlp, &m.graph);
        }
        // Our IR keeps activations as distinct layers (framework-dependent,
        // as §4.7 notes), so convolutions must lead among *compute* layers.
        let vision_top = comp.top_families(Modality::Vision);
        assert!(
            vision_top.iter().take(2).any(|(f, _)| f == "conv"),
            "conv should be a top-2 family, got {vision_top:?}"
        );
        assert!(
            comp.fraction(Modality::Vision, "conv")
                > comp.fraction(Modality::Vision, "dense"),
            "vision is conv-dominated among weighted layers"
        );
        // Dense layers matter more for text than for vision.
        assert!(
            comp.fraction(Modality::Nlp, "dense") > comp.fraction(Modality::Vision, "dense")
        );
        assert!(comp.fraction(Modality::Vision, "conv") > 0.2);
    }

    #[test]
    fn composition_fraction_of_missing_modality_is_zero() {
        let comp = LayerComposition::default();
        assert_eq!(comp.fraction(Modality::Audio, "conv"), 0.0);
        assert!(comp.top_families(Modality::Audio).is_empty());
    }
}
