//! In-memory document index — the ElasticSearch stand-in of §3.1.
//!
//! gaugeNN "stores the store metadata for each app … in an ElasticSearch
//! instance for quick ETL analytics and cross-snapshot investigations".
//! This module provides the same analytic surface (field filters, term
//! aggregations, numeric stats) over plain documents.

use std::collections::BTreeMap;

/// A field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// String field.
    Str(String),
    /// Numeric field.
    Num(f64),
    /// Boolean field.
    Bool(bool),
}

impl Value {
    /// String view, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    /// Numeric view, if a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
    /// Boolean view, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A document: named fields.
pub type Doc = BTreeMap<String, Value>;

/// Build a document from `(field, value)` pairs.
pub fn doc<const N: usize>(fields: [(&str, Value); N]) -> Doc {
    fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// A filter over documents.
#[derive(Debug, Clone)]
pub enum Filter {
    /// Field equals a string.
    Eq(String, String),
    /// Field equals a bool.
    EqBool(String, bool),
    /// Numeric field within `[lo, hi]`.
    Range(String, f64, f64),
    /// Field exists.
    Exists(String),
    /// All sub-filters match.
    And(Vec<Filter>),
}

impl Filter {
    fn matches(&self, d: &Doc) -> bool {
        match self {
            Filter::Eq(f, v) => d.get(f).and_then(Value::as_str) == Some(v.as_str()),
            Filter::EqBool(f, v) => d.get(f).and_then(Value::as_bool) == Some(*v),
            Filter::Range(f, lo, hi) => d
                .get(f)
                .and_then(Value::as_num)
                .is_some_and(|n| n >= *lo && n <= *hi),
            Filter::Exists(f) => d.contains_key(f),
            Filter::And(fs) => fs.iter().all(|f| f.matches(d)),
        }
    }
}

/// The index.
#[derive(Debug, Default, Clone)]
pub struct Index {
    docs: Vec<Doc>,
}

impl Index {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a document.
    pub fn insert(&mut self, d: Doc) {
        self.docs.push(d);
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are stored.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Documents matching a filter.
    pub fn query(&self, filter: &Filter) -> Vec<&Doc> {
        self.docs.iter().filter(|d| filter.matches(d)).collect()
    }

    /// Count matching documents.
    pub fn count(&self, filter: &Filter) -> usize {
        self.docs.iter().filter(|d| filter.matches(d)).count()
    }

    /// Term aggregation: counts per distinct string value of `field`,
    /// sorted descending by count (ties alphabetical).
    pub fn terms(&self, field: &str, filter: Option<&Filter>) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for d in &self.docs {
            if let Some(f) = filter {
                if !f.matches(d) {
                    continue;
                }
            }
            if let Some(v) = d.get(field).and_then(Value::as_str) {
                *counts.entry(v).or_default() += 1;
            }
        }
        let mut out: Vec<(String, usize)> =
            counts.into_iter().map(|(k, v)| (k.to_string(), v)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Numeric values of `field` across matching documents.
    pub fn values(&self, field: &str, filter: Option<&Filter>) -> Vec<f64> {
        self.docs
            .iter()
            .filter(|d| filter.is_none_or(|f| f.matches(d)))
            .filter_map(|d| d.get(field).and_then(Value::as_num))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> Index {
        let mut ix = Index::new();
        ix.insert(doc([
            ("package", "com.a".into()),
            ("category", "finance".into()),
            ("downloads", 1_000_000u64.into()),
            ("has_ml", true.into()),
        ]));
        ix.insert(doc([
            ("package", "com.b".into()),
            ("category", "finance".into()),
            ("downloads", 5_000u64.into()),
            ("has_ml", false.into()),
        ]));
        ix.insert(doc([
            ("package", "com.c".into()),
            ("category", "beauty".into()),
            ("downloads", 100_000u64.into()),
            ("has_ml", true.into()),
        ]));
        ix
    }

    #[test]
    fn filters() {
        let ix = sample_index();
        assert_eq!(ix.count(&Filter::Eq("category".into(), "finance".into())), 2);
        assert_eq!(ix.count(&Filter::EqBool("has_ml".into(), true)), 2);
        assert_eq!(
            ix.count(&Filter::Range("downloads".into(), 10_000.0, 1e9)),
            2
        );
        assert_eq!(ix.count(&Filter::Exists("package".into())), 3);
        assert_eq!(
            ix.count(&Filter::And(vec![
                Filter::Eq("category".into(), "finance".into()),
                Filter::EqBool("has_ml".into(), true),
            ])),
            1
        );
    }

    #[test]
    fn terms_aggregation_sorted() {
        let ix = sample_index();
        let terms = ix.terms("category", None);
        assert_eq!(terms[0], ("finance".to_string(), 2));
        assert_eq!(terms[1], ("beauty".to_string(), 1));
        let filtered = ix.terms("category", Some(&Filter::EqBool("has_ml".into(), true)));
        assert_eq!(filtered.len(), 2);
        assert!(filtered.iter().all(|(_, c)| *c == 1));
    }

    #[test]
    fn numeric_values() {
        let ix = sample_index();
        let v = ix.values("downloads", Some(&Filter::EqBool("has_ml".into(), true)));
        assert_eq!(v.len(), 2);
        assert!(v.contains(&1_000_000.0));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(2.5f64).as_num(), Some(2.5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_num(), None);
    }
}
