//! Model uniqueness and fine-tuning analysis (§4.5).
//!
//! The paper md5-checksums every model (and its weights) to find that only
//! 19.1 % of the 1,666 deployed models are unique, then checksums at layer
//! granularity to find that 9.02 % of the unique models share ≥20 % of
//! their weights with another model and 4.2 % differ in at most three
//! layers — the signature of off-the-shelf models fine-tuned in their last
//! layers.

use crate::md5::Md5;
use gaugenn_dnn::Graph;
use std::collections::{BTreeMap, BTreeSet};

/// Checksum of a serialised model (all of its files; caffe and ncnn split
/// graph and weights, and "we perform an md5 checksum on both the model
/// and weights" — §4.5 footnote 6). The files are streamed through the
/// block hasher in path order, never concatenated.
pub fn model_checksum(files: &[(String, Vec<u8>)]) -> String {
    let mut sorted: Vec<&(String, Vec<u8>)> = files.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let mut h = Md5::new();
    for (_, bytes) in sorted {
        h.update(bytes);
    }
    h.finalize_hex()
}

/// Per-layer weight checksums of a decoded graph: `(md5, weight_count)`
/// for every weighted layer, in topological order.
pub fn layer_checksums(graph: &Graph) -> Vec<(String, u64)> {
    graph
        .nodes
        .iter()
        .filter_map(|n| {
            let w = n.weights.as_ref()?;
            let mut h = Md5::new();
            h.update(&w.to_bytes());
            if let Some(b) = &n.bias {
                h.update(&b.to_bytes());
            }
            let count = w.len() as u64 + n.bias.as_ref().map_or(0, |b| b.len() as u64);
            Some((h.finalize_hex(), count))
        })
        .collect()
}

/// One model instance observed in the corpus.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Owning app package.
    pub app: String,
    /// Path inside the app.
    pub path: String,
    /// Whole-model checksum.
    pub checksum: String,
    /// Per-layer `(md5, weight_count)` pairs.
    pub layers: Vec<(String, u64)>,
}

/// Result of the uniqueness analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct DedupReport {
    /// Total model instances examined.
    pub total_instances: usize,
    /// Distinct checksums.
    pub unique_models: usize,
    /// Fraction of instances whose checksum appears in ≥2 distinct apps
    /// (§8.1: "close to 80.9 % of the models are shared across two or more
    /// applications").
    pub shared_instance_fraction: f64,
    /// Of the unique models, how many share ≥20 % of their weights with at
    /// least one *other* unique model.
    pub sharing_20pct: usize,
    /// Of the unique models, how many differ from another unique model in
    /// at most three layers.
    pub diff_le3_layers: usize,
}

impl DedupReport {
    /// `unique / total` — the paper's 19.1 %.
    pub fn unique_fraction(&self) -> f64 {
        if self.total_instances == 0 {
            0.0
        } else {
            self.unique_models as f64 / self.total_instances as f64
        }
    }
}

/// Run the full §4.5 analysis over model instances.
pub fn dedup(entries: &[ModelEntry]) -> DedupReport {
    // checksum -> apps that carry it, plus a representative layer set.
    let mut by_sum: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut representative: BTreeMap<&str, &ModelEntry> = BTreeMap::new();
    for e in entries {
        by_sum.entry(&e.checksum).or_default().insert(&e.app);
        representative.entry(&e.checksum).or_insert(e);
    }
    let unique_models = by_sum.len();
    let shared_instances = entries
        .iter()
        .filter(|e| by_sum[e.checksum.as_str()].len() >= 2)
        .count();

    // Pairwise layer-level comparison across unique representatives.
    let uniques: Vec<&ModelEntry> = representative.values().copied().collect();
    let mut sharing_20pct = 0usize;
    let mut diff_le3 = 0usize;
    for (i, a) in uniques.iter().enumerate() {
        let a_weights: u64 = a.layers.iter().map(|(_, c)| c).sum();
        let mut shares = false;
        let mut close = false;
        for (j, b) in uniques.iter().enumerate() {
            if i == j {
                continue;
            }
            // Shared weights: multiset intersection of layer checksums.
            let mut b_counts: BTreeMap<&str, (u64, u32)> = BTreeMap::new();
            for (sum, c) in &b.layers {
                let e = b_counts.entry(sum).or_insert((*c, 0));
                e.1 += 1;
            }
            let mut shared: u64 = 0;
            let mut a_seen: BTreeMap<&str, u32> = BTreeMap::new();
            for (sum, c) in &a.layers {
                let seen = a_seen.entry(sum).or_default();
                if let Some((count, avail)) = b_counts.get(sum.as_str()) {
                    if *seen < *avail {
                        shared += count.min(c);
                    }
                }
                *seen += 1;
            }
            if a_weights > 0 && shared as f64 / a_weights as f64 >= 0.20 {
                shares = true;
            }
            if a.layers.len() == b.layers.len() && !a.layers.is_empty() {
                let differing = a
                    .layers
                    .iter()
                    .zip(&b.layers)
                    .filter(|(x, y)| x.0 != y.0)
                    .count();
                if differing > 0 && differing <= 3 {
                    close = true;
                }
            }
            if shares && close {
                break;
            }
        }
        if shares {
            sharing_20pct += 1;
        }
        if close {
            diff_le3 += 1;
        }
    }

    DedupReport {
        total_instances: entries.len(),
        unique_models,
        shared_instance_fraction: if entries.is_empty() {
            0.0
        } else {
            shared_instances as f64 / entries.len() as f64
        },
        sharing_20pct,
        diff_le3_layers: diff_le3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, fine_tune, SizeClass};

    fn entry(app: &str, path: &str, g: &Graph) -> ModelEntry {
        let bytes = gaugenn_modelfmt::encode(g, gaugenn_modelfmt::Framework::TfLite).unwrap();
        ModelEntry {
            app: app.into(),
            path: path.into(),
            checksum: model_checksum(&bytes.files),
            layers: layer_checksums(g),
        }
    }

    #[test]
    fn identical_models_dedup() {
        let g = build_for_task(Task::MovementTracking, 1, SizeClass::Small, true).graph;
        let entries = vec![
            entry("com.a", "m.tflite", &g),
            entry("com.b", "m.tflite", &g),
            entry("com.c", "other.tflite", &g),
        ];
        let r = dedup(&entries);
        assert_eq!(r.total_instances, 3);
        assert_eq!(r.unique_models, 1);
        assert!((r.shared_instance_fraction - 1.0).abs() < 1e-12);
        assert!((r.unique_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_models_stay_distinct() {
        let g1 = build_for_task(Task::MovementTracking, 1, SizeClass::Small, true).graph;
        let g2 = build_for_task(Task::MovementTracking, 2, SizeClass::Small, true).graph;
        let r = dedup(&[entry("com.a", "a", &g1), entry("com.b", "b", &g2)]);
        assert_eq!(r.unique_models, 2);
        assert_eq!(r.shared_instance_fraction, 0.0);
    }

    #[test]
    fn finetuned_tail_detected_as_close_and_sharing() {
        let base = build_for_task(Task::ImageClassification, 3, SizeClass::Small, true).graph;
        let ft = fine_tune(&base, 2, 99);
        let r = dedup(&[entry("com.a", "base", &base), entry("com.b", "ft", &ft)]);
        assert_eq!(r.unique_models, 2);
        assert_eq!(r.diff_le3_layers, 2, "both sides of the lineage are close");
        assert_eq!(r.sharing_20pct, 2, "trunk weights dominate, both share >=20%");
    }

    #[test]
    fn heavily_retrained_shares_but_not_close() {
        let base = build_for_task(Task::ImageClassification, 4, SizeClass::Small, true).graph;
        // Retrain many layers: still shares the early trunk, but differs in
        // more than three layers.
        let ft = fine_tune(&base, 8, 100);
        let r = dedup(&[entry("com.a", "base", &base), entry("com.b", "ft", &ft)]);
        assert_eq!(r.diff_le3_layers, 0);
        assert!(r.sharing_20pct >= 1);
    }

    #[test]
    fn checksum_is_order_insensitive_across_files() {
        let files_a = vec![
            ("a.bin".to_string(), vec![1u8, 2]),
            ("b.bin".to_string(), vec![3u8]),
        ];
        let files_b = vec![
            ("b.bin".to_string(), vec![3u8]),
            ("a.bin".to_string(), vec![1u8, 2]),
        ];
        assert_eq!(model_checksum(&files_a), model_checksum(&files_b));
    }

    #[test]
    fn layer_checksums_cover_weighted_layers_only() {
        let g = build_for_task(Task::MovementTracking, 5, SizeClass::Small, true).graph;
        let sums = layer_checksums(&g);
        let weighted = g.nodes.iter().filter(|n| n.weights.is_some()).count();
        assert_eq!(sums.len(), weighted);
        assert!(sums.iter().all(|(h, c)| h.len() == 32 && *c > 0));
    }

    #[test]
    fn empty_input() {
        let r = dedup(&[]);
        assert_eq!(r.total_instances, 0);
        assert_eq!(r.unique_fraction(), 0.0);
    }
}
