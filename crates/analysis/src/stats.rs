//! Statistics used across the figures: ECDFs (Figs. 9, 13, 14), Gaussian
//! kernel density estimates (Fig. 10), quantiles, and the least-squares
//! line fits of Fig. 8.

/// Empirical cumulative distribution function of a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (non-finite values are dropped).
    pub fn new(mut sample: Vec<f64>) -> Ecdf {
        sample.retain(|x| x.is_finite());
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite after retain"));
        Ecdf { sorted: sample }
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the sample was empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Quantile `q` in `[0, 1]` (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// `(x, F(x))` points for plotting/printing the curve at every sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

/// Mean of a sample (0 when empty).
pub fn mean(sample: &[f64]) -> f64 {
    if sample.is_empty() {
        0.0
    } else {
        sample.iter().sum::<f64>() / sample.len() as f64
    }
}

/// Population standard deviation.
pub fn stddev(sample: &[f64]) -> f64 {
    if sample.len() < 2 {
        return 0.0;
    }
    let m = mean(sample);
    (sample.iter().map(|x| (x - m).powi(2)).sum::<f64>() / sample.len() as f64).sqrt()
}

/// Gaussian kernel density estimate (the smooth lines of Fig. 10).
#[derive(Debug, Clone)]
pub struct Kde {
    sample: Vec<f64>,
    bandwidth: f64,
}

impl Kde {
    /// Build with Silverman's rule-of-thumb bandwidth.
    pub fn new(sample: Vec<f64>) -> Kde {
        let mut s: Vec<f64> = sample.into_iter().filter(|x| x.is_finite()).collect();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = s.len().max(1) as f64;
        let sd = stddev(&s).max(1e-9);
        let bandwidth = 1.06 * sd * n.powf(-0.2);
        Kde {
            sample: s,
            bandwidth,
        }
    }

    /// Density estimate at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sample.is_empty() {
            return 0.0;
        }
        let h = self.bandwidth;
        let norm = 1.0 / ((2.0 * std::f64::consts::PI).sqrt() * h * self.sample.len() as f64);
        self.sample
            .iter()
            .map(|&xi| (-0.5 * ((x - xi) / h).powi(2)).exp())
            .sum::<f64>()
            * norm
    }

    /// Evaluate on `n` evenly spaced points across the sample range
    /// (padded by one bandwidth), for printing a curve.
    pub fn curve(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sample.is_empty() || n == 0 {
            return vec![];
        }
        let lo = self.sample[0] - self.bandwidth;
        let hi = self.sample[self.sample.len() - 1] + self.bandwidth;
        (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1).max(1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Least-squares line fit `y = slope * x + intercept` with Pearson r².
/// Fig. 8 fits latency against FLOPs to show how weak the proxy is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Fit a line through `(x, y)` pairs. Returns `None` with fewer than two
/// points or zero x-variance.
pub fn line_fit(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let syy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy <= 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    Some(LineFit {
        slope,
        intercept,
        r2,
    })
}

/// Order-0 Shannon entropy of a byte stream, in bits per byte.
///
/// The §6.1 what-if experiment uses this as its compressibility proxy:
/// weight clustering collapses the value distribution, dropping entropy
/// (and hence compressed size) while leaving dense compute untouched.
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    if bytes.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    let n = bytes.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Shannon entropy over 32-bit words, in bits per word.
///
/// A sharper compressibility proxy than byte entropy for f32 weight
/// payloads: clustering to k centroids caps this near `log2(k)` while the
/// byte-level figure barely moves (the four byte lanes mix).
pub fn word_entropy(bytes: &[u8]) -> f64 {
    let words: Vec<u32> = bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    if words.is_empty() {
        return 0.0;
    }
    // BTreeMap, not HashMap: `values()` feeds a float sum below, and the
    // entropy figure lands in the rendered report — the accumulation
    // order must not depend on hash iteration order.
    let mut counts: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for w in &words {
        *counts.entry(*w).or_default() += 1;
    }
    let n = words.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Histogram with `bins` equal-width buckets over `[lo, hi]`.
pub fn histogram(sample: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<u64> {
    let mut out = vec![0u64; bins];
    if bins == 0 || hi <= lo {
        return out;
    }
    let width = (hi - lo) / bins as f64;
    for &x in sample {
        if !x.is_finite() || x < lo || x > hi {
            continue;
        }
        let idx = (((x - lo) / width) as usize).min(bins - 1);
        out[idx] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(2.0), 0.5);
        assert_eq!(e.eval(10.0), 1.0);
        assert_eq!(e.median(), 2.0);
        assert_eq!(e.quantile(1.0), 4.0);
        assert_eq!(e.quantile(0.25), 1.0);
    }

    #[test]
    fn ecdf_drops_non_finite() {
        let e = Ecdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn ecdf_points_monotonic() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        let pts = e.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ecdf() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert!(e.median().is_nan());
    }

    #[test]
    fn kde_integrates_to_one_roughly() {
        let k = Kde::new(vec![0.0, 1.0, 2.0, 3.0, 10.0]);
        // Trapezoid integral over a wide range.
        let (lo, hi, n) = (-20.0, 30.0, 5000);
        let dx = (hi - lo) / n as f64;
        let integral: f64 = (0..n)
            .map(|i| k.eval(lo + dx * (i as f64 + 0.5)) * dx)
            .sum();
        assert!((integral - 1.0).abs() < 0.02, "integral {integral}");
    }

    #[test]
    fn kde_peaks_at_mass() {
        let k = Kde::new(vec![5.0; 50]);
        assert!(k.eval(5.0) > k.eval(7.0));
        let curve = k.curve(11);
        assert_eq!(curve.len(), 11);
    }

    #[test]
    fn line_fit_exact() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 + 1.0)).collect();
        let f = line_fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-9);
        assert!((f.intercept - 1.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn line_fit_weak_correlation() {
        let pts = vec![(0.0, 0.0), (1.0, 5.0), (2.0, 1.0), (3.0, 4.0), (4.0, 2.0)];
        let f = line_fit(&pts).unwrap();
        assert!(f.r2 < 0.5);
    }

    #[test]
    fn line_fit_degenerate() {
        assert!(line_fit(&[(1.0, 1.0)]).is_none());
        assert!(line_fit(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
    }

    #[test]
    fn histogram_buckets() {
        let h = histogram(&[0.1, 0.9, 1.5, 2.5, 9.9, 100.0], 0.0, 10.0, 10);
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 1);
        assert_eq!(h[9], 1);
        assert_eq!(h.iter().sum::<u64>(), 5, "out-of-range dropped");
    }

    #[test]
    fn byte_entropy_bounds() {
        assert_eq!(byte_entropy(&[]), 0.0);
        assert_eq!(byte_entropy(&[7u8; 100]), 0.0, "constant stream has zero entropy");
        let uniform: Vec<u8> = (0..=255).collect();
        assert!((byte_entropy(&uniform) - 8.0).abs() < 1e-9, "uniform bytes = 8 bits");
        let biased = [0u8, 0, 0, 1];
        let h = byte_entropy(&biased);
        assert!(h > 0.0 && h < 1.0);
    }

    #[test]
    fn word_entropy_collapses_under_clustering_like_streams() {
        // 1000 random-ish distinct words vs 1000 words from a 4-value set.
        let distinct: Vec<u8> = (0..1000u32)
            .flat_map(|i| (i.wrapping_mul(2654435761)).to_le_bytes())
            .collect();
        let clustered: Vec<u8> = (0..1000u32)
            .flat_map(|i| ((i % 4) * 0x11111111).to_le_bytes())
            .collect();
        assert!(word_entropy(&distinct) > 9.0);
        assert!(word_entropy(&clustered) < 2.1);
        assert_eq!(word_entropy(&[]), 0.0);
    }

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((stddev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }
}
