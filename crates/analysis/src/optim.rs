//! Model-level optimisation census (§6.1).
//!
//! Measures, over decoded graphs, the adoption of the three optimisations
//! the paper audits:
//!
//! * **clustering** — layers with a `cluster_` name prefix (TF's
//!   clustering API marker); the paper found none in the wild;
//! * **pruning** — layers with a `prune_` prefix (also none), plus the
//!   headroom probe: the fraction of weights within ±1e-9 of zero
//!   (paper: 3.15 %);
//! * **quantisation** — models carrying a `dequantize` layer (10.3 %),
//!   int8 weight tensors (20.27 %) and int8 activations (10.31 %).

use gaugenn_dnn::graph::LayerKind;
use gaugenn_dnn::Graph;

/// Census over one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelOptim {
    /// Has any `cluster_`-prefixed layer.
    pub clustered: bool,
    /// Has any `prune_`-prefixed layer.
    pub prune_marked: bool,
    /// Has a dequantize layer.
    pub has_dequantize: bool,
    /// Stores any int8 weight tensor.
    pub int8_weights: bool,
    /// Runs any int8 activations (quantize layers present).
    pub int8_activations: bool,
    /// Total weights.
    pub total_weights: u64,
    /// Weights within ±1e-9 of zero.
    pub near_zero_weights: u64,
}

/// Inspect one graph.
pub fn inspect(graph: &Graph) -> ModelOptim {
    let mut total = 0u64;
    let mut near_zero = 0u64;
    for n in &graph.nodes {
        if let Some(w) = &n.weights {
            total += w.len() as u64;
            near_zero += (w.near_zero_fraction(1e-9) * w.len() as f64).round() as u64;
        }
    }
    ModelOptim {
        clustered: graph.nodes.iter().any(|n| n.name.starts_with("cluster_")),
        prune_marked: graph.nodes.iter().any(|n| n.name.starts_with("prune_")),
        has_dequantize: graph
            .nodes
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Dequantize(_))),
        int8_weights: graph.has_int8_weights(),
        int8_activations: graph
            .nodes
            .iter()
            .any(|n| matches!(n.kind, LayerKind::Quantize(_))),
        total_weights: total,
        near_zero_weights: near_zero,
    }
}

/// Corpus-level aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OptimCensus {
    /// Models examined.
    pub models: u64,
    /// Models with clustering markers.
    pub clustered: u64,
    /// Models with pruning markers.
    pub prune_marked: u64,
    /// Models with a dequantize layer.
    pub dequantize: u64,
    /// Models with int8 weights.
    pub int8_weights: u64,
    /// Models with int8 activations.
    pub int8_activations: u64,
    /// Total weights across all models.
    pub total_weights: u64,
    /// Near-zero weights across all models.
    pub near_zero_weights: u64,
}

impl OptimCensus {
    /// Fold one model's inspection into the census.
    pub fn add(&mut self, m: &ModelOptim) {
        self.models += 1;
        self.clustered += m.clustered as u64;
        self.prune_marked += m.prune_marked as u64;
        self.dequantize += m.has_dequantize as u64;
        self.int8_weights += m.int8_weights as u64;
        self.int8_activations += m.int8_activations as u64;
        self.total_weights += m.total_weights;
        self.near_zero_weights += m.near_zero_weights;
    }

    /// Overall near-zero weight fraction (the §6.1 3.15 %).
    pub fn sparsity(&self) -> f64 {
        if self.total_weights == 0 {
            0.0
        } else {
            self.near_zero_weights as f64 / self.total_weights as f64
        }
    }

    /// Fraction of models with a dequantize layer.
    pub fn dequantize_fraction(&self) -> f64 {
        frac(self.dequantize, self.models)
    }

    /// Fraction of models with int8 weights.
    pub fn int8_weight_fraction(&self) -> f64 {
        frac(self.int8_weights, self.models)
    }

    /// Fraction of models with int8 activations.
    pub fn int8_activation_fraction(&self) -> f64 {
        frac(self.int8_activations, self.models)
    }
}

fn frac(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaugenn_dnn::quant::{apply, cluster_graph, prune_graph, QuantMode};
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    fn base() -> Graph {
        build_for_task(Task::MovementTracking, 11, SizeClass::Small, true).graph
    }

    #[test]
    fn plain_model_flags() {
        let m = inspect(&base());
        assert!(!m.clustered);
        assert!(!m.prune_marked);
        assert!(!m.has_dequantize);
        assert!(!m.int8_weights);
        assert!(m.total_weights > 0);
    }

    #[test]
    fn clustering_detected_by_prefix() {
        let c = cluster_graph(&base(), 16);
        assert!(inspect(&c).clustered);
    }

    #[test]
    fn quantisation_modes_detected() {
        let wo = inspect(&apply(&base(), QuantMode::WeightOnly));
        assert!(wo.int8_weights && !wo.has_dequantize && !wo.int8_activations);
        let full = inspect(&apply(&base(), QuantMode::Full));
        assert!(full.int8_weights && full.has_dequantize && full.int8_activations);
    }

    #[test]
    fn pruning_raises_sparsity() {
        let p = inspect(&prune_graph(&base(), 0.10));
        let frac = p.near_zero_weights as f64 / p.total_weights as f64;
        assert!(frac >= 0.09, "sparsity {frac}");
    }

    #[test]
    fn census_aggregates() {
        let mut census = OptimCensus::default();
        census.add(&inspect(&base()));
        census.add(&inspect(&apply(&base(), QuantMode::Full)));
        census.add(&inspect(&prune_graph(&base(), 0.5)));
        assert_eq!(census.models, 3);
        assert_eq!(census.dequantize, 1);
        assert!((census.dequantize_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!(census.sparsity() > 0.1);
        assert_eq!(census.int8_weight_fraction(), census.int8_activation_fraction());
    }

    #[test]
    fn empty_census_fractions_are_zero() {
        let c = OptimCensus::default();
        assert_eq!(c.sparsity(), 0.0);
        assert_eq!(c.dequantize_fraction(), 0.0);
    }
}
