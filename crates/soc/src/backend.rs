//! Inference backends (§6.3, Appendix B).
//!
//! Each backend couples an execution engine (CPU pool, GPU, DSP) with an
//! operator-support table and kernel-quality factors. Partial operator
//! support is the defining trait the paper observed: "the number of models
//! commonly compatible is low … rudimentary support for operators across
//! heterogeneous targets can hinder their widespread adoption".

use crate::sched::ThreadConfig;

/// SNPE execution target within the Qualcomm SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SnpeTarget {
    /// SNPE CPU runtime.
    Cpu,
    /// Adreno GPU runtime.
    Gpu,
    /// Hexagon DSP runtime (int8).
    Dsp,
}

/// An inference backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Framework-default CPU kernels (TFLite reference path) — the baseline
    /// in Figs. 13 and 14.
    Cpu(ThreadConfig),
    /// XNNPACK delegate: optimised Neon CPU kernels.
    Xnnpack(ThreadConfig),
    /// NNAPI delegate via vendor NN drivers.
    Nnapi,
    /// TFLite GPU delegate (OpenCL).
    Gpu,
    /// Qualcomm SNPE runtime.
    Snpe(SnpeTarget),
}

impl Backend {
    /// Display name used in figures.
    pub fn name(&self) -> String {
        match self {
            Backend::Cpu(c) => format!("CPU({})", c.label()),
            Backend::Xnnpack(c) => format!("XNNPACK({})", c.label()),
            Backend::Nnapi => "NNAPI".into(),
            Backend::Gpu => "GPU".into(),
            Backend::Snpe(SnpeTarget::Cpu) => "SNPE-CPU".into(),
            Backend::Snpe(SnpeTarget::Gpu) => "SNPE-GPU".into(),
            Backend::Snpe(SnpeTarget::Dsp) => "SNPE-DSP".into(),
        }
    }

    /// Whether this backend executes `family` layers at all.
    ///
    /// Unsupported families make the *whole model* incompatible (we model
    /// the common TFLite behaviour of delegates rejecting the graph; CPU
    /// fallback partitioning is approximated by NNAPI's low quality factor
    /// instead).
    pub fn supports(&self, family: &str) -> bool {
        match self {
            // Reference CPU kernels implement everything.
            Backend::Cpu(_) => true,
            // XNNPACK: float conv/dense kernels; no recurrent cells, no
            // quantize helpers in the delegate path.
            Backend::Xnnpack(_) => !matches!(family, "recurrent" | "quant"),
            // NNAPI 1.2-era driver op set.
            Backend::Nnapi => !matches!(family, "recurrent" | "embedding" | "quant"),
            // GPU delegate: image-shaped ops only.
            Backend::Gpu => !matches!(family, "recurrent" | "embedding" | "quant"),
            Backend::Snpe(t) => match t {
                SnpeTarget::Cpu => true,
                SnpeTarget::Gpu => !matches!(family, "recurrent" | "embedding" | "quant"),
                SnpeTarget::Dsp => {
                    !matches!(family, "recurrent" | "embedding" | "quant" | "resize")
                }
            },
        }
    }

    /// Thread configuration when executing on the CPU pool.
    pub fn thread_config(&self) -> Option<ThreadConfig> {
        match self {
            Backend::Cpu(c) | Backend::Xnnpack(c) => Some(*c),
            Backend::Snpe(SnpeTarget::Cpu) => Some(ThreadConfig::unpinned(4)),
            _ => None,
        }
    }

    /// Kernel quality multiplier on achievable utilisation (1.0 = the
    /// baseline CPU kernels). Fitted to §6.3's measured ratios: XNNPACK
    /// 1.03× faster; NNAPI 0.49× (unoptimised vendor NN drivers); SNPE-CPU
    /// slightly below TFLite CPU.
    pub fn quality_factor(&self) -> f64 {
        match self {
            Backend::Cpu(_) => 1.0,
            Backend::Xnnpack(_) => 1.06,
            Backend::Nnapi => 0.52,
            Backend::Gpu => 1.0,
            Backend::Snpe(SnpeTarget::Cpu) => 0.85,
            Backend::Snpe(SnpeTarget::Gpu) => 1.18,
            Backend::Snpe(SnpeTarget::Dsp) => 1.0,
        }
    }

    /// Per-layer dispatch overhead in milliseconds (driver hops, kernel
    /// launches). NNAPI pays the HAL round-trip; GPU pays command-buffer
    /// submission.
    pub fn dispatch_overhead_ms(&self) -> f64 {
        match self {
            Backend::Cpu(_) | Backend::Xnnpack(_) => 0.015,
            Backend::Nnapi => 0.12,
            Backend::Gpu => 0.05,
            // SNPE pre-compiles the whole graph for its target, so per-op
            // dispatch is cheap relative to interpreter-style execution.
            Backend::Snpe(SnpeTarget::Cpu) => 0.02,
            Backend::Snpe(SnpeTarget::Gpu) => 0.03,
            Backend::Snpe(SnpeTarget::Dsp) => 0.008,
        }
    }

    /// Whether this backend computes in int8 (affects effective throughput
    /// and the accuracy caveat of §6.3: "the DSP runs in int8").
    pub fn int8_compute(&self) -> bool {
        matches!(self, Backend::Snpe(SnpeTarget::Dsp))
    }

    /// Fixed per-inference session overhead in milliseconds: interpreter
    /// invocation, input copy and output sync. Constant across devices, so
    /// it compresses cross-device latency ratios for small models — part
    /// of why the paper's tier gaps are narrower than raw core-throughput
    /// ratios suggest.
    pub fn session_overhead_ms(&self) -> f64 {
        match self {
            Backend::Cpu(_) | Backend::Xnnpack(_) => 1.2,
            Backend::Nnapi => 2.5,
            Backend::Gpu => 1.5,
            Backend::Snpe(SnpeTarget::Cpu) => 1.0,
            Backend::Snpe(SnpeTarget::Gpu) => 1.0,
            Backend::Snpe(SnpeTarget::Dsp) => 0.4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_supports_everything() {
        let cpu = Backend::Cpu(ThreadConfig::unpinned(4));
        for fam in [
            "conv", "depth_conv", "dense", "activation", "pool", "math", "concat", "reshape",
            "resize", "slice", "norm", "pad", "quant", "embedding", "recurrent",
        ] {
            assert!(cpu.supports(fam), "{fam}");
        }
    }

    #[test]
    fn delegates_reject_recurrent() {
        for b in [
            Backend::Xnnpack(ThreadConfig::unpinned(4)),
            Backend::Nnapi,
            Backend::Gpu,
            Backend::Snpe(SnpeTarget::Gpu),
            Backend::Snpe(SnpeTarget::Dsp),
        ] {
            assert!(!b.supports("recurrent"), "{}", b.name());
            assert!(b.supports("conv"), "{}", b.name());
        }
    }

    #[test]
    fn dsp_strictest() {
        let dsp = Backend::Snpe(SnpeTarget::Dsp);
        let gpu = Backend::Snpe(SnpeTarget::Gpu);
        assert!(!dsp.supports("resize"));
        assert!(gpu.supports("resize"));
    }

    #[test]
    fn quality_ordering_matches_section_6_3() {
        let cpu = Backend::Cpu(ThreadConfig::unpinned(4));
        let xnn = Backend::Xnnpack(ThreadConfig::unpinned(4));
        assert!(xnn.quality_factor() > cpu.quality_factor());
        assert!(Backend::Nnapi.quality_factor() < cpu.quality_factor());
        assert!(
            Backend::Snpe(SnpeTarget::Cpu).quality_factor() < cpu.quality_factor(),
            "SNPE CPU lags vanilla CPU (non-optimised vendor CPU path)"
        );
    }

    #[test]
    fn names_and_overheads() {
        assert_eq!(Backend::Nnapi.name(), "NNAPI");
        assert_eq!(
            Backend::Cpu(ThreadConfig::pinned(4, 2)).name(),
            "CPU(4a2)"
        );
        assert!(Backend::Nnapi.dispatch_overhead_ms() > Backend::Gpu.dispatch_overhead_ms());
        assert!(Backend::Snpe(SnpeTarget::Dsp).int8_compute());
        assert!(!Backend::Gpu.int8_compute());
    }
}
