//! DNN co-habitation model (§8.1 future work).
//!
//! "With more and more applications shipping DNN-powered solutions, we
//! also anticipate the co-existence and parallel runtime of more than one
//! DNN in the future. Thus, researchers will need to tackle this emerging
//! problem…" — this module implements the study that sentence calls for:
//! two models running concurrently on one device, contending for CPU cores
//! and memory bandwidth.
//!
//! Contention model: the thread pool is partitioned between the tenants
//! (big cores first, as the scheduler would), memory bandwidth is shared
//! in proportion to demand, and both pay a cache-interference factor.

use crate::backend::Backend;
use crate::latency::estimate_latency;
use crate::sched::ThreadConfig;
use crate::spec::DeviceSpec;
use crate::thermal::ThermalState;
use crate::Result;
use gaugenn_dnn::trace::TraceReport;

/// Cache/bandwidth interference factor applied to each tenant when two
/// DNNs share the SoC (L3 and DRAM-controller contention).
pub const INTERFERENCE_FACTOR: f64 = 0.85;

/// Result of running two models side by side.
#[derive(Debug, Clone)]
pub struct CohabReport {
    /// Isolated latency of each model with the full 4-thread pool, ms.
    pub isolated_ms: [f64; 2],
    /// Latency of each model while co-habiting, ms.
    pub cohab_ms: [f64; 2],
}

impl CohabReport {
    /// Per-model slowdown factors.
    pub fn slowdowns(&self) -> [f64; 2] {
        [
            self.cohab_ms[0] / self.isolated_ms[0],
            self.cohab_ms[1] / self.isolated_ms[1],
        ]
    }

    /// System throughput ratio vs running the pair sequentially on the
    /// full pool: > 1 means co-habitation wins wall-clock.
    pub fn throughput_gain(&self) -> f64 {
        let sequential = self.isolated_ms[0] + self.isolated_ms[1];
        let cohab = self.cohab_ms[0].max(self.cohab_ms[1]);
        sequential / cohab
    }
}

/// Run two models concurrently on `device` (CPU backends only: each
/// tenant gets half of the 4-thread benchmark pool via affinity splits).
pub fn cohabitate(
    device: &DeviceSpec,
    a: &TraceReport,
    b: &TraceReport,
    thermal: &ThermalState,
) -> Result<CohabReport> {
    let full = Backend::Cpu(ThreadConfig::unpinned(4));
    let full_lat_a = estimate_latency(device, full, a, thermal)?;
    let full_lat_b = estimate_latency(device, full, b, thermal)?;
    let iso_a = full_lat_a.total_ms;
    let iso_b = full_lat_b.total_ms;

    // Each tenant runs 2 threads. Tenant A lands on the two biggest cores
    // (it arrived first); tenant B inherits the next two, which on
    // big.LITTLE parts often means crossing into the LITTLE cluster.
    let eff_full = crate::sched::assign(device, ThreadConfig::unpinned(4))?.effective_gflops;
    let eff_a = crate::sched::assign_slice(device, 0, 2)?.effective_gflops;
    let eff_b = crate::sched::assign_slice(device, 2, 2)?.effective_gflops;
    // Compute time scales with the throughput loss; the shared-bandwidth
    // interference factor applies to both tenants.
    let co_a = iso_a * (eff_full / eff_a) / INTERFERENCE_FACTOR;
    let co_b = iso_b * (eff_full / eff_b) / INTERFERENCE_FACTOR;
    Ok(CohabReport {
        isolated_ms: [iso_a, iso_b],
        cohab_ms: [co_a, co_b],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::device;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::trace::trace_graph;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    fn tr(task: Task, seed: u64) -> TraceReport {
        trace_graph(&build_for_task(task, seed, SizeClass::Small, true).graph).unwrap()
    }

    #[test]
    fn cohabitation_slows_both_tenants() {
        let d = device("S21").unwrap();
        let a = tr(Task::FaceDetection, 1);
        let b = tr(Task::ImageClassification, 2);
        let rep = cohabitate(&d, &a, &b, &ThermalState::cool()).unwrap();
        let [sa, sb] = rep.slowdowns();
        assert!(sa > 1.0, "tenant A slowdown {sa}");
        assert!(sb > 1.0, "tenant B slowdown {sb}");
        assert!(sa < sb, "the first tenant keeps the big cores");
    }

    #[test]
    fn naive_cohabitation_loses_wall_clock_on_big_little() {
        // The §8.1 thesis: naive core partitioning on a heterogeneous SoC
        // leaves the second tenant on weak cores, so co-habitation loses
        // to sequential execution — the "emerging problem" researchers
        // "will need to tackle … by means of OS or hardware-level
        // solutions".
        let d = device("Q888").unwrap();
        let a = tr(Task::SemanticSegmentation, 3);
        let b = tr(Task::SemanticSegmentation, 4);
        let rep = cohabitate(&d, &a, &b, &ThermalState::cool()).unwrap();
        let gain = rep.throughput_gain();
        assert!(gain < 1.0, "naive co-habitation should lose, gain {gain}");
        assert!(gain > 0.3, "…but not catastrophically, gain {gain}");
    }

    #[test]
    fn placement_order_matters() {
        // Giving the heavy model the big cores beats the reverse — the
        // scheduling decision the future-work section anticipates.
        let d = device("S21").unwrap();
        let heavy = tr(Task::SemanticSegmentation, 7);
        let light = tr(Task::FaceDetection, 8);
        let cool = ThermalState::cool();
        let heavy_first = cohabitate(&d, &heavy, &light, &cool).unwrap();
        let light_first = cohabitate(&d, &light, &heavy, &cool).unwrap();
        let makespan_hf = heavy_first.cohab_ms[0].max(heavy_first.cohab_ms[1]);
        let makespan_lf = light_first.cohab_ms[0].max(light_first.cohab_ms[1]);
        assert!(
            makespan_hf < makespan_lf,
            "heavy-on-big {makespan_hf} should beat light-on-big {makespan_lf}"
        );
    }

    #[test]
    fn low_end_device_suffers_more() {
        let a = tr(Task::FaceDetection, 5);
        let b = tr(Task::SoundRecognition, 6);
        let cool = ThermalState::cool();
        let s21 = cohabitate(&device("S21").unwrap(), &a, &b, &cool).unwrap();
        let a20 = cohabitate(&device("A20").unwrap(), &a, &b, &cool).unwrap();
        // The A20's second tenant lands on far weaker cores.
        assert!(a20.slowdowns()[1] > s21.slowdowns()[1] * 0.9);
    }
}
