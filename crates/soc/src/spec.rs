//! Device and SoC specifications (Table 1 of the paper).
//!
//! Microarchitectural constants (FLOPs/cycle, frequencies, core power) are
//! drawn from public ARM documentation and vendor datasheets; they are the
//! calibration inputs of the model, not measurements.

/// ARM core microarchitectures present in the Table 1 devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreType {
    /// Cortex-A53 (in-order little, Exynos 7884).
    A53,
    /// Cortex-A55 (in-order little, DynamIQ).
    A55,
    /// Cortex-A73 (out-of-order big, Exynos 7884).
    A73,
    /// Cortex-A75 (Snapdragon 845 "Kryo 385 Gold").
    A75,
    /// Cortex-A76 (SD675 / SD855).
    A76,
    /// Cortex-A78 (SD888 "Kryo 680 Gold").
    A78,
    /// Cortex-X1 (SD888 prime core).
    X1,
}

impl CoreType {
    /// Peak f32 FLOPs per cycle (NEON FMA lanes × issue width).
    pub const fn flops_per_cycle(self) -> f64 {
        match self {
            CoreType::A53 => 4.0,
            CoreType::A55 => 8.0,
            CoreType::A73 => 8.0,
            // Two NEON pipes like the A76, but shallower OoO window —
            // effective FMA issue lands below the A76 in practice.
            CoreType::A75 => 12.0,
            CoreType::A76 => 16.0,
            CoreType::A78 => 16.0,
            CoreType::X1 => 32.0,
        }
    }

    /// Dynamic power at maximum frequency, in watts (order-of-magnitude
    /// values from vendor power models).
    pub const fn max_power_w(self) -> f64 {
        match self {
            CoreType::A53 => 0.25,
            CoreType::A55 => 0.35,
            CoreType::A73 => 0.9,
            CoreType::A75 => 1.6,
            CoreType::A76 => 1.8,
            CoreType::A78 => 2.0,
            CoreType::X1 => 3.0,
        }
    }

    /// Whether this is an in-order LITTLE core. The cross-island scheduling
    /// penalty applies only when an inference spans the big/LITTLE class
    /// boundary — prime + gold clusters (e.g. SD855's two A76 islands)
    /// share a DSU and L3 and do not pay it.
    pub const fn is_little(self) -> bool {
        matches!(self, CoreType::A53 | CoreType::A55)
    }

    /// Short display name.
    pub const fn name(self) -> &'static str {
        match self {
            CoreType::A53 => "A53",
            CoreType::A55 => "A55",
            CoreType::A73 => "A73",
            CoreType::A75 => "A75",
            CoreType::A76 => "A76",
            CoreType::A78 => "A78",
            CoreType::X1 => "X1",
        }
    }
}

/// A homogeneous cluster of cores (one DynamIQ/big.LITTLE island).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreIsland {
    /// Microarchitecture.
    pub core: CoreType,
    /// Number of cores in the island.
    pub count: usize,
    /// Maximum frequency in GHz.
    pub freq_ghz: f64,
}

impl CoreIsland {
    /// Peak GFLOPS of a single core in this island.
    pub fn core_gflops(&self) -> f64 {
        self.core.flops_per_cycle() * self.freq_ghz
    }
}

/// An SoC: core islands (big first), memory system and accelerators.
#[derive(Debug, Clone, PartialEq)]
pub struct SocSpec {
    /// Marketing name, e.g. `"Snapdragon 888"`.
    pub name: &'static str,
    /// Core islands, ordered from biggest to littlest.
    pub islands: Vec<CoreIsland>,
    /// Sustained memory bandwidth available to one inference, GB/s.
    pub mem_bw_gbps: f64,
    /// Mobile GPU sustained f32 GFLOPS.
    pub gpu_gflops: f64,
    /// GPU power draw under inference load, watts.
    pub gpu_power_w: f64,
    /// DSP/NPU sustained int8 GOPS (0 when absent).
    pub dsp_gops: f64,
    /// DSP power draw under load, watts.
    pub dsp_power_w: f64,
    /// SoC idle floor (rails, interconnect), watts.
    pub idle_power_w: f64,
    /// Penalty factor applied when one inference's threads span more than
    /// one island (cache-coherence traffic across clusters + DVFS policy
    /// interactions — §6.2). 1.0 = no penalty.
    pub cross_island_factor: f64,
    /// Fraction of maximum CPU frequency the governor sustains under
    /// inference load (DVFS/EAS policies; older process nodes clock down
    /// harder — this is what separates the HDK generations as strongly as
    /// the paper measures).
    pub sustained_clock_factor: f64,
}

impl SocSpec {
    /// Total core count.
    pub fn core_count(&self) -> usize {
        self.islands.iter().map(|i| i.count).sum()
    }

    /// Per-core peak GFLOPS, big cores first (the "top N cores" ordering
    /// used by affinity pinning).
    pub fn cores_by_speed(&self) -> Vec<(CoreType, f64)> {
        let mut cores = Vec::with_capacity(self.core_count());
        for island in &self.islands {
            for _ in 0..island.count {
                cores.push((island.core, island.core_gflops()));
            }
        }
        cores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite speeds"));
        cores
    }

    /// Island index a given top-N core ordinal belongs to.
    pub fn island_of_core(&self, ordinal: usize) -> usize {
        let mut seen = 0;
        for (idx, island) in self.islands.iter().enumerate() {
            seen += island.count;
            if ordinal < seen {
                return idx;
            }
        }
        self.islands.len().saturating_sub(1)
    }
}

/// Market tier of a device (§5.1 groups results this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceTier {
    /// Budget phone (A20).
    Low,
    /// Mid-range phone (A70).
    Mid,
    /// Flagship phone (S21).
    High,
    /// Open-deck development board (HDKs).
    DevBoard,
}

/// Physical form of the device, which drives thermals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormFactor {
    /// Sealed phone chassis.
    Phone,
    /// Open-deck board with free airflow (HDKs, §5.1: "heat dissipation of
    /// the open design").
    OpenDeck,
}

/// A benchmark device (Table 1 row).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device name as used in the figures.
    pub name: &'static str,
    /// The SoC.
    pub soc: SocSpec,
    /// RAM in GB.
    pub ram_gb: u32,
    /// Battery capacity in mAh (None for externally-powered HDKs).
    pub battery_mah: Option<u32>,
    /// Market tier.
    pub tier: DeviceTier,
    /// Chassis form.
    pub form: FormFactor,
    /// Vendor software efficiency factor: the S21 runs a vendor Android
    /// build with more background load than the HDK's vanilla image
    /// (§5.1's same-SoC observation). 1.0 = vanilla.
    pub vendor_factor: f64,
    /// Screen power when held on during benchmarks (black screen, §3.3),
    /// watts. HDKs have no panel.
    pub screen_power_w: f64,
}

fn exynos_7884() -> SocSpec {
    SocSpec {
        name: "Exynos 7884",
        islands: vec![
            CoreIsland { core: CoreType::A73, count: 2, freq_ghz: 1.6 },
            CoreIsland { core: CoreType::A53, count: 6, freq_ghz: 1.35 },
        ],
        mem_bw_gbps: 5.5,
        gpu_gflops: 40.0,
        gpu_power_w: 0.9,
        dsp_gops: 0.0,
        dsp_power_w: 0.0,
        idle_power_w: 0.55,
        cross_island_factor: 0.95,
        sustained_clock_factor: 0.90,
    }
}

fn snapdragon_675() -> SocSpec {
    SocSpec {
        name: "Snapdragon 675",
        islands: vec![
            CoreIsland { core: CoreType::A76, count: 2, freq_ghz: 2.0 },
            CoreIsland { core: CoreType::A55, count: 6, freq_ghz: 1.7 },
        ],
        mem_bw_gbps: 11.0,
        gpu_gflops: 130.0,
        gpu_power_w: 1.2,
        dsp_gops: 100.0,
        dsp_power_w: 0.7,
        idle_power_w: 0.6,
        cross_island_factor: 0.62,
        sustained_clock_factor: 0.95,
    }
}

fn snapdragon_845() -> SocSpec {
    SocSpec {
        name: "Snapdragon 845",
        islands: vec![
            CoreIsland { core: CoreType::A75, count: 4, freq_ghz: 2.8 },
            CoreIsland { core: CoreType::A55, count: 4, freq_ghz: 1.77 },
        ],
        mem_bw_gbps: 10.0,
        gpu_gflops: 520.0,
        gpu_power_w: 1.7,
        dsp_gops: 256.0,
        dsp_power_w: 0.9,
        idle_power_w: 0.7,
        cross_island_factor: 0.8,
        sustained_clock_factor: 0.65,
    }
}

fn snapdragon_855() -> SocSpec {
    SocSpec {
        name: "Snapdragon 855",
        islands: vec![
            CoreIsland { core: CoreType::A76, count: 1, freq_ghz: 2.84 },
            CoreIsland { core: CoreType::A76, count: 3, freq_ghz: 2.42 },
            CoreIsland { core: CoreType::A55, count: 4, freq_ghz: 1.8 },
        ],
        mem_bw_gbps: 13.0,
        gpu_gflops: 700.0,
        gpu_power_w: 1.9,
        dsp_gops: 512.0,
        dsp_power_w: 1.0,
        idle_power_w: 0.72,
        cross_island_factor: 0.82,
        sustained_clock_factor: 0.78,
    }
}

fn snapdragon_888() -> SocSpec {
    SocSpec {
        name: "Snapdragon 888",
        islands: vec![
            CoreIsland { core: CoreType::X1, count: 1, freq_ghz: 2.84 },
            CoreIsland { core: CoreType::A78, count: 3, freq_ghz: 2.42 },
            CoreIsland { core: CoreType::A55, count: 4, freq_ghz: 1.8 },
        ],
        mem_bw_gbps: 24.0,
        gpu_gflops: 1200.0,
        gpu_power_w: 2.4,
        dsp_gops: 1024.0,
        dsp_power_w: 1.2,
        idle_power_w: 0.8,
        cross_island_factor: 0.85,
        sustained_clock_factor: 0.95,
    }
}

/// The three phone devices of Table 1 (tiers low → high).
pub fn phones() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec {
            name: "A20",
            soc: exynos_7884(),
            ram_gb: 4,
            battery_mah: Some(4000),
            tier: DeviceTier::Low,
            form: FormFactor::Phone,
            vendor_factor: 0.95,
            screen_power_w: 0.45,
        },
        DeviceSpec {
            name: "A70",
            soc: snapdragon_675(),
            ram_gb: 6,
            battery_mah: Some(4500),
            tier: DeviceTier::Mid,
            form: FormFactor::Phone,
            vendor_factor: 0.95,
            screen_power_w: 0.5,
        },
        DeviceSpec {
            name: "S21",
            soc: snapdragon_888(),
            ram_gb: 8,
            battery_mah: Some(4000),
            tier: DeviceTier::High,
            form: FormFactor::Phone,
            vendor_factor: 0.93,
            screen_power_w: 0.55,
        },
    ]
}

/// The three Qualcomm HDK boards of Table 1 (generations 845 → 888).
pub fn hdks() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec {
            name: "Q845",
            soc: snapdragon_845(),
            ram_gb: 8,
            battery_mah: Some(2850),
            tier: DeviceTier::DevBoard,
            form: FormFactor::OpenDeck,
            vendor_factor: 1.0,
            screen_power_w: 0.4,
        },
        DeviceSpec {
            name: "Q855",
            soc: snapdragon_855(),
            ram_gb: 8,
            battery_mah: None,
            tier: DeviceTier::DevBoard,
            form: FormFactor::OpenDeck,
            vendor_factor: 1.0,
            screen_power_w: 0.4,
        },
        DeviceSpec {
            name: "Q888",
            soc: snapdragon_888(),
            ram_gb: 8,
            battery_mah: None,
            tier: DeviceTier::DevBoard,
            form: FormFactor::OpenDeck,
            vendor_factor: 1.0,
            screen_power_w: 0.4,
        },
    ]
}

/// All six Table 1 devices, phones first.
pub fn all_devices() -> Vec<DeviceSpec> {
    let mut v = phones();
    v.extend(hdks());
    v
}

/// Find a device by name.
pub fn device(name: &str) -> Option<DeviceSpec> {
    all_devices().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_roster() {
        let devs = all_devices();
        assert_eq!(devs.len(), 6);
        let names: Vec<&str> = devs.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["A20", "A70", "S21", "Q845", "Q855", "Q888"]);
        // Battery capacities from Table 1.
        assert_eq!(device("A20").unwrap().battery_mah, Some(4000));
        assert_eq!(device("A70").unwrap().battery_mah, Some(4500));
        assert_eq!(device("Q845").unwrap().battery_mah, Some(2850));
        assert_eq!(device("Q855").unwrap().battery_mah, None);
    }

    #[test]
    fn q888_matches_paper_topology() {
        // §6.2: "Q888 has 1×X1, 3×A78, 4×A55".
        let q888 = device("Q888").unwrap();
        let islands = &q888.soc.islands;
        assert_eq!(islands.len(), 3);
        assert_eq!((islands[0].core, islands[0].count), (CoreType::X1, 1));
        assert_eq!((islands[1].core, islands[1].count), (CoreType::A78, 3));
        assert_eq!((islands[2].core, islands[2].count), (CoreType::A55, 4));
        assert_eq!(q888.soc.core_count(), 8);
    }

    #[test]
    fn cores_sorted_big_first() {
        let s21 = device("S21").unwrap();
        let cores = s21.soc.cores_by_speed();
        assert_eq!(cores.len(), 8);
        assert_eq!(cores[0].0, CoreType::X1);
        assert!(cores.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn island_of_core_maps_ordinals() {
        let s21 = device("S21").unwrap();
        assert_eq!(s21.soc.island_of_core(0), 0); // X1
        assert_eq!(s21.soc.island_of_core(1), 1); // A78
        assert_eq!(s21.soc.island_of_core(3), 1);
        assert_eq!(s21.soc.island_of_core(4), 2); // A55
        assert_eq!(s21.soc.island_of_core(7), 2);
    }

    #[test]
    fn generations_get_monotonic_resources() {
        let q845 = device("Q845").unwrap().soc;
        let q855 = device("Q855").unwrap().soc;
        let q888 = device("Q888").unwrap().soc;
        assert!(q845.mem_bw_gbps < q855.mem_bw_gbps);
        assert!(q855.mem_bw_gbps < q888.mem_bw_gbps);
        assert!(q845.dsp_gops < q855.dsp_gops);
        assert!(q845.gpu_gflops < q888.gpu_gflops);
    }

    #[test]
    fn s21_and_q888_share_soc_but_differ_in_form() {
        let s21 = device("S21").unwrap();
        let q888 = device("Q888").unwrap();
        assert_eq!(s21.soc, q888.soc);
        assert_ne!(s21.form, q888.form);
        assert!(s21.vendor_factor < q888.vendor_factor);
    }
}
