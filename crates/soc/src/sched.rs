//! CPU thread placement model (§6.2, Fig. 12).
//!
//! TFLite-style inference splits each operator across a thread pool. The
//! achievable throughput of that pool depends on which cores the Android
//! scheduler lands the threads on, whether the set spans big.LITTLE
//! islands, synchronisation overheads that grow with thread count, and
//! time-sharing when pinned to fewer cores than threads. This module turns
//! a [`ThreadConfig`] into an effective-GFLOPS figure for a device.

use crate::spec::{CoreType, DeviceSpec};
use crate::{Result, SocError};

/// A benchmark CPU configuration: thread count plus optional affinity to
/// the top-N cores (the paper's `4a2` notation = 4 threads on top 2 cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadConfig {
    /// Worker thread count.
    pub threads: usize,
    /// When set, threads are pinned to the `n` biggest cores.
    pub affinity_top: Option<usize>,
}

impl ThreadConfig {
    /// Unpinned configuration with `threads` workers.
    pub fn unpinned(threads: usize) -> Self {
        ThreadConfig {
            threads,
            affinity_top: None,
        }
    }

    /// Pinned configuration: `threads` workers on the top `cores` cores.
    pub fn pinned(threads: usize, cores: usize) -> Self {
        ThreadConfig {
            threads,
            affinity_top: Some(cores),
        }
    }

    /// Paper-style label: `4`, `4a2`, …
    pub fn label(&self) -> String {
        match self.affinity_top {
            Some(a) => format!("{}a{}", self.threads, a),
            None => format!("{}", self.threads),
        }
    }
}

/// Synchronisation efficiency of an N-thread operator fork/join. Values
/// fitted to the Fig. 12 shape: near-linear to 4 threads, collapsing at 8.
fn sync_efficiency(threads: usize) -> f64 {
    match threads {
        0 | 1 => 1.0,
        2 => 0.92,
        3 => 0.86,
        4 => 0.80,
        5 => 0.68,
        6 => 0.58,
        7 => 0.50,
        _ => 0.42,
    }
}

/// Resolved thread placement.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The configuration that produced this assignment.
    pub config: ThreadConfig,
    /// `(core type, peak GFLOPS)` of each core hosting at least one thread.
    pub cores: Vec<(CoreType, f64)>,
    /// Aggregate effective GFLOPS after all penalties.
    pub effective_gflops: f64,
    /// Aggregate active-core power draw at full load, watts.
    pub active_power_w: f64,
    /// Whether the placement spans multiple islands.
    pub spans_islands: bool,
    /// Whether threads outnumber distinct cores (time-sharing).
    pub time_shared: bool,
}

/// Place `config` threads on `device` and compute effective throughput.
pub fn assign(device: &DeviceSpec, config: ThreadConfig) -> Result<Assignment> {
    let soc = &device.soc;
    if config.threads == 0 {
        return Err(SocError::BadConfig("thread count must be >= 1".into()));
    }
    if let Some(a) = config.affinity_top {
        if a == 0 || a > soc.core_count() {
            return Err(SocError::BadConfig(format!(
                "affinity {a} outside 1..={}",
                soc.core_count()
            )));
        }
    }
    let all = soc.cores_by_speed();
    let avail = config.affinity_top.unwrap_or(soc.core_count()).min(all.len());
    // The scheduler fills the biggest cores first (performance governor
    // during benchmarks — the device-state assertions of §3.3).
    let used = config.threads.min(avail);
    let cores: Vec<(CoreType, f64)> = all[..used].to_vec();
    let time_shared = config.threads > avail;

    // The penalty boundary is the big/LITTLE class split, not every
    // DynamIQ island: prime+gold clusters share a DSU and L3.
    let has_big = cores.iter().any(|(c, _)| !c.is_little());
    let has_little = cores.iter().any(|(c, _)| c.is_little());
    let spans_islands = has_big && has_little;

    let raw: f64 = cores.iter().map(|(_, g)| g).sum();
    let mut eff = raw * sync_efficiency(config.threads);
    if spans_islands {
        eff *= soc.cross_island_factor;
    }
    if time_shared {
        // Oversubscription: context-switch churn on top of getting no extra
        // silicon. §6.2: "4a2 and 8a4 result in significant performance
        // degradation … due to time-sharing".
        eff *= 0.55;
    }
    if config.affinity_top.is_some() && !time_shared {
        // Pinning prevents migration but also blocks the scheduler's
        // load-balancing; measured as a slight loss (§6.2: "4a4 performs
        // worse to 4 threads").
        eff *= 0.96;
    }
    eff *= device.vendor_factor * soc.sustained_clock_factor;

    let active_power_w: f64 = cores.iter().map(|(c, _)| c.max_power_w()).sum();
    Ok(Assignment {
        config,
        cores,
        effective_gflops: eff,
        active_power_w,
        spans_islands,
        time_shared,
    })
}

/// Effective GFLOPS of a co-habitation tenant running `count` threads on
/// cores `[start, start + count)` of the big-first ordering (the §8.1
/// study: a second DNN inherits whatever cores the first left free).
pub fn assign_slice(device: &DeviceSpec, start: usize, count: usize) -> Result<Assignment> {
    let soc = &device.soc;
    let all = soc.cores_by_speed();
    if count == 0 || start + count > all.len() {
        return Err(SocError::BadConfig(format!(
            "core slice [{start}, {}) outside 0..{}",
            start + count,
            all.len()
        )));
    }
    let cores: Vec<(CoreType, f64)> = all[start..start + count].to_vec();
    let has_big = cores.iter().any(|(c, _)| !c.is_little());
    let has_little = cores.iter().any(|(c, _)| c.is_little());
    let spans_islands = has_big && has_little;
    let raw: f64 = cores.iter().map(|(_, g)| g).sum();
    let mut eff = raw * sync_efficiency(count);
    if spans_islands {
        eff *= soc.cross_island_factor;
    }
    eff *= device.vendor_factor * soc.sustained_clock_factor;
    let active_power_w: f64 = cores.iter().map(|(c, _)| c.max_power_w()).sum();
    Ok(Assignment {
        config: ThreadConfig::pinned(count, start + count),
        cores,
        effective_gflops: eff,
        active_power_w,
        spans_islands,
        time_shared: false,
    })
}

/// The default benchmark configuration (4 threads, unpinned) used for the
/// headline latency figures.
pub fn default_config() -> ThreadConfig {
    ThreadConfig::unpinned(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::device;

    fn eff(name: &str, cfg: ThreadConfig) -> f64 {
        assign(&device(name).unwrap(), cfg).unwrap().effective_gflops
    }

    #[test]
    fn optimal_thread_counts_match_fig12() {
        // §6.2: "A20, A70 and S21 performing better with 4, 2 and 4
        // threads, respectively".
        for (dev, best) in [("A20", 4usize), ("A70", 2), ("S21", 4)] {
            let candidates = [2usize, 4, 8];
            let winner = candidates
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    eff(dev, ThreadConfig::unpinned(a))
                        .partial_cmp(&eff(dev, ThreadConfig::unpinned(b)))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(winner, best, "{dev}");
        }
    }

    #[test]
    fn eight_threads_collapse() {
        // "the 8-threaded performance drops significantly across devices".
        for dev in ["A20", "A70", "S21"] {
            let best = eff(dev, ThreadConfig::unpinned(2)).max(eff(dev, ThreadConfig::unpinned(4)));
            assert!(
                eff(dev, ThreadConfig::unpinned(8)) < best,
                "{dev}: 8 threads should underperform"
            );
        }
    }

    #[test]
    fn oversubscribed_affinity_degrades() {
        // 4a2 and 8a4 must lose badly to their unpinned counterparts.
        for dev in ["A20", "A70", "S21"] {
            assert!(
                eff(dev, ThreadConfig::pinned(4, 2)) < eff(dev, ThreadConfig::unpinned(4)),
                "{dev} 4a2"
            );
            assert!(
                eff(dev, ThreadConfig::pinned(8, 4)) < eff(dev, ThreadConfig::unpinned(4)),
                "{dev} 8a4"
            );
        }
    }

    #[test]
    fn matched_affinity_no_gain() {
        // "setting the affinity to the same number of top cores does not
        // yield any significant gain … 4a4 performs worse to 4 threads".
        for dev in ["A20", "A70", "S21"] {
            let pinned = eff(dev, ThreadConfig::pinned(4, 4));
            let unpinned = eff(dev, ThreadConfig::unpinned(4));
            assert!(pinned <= unpinned, "{dev}");
            assert!(pinned > 0.85 * unpinned, "{dev}: 4a4 should be close to 4");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = device("A20").unwrap();
        assert!(assign(&d, ThreadConfig::unpinned(0)).is_err());
        assert!(assign(&d, ThreadConfig::pinned(2, 0)).is_err());
        assert!(assign(&d, ThreadConfig::pinned(2, 99)).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(ThreadConfig::unpinned(4).label(), "4");
        assert_eq!(ThreadConfig::pinned(4, 2).label(), "4a2");
    }

    #[test]
    fn assignment_flags() {
        let d = device("S21").unwrap();
        let a = assign(&d, ThreadConfig::unpinned(8)).unwrap();
        assert!(a.spans_islands); // big cores + A55 LITTLEs
        assert!(!a.time_shared);
        let b = assign(&d, ThreadConfig::pinned(4, 2)).unwrap();
        assert!(b.time_shared);
        let c = assign(&d, ThreadConfig::pinned(1, 1)).unwrap();
        assert!(!c.spans_islands);
        assert_eq!(c.cores.len(), 1);
    }

    #[test]
    fn power_scales_with_cores() {
        let d = device("Q845").unwrap();
        let p1 = assign(&d, ThreadConfig::unpinned(1)).unwrap().active_power_w;
        let p4 = assign(&d, ThreadConfig::unpinned(4)).unwrap().active_power_w;
        assert!(p4 > 2.0 * p1);
    }
}
