//! Cloud-offloading latency model (§6.4, §8.1).
//!
//! The paper observes developers "resorting to cloud-powered inference"
//! because it "offers a consistent QoE, which is not dependent on the
//! target device, at the expense of privacy and monetary cost". This
//! module makes that trade-off measurable: an offloaded inference pays the
//! network round-trip and payload transfer but runs on datacenter silicon
//! whose speed does not vary with the handset.

use crate::thermal::ThermalState;
use crate::{Backend, DeviceSpec, Result};
use gaugenn_dnn::trace::TraceReport;

/// A mobile network condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkProfile {
    /// Display name.
    pub name: &'static str,
    /// Uplink throughput, Mbit/s.
    pub uplink_mbps: f64,
    /// Downlink throughput, Mbit/s.
    pub downlink_mbps: f64,
    /// Round-trip time to the inference endpoint, ms.
    pub rtt_ms: f64,
}

/// Typical 2021 network conditions.
pub const NETWORKS: [NetworkProfile; 3] = [
    NetworkProfile { name: "WiFi", uplink_mbps: 50.0, downlink_mbps: 100.0, rtt_ms: 12.0 },
    NetworkProfile { name: "LTE", uplink_mbps: 10.0, downlink_mbps: 30.0, rtt_ms: 45.0 },
    NetworkProfile { name: "HSPA", uplink_mbps: 1.5, downlink_mbps: 6.0, rtt_ms: 90.0 },
];

/// The cloud endpoint: a datacenter accelerator behind an API.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloudSpec {
    /// Sustained effective GFLOPS the service dedicates per request.
    pub effective_gflops: f64,
    /// Fixed service overhead per request (queueing, deserialisation), ms.
    pub service_overhead_ms: f64,
}

impl Default for CloudSpec {
    fn default() -> Self {
        // A slice of a datacenter GPU — orders of magnitude above any
        // 2021 handset, which is the whole point.
        CloudSpec {
            effective_gflops: 2000.0,
            service_overhead_ms: 5.0,
        }
    }
}

/// Input payload bytes of a model (the first layer's activation traffic,
/// excluding weights). JPEG-style compression of camera inputs is left to
/// the caller via `compression_ratio`.
pub fn input_bytes(trace: &TraceReport) -> u64 {
    trace
        .layers
        .first()
        .map(|l| l.bytes_read - l.weight_bytes)
        .unwrap_or(0)
}

/// Output payload bytes (the last layer's written activations).
pub fn output_bytes(trace: &TraceReport) -> u64 {
    trace.layers.last().map(|l| l.bytes_written).unwrap_or(0)
}

/// End-to-end offloaded-inference latency in milliseconds.
pub fn offload_latency_ms(
    trace: &TraceReport,
    network: &NetworkProfile,
    cloud: &CloudSpec,
    compression_ratio: f64,
) -> f64 {
    let up_bits = input_bytes(trace) as f64 * 8.0 / compression_ratio.max(1.0);
    let down_bits = output_bytes(trace) as f64 * 8.0;
    let upload_ms = up_bits / (network.uplink_mbps * 1e6) * 1e3;
    let download_ms = down_bits / (network.downlink_mbps * 1e6) * 1e3;
    let compute_ms = trace.total_flops as f64 / (cloud.effective_gflops * 1e9) * 1e3;
    network.rtt_ms + upload_ms + compute_ms + download_ms + cloud.service_overhead_ms
}

/// Compare local vs offloaded execution for one model on one device.
///
/// Returns `(local_ms, offload_ms)`; the caller decides the policy.
pub fn compare(
    device: &DeviceSpec,
    backend: Backend,
    trace: &TraceReport,
    network: &NetworkProfile,
    cloud: &CloudSpec,
    compression_ratio: f64,
) -> Result<(f64, f64)> {
    let local = crate::estimate_latency(device, backend, trace, &ThermalState::cool())?;
    Ok((
        local.total_ms,
        offload_latency_ms(trace, network, cloud, compression_ratio),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ThreadConfig;
    use crate::spec::device;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::trace::trace_graph;
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    fn tr(task: Task, size: SizeClass) -> TraceReport {
        trace_graph(&build_for_task(task, 9, size, true).graph).unwrap()
    }

    fn cpu4() -> Backend {
        Backend::Cpu(ThreadConfig::unpinned(4))
    }

    #[test]
    fn payload_accessors_positive_for_vision() {
        let t = tr(Task::ImageClassification, SizeClass::Small);
        assert!(input_bytes(&t) > 0);
        assert!(output_bytes(&t) > 0);
        assert!(input_bytes(&t) > output_bytes(&t), "image in, logits out");
    }

    #[test]
    fn heavy_model_on_weak_device_prefers_cloud() {
        let t = tr(Task::SemanticSegmentation, SizeClass::Large);
        let a20 = device("A20").unwrap();
        let wifi = &NETWORKS[0];
        let (local, cloud) = compare(&a20, cpu4(), &t, wifi, &CloudSpec::default(), 20.0).unwrap();
        assert!(cloud < local, "offload {cloud} should beat A20 local {local}");
    }

    #[test]
    fn tiny_model_on_flagship_prefers_local() {
        let t = tr(Task::AutoComplete, SizeClass::Small);
        let s21 = device("S21").unwrap();
        let hspa = &NETWORKS[2];
        let (local, cloud) = compare(&s21, cpu4(), &t, hspa, &CloudSpec::default(), 1.0).unwrap();
        assert!(local < cloud, "local {local} should beat offload {cloud} over HSPA");
    }

    #[test]
    fn offload_latency_is_device_independent() {
        // The §6.4 QoE point: the cloud number does not change with the
        // handset.
        let t = tr(Task::ObjectDetection, SizeClass::Medium);
        let wifi = &NETWORKS[0];
        let x = offload_latency_ms(&t, wifi, &CloudSpec::default(), 20.0);
        let y = offload_latency_ms(&t, wifi, &CloudSpec::default(), 20.0);
        assert_eq!(x, y);
    }

    #[test]
    fn slower_networks_raise_offload_cost_monotonically() {
        let t = tr(Task::FaceDetection, SizeClass::Small);
        let c = CloudSpec::default();
        let wifi = offload_latency_ms(&t, &NETWORKS[0], &c, 20.0);
        let lte = offload_latency_ms(&t, &NETWORKS[1], &c, 20.0);
        let hspa = offload_latency_ms(&t, &NETWORKS[2], &c, 20.0);
        assert!(wifi < lte);
        assert!(lte < hspa);
    }

    #[test]
    fn compression_reduces_upload_cost() {
        let t = tr(Task::SemanticSegmentation, SizeClass::Small);
        let c = CloudSpec::default();
        let raw = offload_latency_ms(&t, &NETWORKS[2], &c, 1.0);
        let jpeg = offload_latency_ms(&t, &NETWORKS[2], &c, 20.0);
        assert!(jpeg < raw);
    }
}
