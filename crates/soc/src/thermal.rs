//! Thermal model: sustained load raises die temperature; past a threshold
//! the governor throttles frequency. Open-deck boards shed heat faster than
//! sealed phones (§5.1's Q888-vs-S21 gap; §5.2.2's hour-long scenarios are
//! where this matters most).

use crate::spec::{DeviceSpec, FormFactor};

/// Ambient temperature assumed by the model, °C.
pub const AMBIENT_C: f64 = 25.0;
/// Die temperature where throttling begins, °C.
pub const THROTTLE_START_C: f64 = 65.0;
/// Die temperature of maximum throttle, °C.
pub const THROTTLE_FULL_C: f64 = 95.0;
/// Throughput factor at maximum throttle.
pub const MIN_THROTTLE: f64 = 0.45;

/// Mutable thermal state of a device under test.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalState {
    /// Current die temperature, °C.
    pub temp_c: f64,
}

impl ThermalState {
    /// A device at ambient temperature (benchmarks with inter-experiment
    /// sleeps, §3.3).
    pub fn cool() -> Self {
        ThermalState { temp_c: AMBIENT_C }
    }

    /// Current throughput multiplier in `[MIN_THROTTLE, 1.0]`.
    pub fn throttle_factor(&self, _device: &DeviceSpec) -> f64 {
        if self.temp_c <= THROTTLE_START_C {
            1.0
        } else if self.temp_c >= THROTTLE_FULL_C {
            MIN_THROTTLE
        } else {
            let t = (self.temp_c - THROTTLE_START_C) / (THROTTLE_FULL_C - THROTTLE_START_C);
            1.0 - t * (1.0 - MIN_THROTTLE)
        }
    }

    /// Advance the state by `dt_s` seconds of dissipating `power_w` watts.
    ///
    /// First-order lumped model: `C dT/dt = P - k (T - ambient)`, with the
    /// dissipation constant `k` depending on the chassis.
    pub fn step(&mut self, device: &DeviceSpec, power_w: f64, dt_s: f64) {
        let k = match device.form {
            FormFactor::Phone => 0.10,     // W per °C of headroom
            FormFactor::OpenDeck => 0.22, // free airflow
        };
        let heat_capacity = 28.0; // J per °C, phone-scale thermal mass
        // Integrate in sub-steps for stability on long scenarios.
        let mut remaining = dt_s;
        while remaining > 0.0 {
            let step = remaining.min(1.0);
            let d_temp = (power_w - k * (self.temp_c - AMBIENT_C)) / heat_capacity * step;
            self.temp_c = (self.temp_c + d_temp).max(AMBIENT_C);
            remaining -= step;
        }
    }

    /// Equilibrium temperature under a constant load.
    pub fn steady_state_c(device: &DeviceSpec, power_w: f64) -> f64 {
        let k = match device.form {
            FormFactor::Phone => 0.10,
            FormFactor::OpenDeck => 0.22,
        };
        AMBIENT_C + power_w / k
    }
}

impl Default for ThermalState {
    fn default() -> Self {
        Self::cool()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::device;

    #[test]
    fn cool_state_never_throttles() {
        let d = device("S21").unwrap();
        assert_eq!(ThermalState::cool().throttle_factor(&d), 1.0);
    }

    #[test]
    fn throttle_interpolates() {
        let d = device("S21").unwrap();
        let mid = ThermalState {
            temp_c: (THROTTLE_START_C + THROTTLE_FULL_C) / 2.0,
        };
        let f = mid.throttle_factor(&d);
        assert!(f < 1.0 && f > MIN_THROTTLE);
        let hot = ThermalState { temp_c: 120.0 };
        assert_eq!(hot.throttle_factor(&d), MIN_THROTTLE);
    }

    #[test]
    fn sustained_load_heats_phone_more_than_open_deck() {
        let s21 = device("S21").unwrap();
        let q888 = device("Q888").unwrap();
        let mut phone = ThermalState::cool();
        let mut deck = ThermalState::cool();
        // 10 minutes at 6 W — a segmentation-style sustained load.
        phone.step(&s21, 6.0, 600.0);
        deck.step(&q888, 6.0, 600.0);
        assert!(phone.temp_c > deck.temp_c);
        assert!(phone.temp_c > THROTTLE_START_C, "phone should be throttling");
    }

    #[test]
    fn cooling_returns_to_ambient() {
        let d = device("S21").unwrap();
        let mut s = ThermalState { temp_c: 80.0 };
        s.step(&d, 0.0, 10_000.0);
        assert!((s.temp_c - AMBIENT_C).abs() < 1.0);
    }

    #[test]
    fn steady_state_sanity() {
        let s21 = device("S21").unwrap();
        let q888 = device("Q888").unwrap();
        assert!(ThermalState::steady_state_c(&s21, 5.0) > ThermalState::steady_state_c(&q888, 5.0));
        assert_eq!(ThermalState::steady_state_c(&s21, 0.0), AMBIENT_C);
    }

    #[test]
    fn step_is_stable_over_long_durations() {
        let d = device("A20").unwrap();
        let mut s = ThermalState::cool();
        s.step(&d, 4.0, 3600.0);
        assert!(s.temp_c.is_finite());
        assert!(s.temp_c < 120.0, "bounded near steady state, got {}", s.temp_c);
    }
}
