//! # gaugenn-soc — mobile SoC performance model
//!
//! The paper benchmarks models on six physical devices (Table 1): three
//! Samsung phones spanning market tiers and three Qualcomm HDK boards
//! spanning SoC generations. Physical hardware is unavailable here, so this
//! crate substitutes an analytic device model that reproduces the *shapes*
//! the paper measures:
//!
//! * FLOPs is a poor latency proxy (Fig. 8) — the roofline in [`latency`]
//!   makes memory-bound layers (depthwise convs, activations, small GEMMs)
//!   decouple latency from FLOPs, differently per device.
//! * Tier and generation gaps (Fig. 9) emerge from core microarchitectures,
//!   frequencies and memory bandwidth in [`spec`].
//! * Thread-count/affinity behaviour (Fig. 12) comes from the island-aware
//!   scheduler model in [`sched`].
//! * Backend deltas (Figs. 13–14) come from per-backend operator support
//!   and engine characteristics in [`backend`].
//! * Sustained-load throttling comes from [`thermal`] (open-deck HDKs
//!   dissipate better than phones — §5.1's Q888-vs-S21 observation).
//! * [`cohab`] implements the §8.1 "DNN co-habitation" future-work study:
//!   two models contending for cores and bandwidth on one SoC.
//! * [`offload`] models the §6.4 cloud-offloading trade-off: network
//!   round-trips and payload transfer against device-independent
//!   datacenter compute.
//!
//! Nothing in this crate reads a wall clock: latency is a pure function of
//! (model trace, device, configuration), which is what makes every figure
//! reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cohab;
pub mod latency;
pub mod offload;
pub mod sched;
pub mod spec;
pub mod thermal;

pub use backend::{Backend, SnpeTarget};
pub use latency::{estimate_latency, LatencyBreakdown};
pub use sched::ThreadConfig;
pub use spec::{all_devices, DeviceSpec, DeviceTier, SocSpec};

/// Errors from the SoC model.
#[derive(Debug, Clone, PartialEq)]
pub enum SocError {
    /// The requested backend cannot run this model (operator unsupported —
    /// the "rudimentary support for operators across heterogeneous targets"
    /// of §6.3).
    Unsupported {
        /// Backend that rejected the model.
        backend: String,
        /// The offending layer family.
        layer: String,
    },
    /// Invalid thread/affinity configuration.
    BadConfig(String),
    /// The model trace is empty or malformed.
    BadTrace(String),
}

impl std::fmt::Display for SocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SocError::Unsupported { backend, layer } => {
                write!(f, "backend {backend} does not support layer family '{layer}'")
            }
            SocError::BadConfig(r) => write!(f, "bad configuration: {r}"),
            SocError::BadTrace(r) => write!(f, "bad trace: {r}"),
        }
    }
}

impl std::error::Error for SocError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SocError>;
