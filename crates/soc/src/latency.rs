//! Roofline latency model.
//!
//! Each layer's time is the maximum of its compute time (FLOPs over the
//! engine's effective throughput, scaled by a per-family utilisation) and
//! its memory time (bytes moved over the memory system's bandwidth), plus a
//! per-layer dispatch overhead. This is what makes FLOPs a poor latency
//! proxy (Fig. 8): two models with identical FLOPs but different
//! depthwise/dense/helper-layer mixes land on different sides of the
//! roofline knee — and land differently on different devices.

use crate::backend::{Backend, SnpeTarget};
use crate::sched::{assign, Assignment};
use crate::spec::DeviceSpec;
use crate::thermal::ThermalState;
use crate::{Result, SocError};
use gaugenn_dnn::trace::TraceReport;

/// Fraction of peak an engine achieves on each layer family.
///
/// These are calibrated to *measured* 2021 mobile-framework throughput,
/// not to hardware peaks: TFLite's CPU path delivered single-digit
/// effective GFLOPS on flagship SoCs. The calibration anchor is the
/// paper's efficiency medians (730/765/873 MFLOP/s/W on Q845/Q855/Q888,
/// Fig. 10c), which pin effective-GFLOPS-per-watt directly.
fn cpu_utilization(family: &str) -> f64 {
    match family {
        "conv" => 0.070,
        "depth_conv" => 0.030, // memory-bound in practice
        "dense" => 0.055,
        "recurrent" => 0.012, // sequential dependency chain
        "pool" => 0.020,
        "activation" | "math" | "norm" => 0.020,
        "quant" => 0.030,
        _ => 0.020, // concat/reshape/resize/slice/pad/embedding: traffic-bound
    }
}

/// GPU fractions anchored to §6.3: the vanilla GPU path ~1.9× and
/// SNPE-GPU 2.28× faster than CPU on average.
fn gpu_utilization(family: &str) -> f64 {
    match family {
        "conv" => 0.020,
        "depth_conv" => 0.007,
        "dense" => 0.014,
        "pool" => 0.006,
        _ => 0.006,
    }
}

/// Hexagon fractions anchored to §6.3: SNPE-DSP 5.72× faster and 20.3×
/// more efficient than CPU on average (int8).
fn dsp_utilization(family: &str) -> f64 {
    match family {
        "conv" => 0.055,
        "depth_conv" => 0.028,
        "dense" => 0.045,
        "pool" => 0.015,
        _ => 0.012,
    }
}

/// Tensor-shape utilisation factor: narrow channel counts waste SIMD lanes
/// and small spatial extents starve the thread pool. This is one of the
/// §5.1 reasons FLOPs decouples from latency ("underutilisation of
/// hardware"): two models with equal FLOPs but different tensor shapes run
/// at different fractions of peak.
fn shape_efficiency(out_shape: &gaugenn_dnn::tensor::Shape) -> f64 {
    let c = out_shape.channels().max(1) as f64;
    let per_sample = out_shape.elems_per_sample().max(1) as f64;
    let lane_eff = (c / 48.0).clamp(0.30, 1.0).sqrt();
    let parallel_eff = (per_sample / 4096.0).clamp(0.40, 1.0).powf(0.25);
    lane_eff * parallel_eff
}

/// Resolved execution engine characteristics for one (device, backend).
#[derive(Debug, Clone)]
pub struct Engine {
    /// Peak GFLOPS (or int8 GOPS for the DSP) after scheduling penalties.
    pub peak_gflops: f64,
    /// Memory bandwidth share in GB/s.
    pub mem_bw_gbps: f64,
    /// Active power draw of the engine at load, watts.
    pub active_power_w: f64,
    /// CPU assignment (present for CPU-pool backends).
    pub assignment: Option<Assignment>,
}

/// Resolve the engine for a backend on a device.
pub fn engine_for(device: &DeviceSpec, backend: Backend) -> Result<Engine> {
    match backend {
        Backend::Cpu(cfg) | Backend::Xnnpack(cfg) => {
            let a = assign(device, cfg)?;
            Ok(Engine {
                peak_gflops: a.effective_gflops,
                mem_bw_gbps: device.soc.mem_bw_gbps,
                active_power_w: a.active_power_w,
                assignment: Some(a),
            })
        }
        Backend::Snpe(SnpeTarget::Cpu) => {
            let a = assign(device, crate::sched::default_config())?;
            Ok(Engine {
                peak_gflops: a.effective_gflops,
                mem_bw_gbps: device.soc.mem_bw_gbps,
                active_power_w: a.active_power_w,
                assignment: Some(a),
            })
        }
        Backend::Nnapi => {
            // NNAPI on the Q845-era driver lands on the CPU path through
            // the HAL (§6.3: "unoptimised NN drivers from the vendor").
            let a = assign(device, crate::sched::default_config())?;
            Ok(Engine {
                peak_gflops: a.effective_gflops,
                mem_bw_gbps: device.soc.mem_bw_gbps * 0.8,
                active_power_w: a.active_power_w * 1.1,
                assignment: Some(a),
            })
        }
        Backend::Gpu => Ok(Engine {
            peak_gflops: device.soc.gpu_gflops * device.vendor_factor,
            mem_bw_gbps: device.soc.mem_bw_gbps * 0.9,
            active_power_w: device.soc.gpu_power_w,
            assignment: None,
        }),
        Backend::Snpe(SnpeTarget::Gpu) => Ok(Engine {
            peak_gflops: device.soc.gpu_gflops * device.vendor_factor,
            mem_bw_gbps: device.soc.mem_bw_gbps * 0.9,
            active_power_w: device.soc.gpu_power_w,
            assignment: None,
        }),
        Backend::Snpe(SnpeTarget::Dsp) => {
            if device.soc.dsp_gops <= 0.0 {
                return Err(SocError::Unsupported {
                    backend: backend.name(),
                    layer: "(no DSP on this SoC)".into(),
                });
            }
            Ok(Engine {
                peak_gflops: device.soc.dsp_gops * device.vendor_factor,
                // Hexagon has dedicated DMA engines into shared DRAM.
                mem_bw_gbps: device.soc.mem_bw_gbps,
                active_power_w: device.soc.dsp_power_w,
                assignment: None,
            })
        }
    }
}

/// Per-layer latency record.
#[derive(Debug, Clone)]
pub struct LayerLatency {
    /// Layer name.
    pub name: String,
    /// Layer family.
    pub family: &'static str,
    /// Time in milliseconds.
    pub ms: f64,
    /// True when the roofline put this layer on the memory side.
    pub memory_bound: bool,
}

/// Latency estimate for one inference.
#[derive(Debug, Clone)]
pub struct LatencyBreakdown {
    /// Per-layer records.
    pub layers: Vec<LayerLatency>,
    /// End-to-end latency in milliseconds.
    pub total_ms: f64,
    /// Fraction of total time in memory-bound layers.
    pub memory_bound_fraction: f64,
    /// Engine used.
    pub engine: Engine,
}

/// Estimate single-inference latency for `trace` on `device`/`backend`.
///
/// `thermal` scales sustained throughput down when the device is hot; pass
/// [`ThermalState::cool`] for one-shot benchmarks with inter-run sleeps
/// (the paper's methodology, §3.3).
pub fn estimate_latency(
    device: &DeviceSpec,
    backend: Backend,
    trace: &TraceReport,
    thermal: &ThermalState,
) -> Result<LatencyBreakdown> {
    if trace.layers.is_empty() {
        return Err(SocError::BadTrace("trace has no layers".into()));
    }
    for l in &trace.layers {
        if !backend.supports(l.family) {
            return Err(SocError::Unsupported {
                backend: backend.name(),
                layer: l.family.into(),
            });
        }
    }
    let engine = engine_for(device, backend)?;
    let throttle = thermal.throttle_factor(device);
    let quality = backend.quality_factor();
    let overhead = backend.dispatch_overhead_ms();
    let int8_boost = if backend.int8_compute() { 2.0 } else { 1.0 };

    let mut layers = Vec::with_capacity(trace.layers.len());
    let mut total = 0.0f64;
    let mut mem_ms_total = 0.0f64;
    for l in &trace.layers {
        let util = match backend {
            Backend::Gpu | Backend::Snpe(SnpeTarget::Gpu) => gpu_utilization(l.family),
            Backend::Snpe(SnpeTarget::Dsp) => dsp_utilization(l.family),
            _ => cpu_utilization(l.family),
        } * shape_efficiency(&l.out_shape);
        let eff = engine.peak_gflops * util * quality * throttle * int8_boost;
        let compute_ms = l.flops as f64 / (eff.max(1e-6) * 1e9) * 1e3;
        // int8 moves a quarter of the activation bytes.
        let bytes = (l.bytes_read + l.bytes_written) as f64 / if backend.int8_compute() { 4.0 } else { 1.0 };
        let mem_ms = bytes / (engine.mem_bw_gbps.max(1e-6) * 1e9) * 1e3;
        let ms = compute_ms.max(mem_ms) + overhead;
        let memory_bound = mem_ms > compute_ms;
        if memory_bound {
            mem_ms_total += ms;
        }
        total += ms;
        layers.push(LayerLatency {
            name: l.name.clone(),
            family: l.family,
            ms,
            memory_bound,
        });
    }
    total += backend.session_overhead_ms();
    Ok(LatencyBreakdown {
        layers,
        total_ms: total,
        memory_bound_fraction: mem_ms_total / total.max(1e-12),
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::ThreadConfig;
    use crate::spec::device;
    use gaugenn_dnn::task::Task;
    use gaugenn_dnn::trace::{trace_graph, trace_graph_batched};
    use gaugenn_dnn::zoo::{build_for_task, SizeClass};

    fn cpu4() -> Backend {
        Backend::Cpu(ThreadConfig::unpinned(4))
    }

    fn trace_for(task: Task, seed: u64) -> TraceReport {
        trace_graph(&build_for_task(task, seed, SizeClass::Small, true).graph).unwrap()
    }

    #[test]
    fn tiers_order_latency() {
        let tr = trace_for(Task::ObjectDetection, 3);
        let cool = ThermalState::cool();
        let a20 = estimate_latency(&device("A20").unwrap(), cpu4(), &tr, &cool).unwrap();
        let a70 = estimate_latency(&device("A70").unwrap(), cpu4(), &tr, &cool).unwrap();
        let s21 = estimate_latency(&device("S21").unwrap(), cpu4(), &tr, &cool).unwrap();
        assert!(a20.total_ms > a70.total_ms, "low tier slower than mid");
        assert!(a70.total_ms > s21.total_ms, "mid tier slower than high");
    }

    #[test]
    fn hdk_generations_order_latency() {
        let tr = trace_for(Task::SemanticSegmentation, 4);
        let cool = ThermalState::cool();
        let q845 = estimate_latency(&device("Q845").unwrap(), cpu4(), &tr, &cool).unwrap();
        let q855 = estimate_latency(&device("Q855").unwrap(), cpu4(), &tr, &cool).unwrap();
        let q888 = estimate_latency(&device("Q888").unwrap(), cpu4(), &tr, &cool).unwrap();
        assert!(q845.total_ms > q855.total_ms);
        assert!(q855.total_ms > q888.total_ms);
    }

    #[test]
    fn open_deck_beats_sealed_phone_same_soc() {
        // §5.1: "for the two devices that integrate the same SoC (Q888 and
        // S21) the open-deck design … leads to incrementally better
        // results".
        let tr = trace_for(Task::ObjectDetection, 5);
        let cool = ThermalState::cool();
        let s21 = estimate_latency(&device("S21").unwrap(), cpu4(), &tr, &cool).unwrap();
        let q888 = estimate_latency(&device("Q888").unwrap(), cpu4(), &tr, &cool).unwrap();
        assert!(q888.total_ms < s21.total_ms);
        assert!(q888.total_ms > 0.85 * s21.total_ms, "gap should be incremental");
    }

    #[test]
    fn flops_latency_nonlinear_across_models() {
        // Two models with similar FLOPs should be allowed different
        // latencies (Fig. 8's point). Compare a conv-heavy vs a
        // depthwise/helper-heavy model at matched FLOPs by ratio test:
        // latency per GFLOP differs.
        let cool = ThermalState::cool();
        let dev = device("Q845").unwrap();
        let conv_heavy = trace_for(Task::SemanticSegmentation, 6);
        let recurrent_heavy = trace_for(Task::AutoComplete, 6);
        let l1 = estimate_latency(&dev, cpu4(), &conv_heavy, &cool).unwrap();
        let l2 = estimate_latency(&dev, cpu4(), &recurrent_heavy, &cool).unwrap();
        let per_flop1 = l1.total_ms / conv_heavy.total_flops as f64;
        let per_flop2 = l2.total_ms / recurrent_heavy.total_flops as f64;
        let ratio = per_flop1 / per_flop2;
        assert!(
            !(0.95..=1.05).contains(&ratio),
            "latency per FLOP should differ across architectures, ratio {ratio}"
        );
    }

    #[test]
    fn unsupported_ops_rejected_per_backend() {
        let lstm = trace_for(Task::AutoComplete, 7);
        let dev = device("Q845").unwrap();
        let cool = ThermalState::cool();
        assert!(estimate_latency(&dev, cpu4(), &lstm, &cool).is_ok());
        for b in [
            Backend::Xnnpack(ThreadConfig::unpinned(4)),
            Backend::Nnapi,
            Backend::Gpu,
            Backend::Snpe(SnpeTarget::Dsp),
        ] {
            assert!(
                matches!(
                    estimate_latency(&dev, b, &lstm, &cool),
                    Err(SocError::Unsupported { .. })
                ),
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn snpe_dsp_much_faster_than_cpu() {
        // MobileNet classifier: in the DSP-compatible subset (no resize).
        let tr = trace_for(Task::ImageClassification, 8);
        let dev = device("Q845").unwrap();
        let cool = ThermalState::cool();
        let cpu = estimate_latency(&dev, cpu4(), &tr, &cool).unwrap();
        let dsp = estimate_latency(&dev, Backend::Snpe(SnpeTarget::Dsp), &tr, &cool).unwrap();
        let speedup_dsp = cpu.total_ms / dsp.total_ms;
        assert!(speedup_dsp > 2.0, "dsp speedup {speedup_dsp}");
        // GPU pays per-op submission overhead, so its win shows on heavier
        // models (Fig. 14 averages over the whole corpus).
        let heavy = trace_for(Task::SemanticSegmentation, 8);
        let cpu_h = estimate_latency(&dev, cpu4(), &heavy, &cool).unwrap();
        let gpu_h = estimate_latency(&dev, Backend::Snpe(SnpeTarget::Gpu), &heavy, &cool).unwrap();
        let dsp_h = estimate_latency(&dev, Backend::Snpe(SnpeTarget::Dsp), &heavy, &cool).unwrap();
        let speedup_gpu = cpu_h.total_ms / gpu_h.total_ms;
        assert!(speedup_gpu > 1.2, "gpu speedup {speedup_gpu}");
        assert!(
            cpu_h.total_ms / dsp_h.total_ms > speedup_gpu,
            "dsp should beat gpu on the heavy model too"
        );
    }

    #[test]
    fn nnapi_slower_than_cpu_on_q845() {
        let tr = trace_for(Task::FaceDetection, 9);
        let dev = device("Q845").unwrap();
        let cool = ThermalState::cool();
        let cpu = estimate_latency(&dev, cpu4(), &tr, &cool).unwrap();
        let nnapi = estimate_latency(&dev, Backend::Nnapi, &tr, &cool).unwrap();
        assert!(nnapi.total_ms > cpu.total_ms, "NNAPI should lag baseline CPU");
    }

    #[test]
    fn xnnpack_slightly_faster() {
        let tr = trace_for(Task::FaceDetection, 10);
        let dev = device("Q845").unwrap();
        let cool = ThermalState::cool();
        let cpu = estimate_latency(&dev, cpu4(), &tr, &cool).unwrap();
        let xnn =
            estimate_latency(&dev, Backend::Xnnpack(ThreadConfig::unpinned(4)), &tr, &cool)
                .unwrap();
        let speedup = cpu.total_ms / xnn.total_ms;
        assert!(speedup > 1.0 && speedup < 1.25, "xnnpack speedup {speedup}");
    }

    #[test]
    fn batching_amortises_overhead() {
        let g = build_for_task(Task::ImageClassification, 11, SizeClass::Small, true).graph;
        let dev = device("S21").unwrap();
        let cool = ThermalState::cool();
        let t1 = trace_graph_batched(&g, 1).unwrap();
        let t8 = trace_graph_batched(&g, 8).unwrap();
        let l1 = estimate_latency(&dev, cpu4(), &t1, &cool).unwrap();
        let l8 = estimate_latency(&dev, cpu4(), &t8, &cool).unwrap();
        let tput1 = 1.0 / l1.total_ms;
        let tput8 = 8.0 / l8.total_ms;
        assert!(tput8 > tput1, "throughput should rise with batch");
        assert!(l8.total_ms < 8.0 * l1.total_ms, "batch amortises per-layer overhead");
    }

    #[test]
    fn empty_trace_rejected() {
        let dev = device("A20").unwrap();
        let tr = TraceReport {
            layers: vec![],
            total_macs: 0,
            total_flops: 0,
            total_params: 0,
            peak_activation_elems: 0,
        };
        assert!(estimate_latency(&dev, cpu4(), &tr, &ThermalState::cool()).is_err());
    }

    #[test]
    fn memory_bound_fraction_populated() {
        let tr = trace_for(Task::ObjectRecognition, 12);
        let dev = device("A20").unwrap();
        let l = estimate_latency(&dev, cpu4(), &tr, &ThermalState::cool()).unwrap();
        assert!(l.memory_bound_fraction > 0.0, "some layers should be memory-bound");
        assert!(l.memory_bound_fraction < 1.0, "some layers should be compute-bound");
    }
}
