//! Fixture tests for the whole-workspace semantic pass: determinism
//! taint over the call graph, channel endpoint pairing, and the wait-for
//! graph. Fixtures are in-memory `(path, source)` pairs — the paths
//! matter (crate keys, module paths, and test masking all derive from
//! them), the disk does not.

use lint::{lint_workspace, WorkspaceReport};

fn ws(files: &[(&str, &str)]) -> WorkspaceReport {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_workspace(&files)
}

fn rules_of(r: &WorkspaceReport) -> Vec<&'static str> {
    r.findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- taint

/// The acceptance-criteria scenario: a `SystemTime::now` laundered
/// through a 3-deep call chain, reached from the render path. Every
/// lexical rule misses it (the sink's own line is in a helper the
/// `wall-clock` context rules don't cover by path); the taint pass must
/// report it at the sink with the full chain.
#[test]
fn three_deep_laundered_clock_reaching_render_is_found_with_chain() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn render_report() -> u64 { step_one() }
fn step_one() -> u64 { step_two() }
fn step_two() -> u64 { stamp() }
fn stamp() -> u64 {
    std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
"#,
    )]);
    let taint: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "nondeterministic-reach")
        .collect();
    assert_eq!(taint.len(), 1, "findings: {:?}", r.findings);
    let f = taint[0];
    assert_eq!(f.line, 6);
    let chain = f.detail.as_deref().expect("taint findings carry the chain");
    assert_eq!(
        chain,
        "app::render_report → app::step_one → app::step_two → app::stamp → SystemTime::now (clock)"
    );
}

/// A sink reached across a crate boundary: the edge is a cross-crate
/// call resolved through a `use` import.
#[test]
fn cross_crate_edge_propagates_taint() {
    let r = ws(&[
        (
            "crates/app/src/lib.rs",
            "use gaugenn_helper::tick;\npub fn render_frame() -> u64 { tick() }\n",
        ),
        (
            "crates/helper/src/lib.rs",
            "pub fn tick() -> u64 {\n    let t = std::time::Instant::now();\n    t.elapsed().as_secs()\n}\n",
        ),
    ]);
    let taint: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "nondeterministic-reach")
        .collect();
    assert_eq!(taint.len(), 1, "findings: {:?}", r.findings);
    assert_eq!(taint[0].file, "crates/helper/src/lib.rs");
    assert_eq!(
        taint[0].detail.as_deref().unwrap(),
        "app::render_frame → helper::tick → Instant::now (clock)"
    );
}

/// `deterministic-via(clock)` at the call edge severs propagation: the
/// annotated hop declares the clock is injected, so nothing upstream of
/// it taints.
#[test]
fn deterministic_via_at_the_call_edge_severs_the_chain() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn render_report() -> u64 {
    // gaugelint: deterministic-via(clock) — stamp() reads an injected Clock in production wiring
    stamp()
}
fn stamp() -> u64 { std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0) }
"#,
    )]);
    assert!(
        !rules_of(&r).contains(&"nondeterministic-reach"),
        "severed edge must not taint: {:?}",
        r.findings
    );
}

/// `deterministic-via(clock)` at the sink itself also suppresses the
/// lexical `wall-clock` rule — one annotation per injection point.
#[test]
fn deterministic_via_at_the_sink_covers_lexical_and_taint() {
    let src = "pub fn render_x() -> u64 { stamp() }\n\
               fn stamp() -> u64 {\n\
               // gaugelint: deterministic-via(clock) — injected\n\
               std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)\n\
               }\n";
    let r = ws(&[("crates/core/src/x.rs", src)]);
    assert!(
        r.findings.is_empty(),
        "both the lexical and taint findings must be covered: {:?}",
        r.findings
    );
    // The lexical wall-clock hit is itemized as suppressed, not gone.
    assert!(r.suppressed_findings.iter().any(|f| f.rule == "wall-clock"));
}

/// `allow(nondeterministic-reach)` at the sink suppresses the taint
/// finding through the ordinary allow machinery.
#[test]
fn allow_directive_suppresses_taint_finding() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn render_report() -> u64 { stamp() }
fn stamp() -> u64 {
    // gaugelint: allow(nondeterministic-reach) — demo exception
    std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
"#,
    )]);
    assert!(!rules_of(&r).contains(&"nondeterministic-reach"));
    assert!(r
        .suppressed_findings
        .iter()
        .any(|f| f.rule == "nondeterministic-reach"));
}

/// Dead-code false-positive guard: a sink in a function no root can
/// reach is not a finding.
#[test]
fn unreachable_sink_is_not_a_finding() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn render_report() -> u64 { 7 }
pub fn forgotten_helper() -> u64 {
    std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)
}
"#,
    )]);
    assert!(
        !rules_of(&r).contains(&"nondeterministic-reach"),
        "dead code must not taint: {:?}",
        r.findings
    );
}

/// Sinks inside `#[cfg(test)]` code are exempt — tests may read clocks.
#[test]
fn test_code_sinks_are_exempt() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn render_report() -> u64 { 7 }
#[cfg(test)]
mod tests {
    #[test]
    fn timing() {
        let _ = std::time::Instant::now();
        let _ = super::render_report();
    }
}
"#,
    )]);
    assert!(!rules_of(&r).contains(&"nondeterministic-reach"));
}

/// Seed-category sinks (entropy) propagate independently of clock.
#[test]
fn entropy_seeding_taints_the_analysis_crate() {
    let r = ws(&[(
        "crates/analysis/src/temporal.rs",
        "pub fn bucketise() -> u64 { jitter() }\nfn jitter() -> u64 { thread_rng() }\nfn thread_rng() -> u64 { 4 }\n",
    )]);
    // `thread_rng` identifier is itself the sink token — the fixture's
    // local fn of that name is also a call target, but the sink fires at
    // the identifier inside `jitter` (category seed).
    let taint: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "nondeterministic-reach")
        .collect();
    assert!(
        !taint.is_empty(),
        "analysis-crate fns are roots; entropy must taint: {:?}",
        r.findings
    );
    assert!(taint[0].detail.as_deref().unwrap().contains("(seed)"));
}

// ------------------------------------------------------------- channels

#[test]
fn orphan_sender_is_reported() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn produce() {
    let (tx, _rx) = crossbeam::channel::unbounded::<u32>();
    tx.send(1).ok();
}
"#,
    )]);
    assert_eq!(rules_of(&r), vec!["channel-orphan-sender"], "{:?}", r.findings);
    assert_eq!(r.findings[0].line, 3);
}

#[test]
fn orphan_receiver_is_reported() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn starve() -> Option<u32> {
    let (_tx, rx) = crossbeam::channel::unbounded::<u32>();
    rx.recv().ok()
}
"#,
    )]);
    assert_eq!(rules_of(&r), vec!["channel-orphan-receiver"], "{:?}", r.findings);
}

/// A channel whose receiver is handed to another crate must carry a
/// `channel-pair` annotation at the creation.
#[test]
fn cross_crate_channel_without_pairing_is_reported() {
    let files = [
        (
            "crates/app/src/lib.rs",
            r#"
use gaugenn_worker::drain;
pub fn fan_out() {
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    tx.send(1).ok();
    drain(rx);
}
"#,
        ),
        (
            "crates/worker/src/lib.rs",
            "use crossbeam::channel::Receiver;\npub fn drain(rx: Receiver<u32>) { while rx.recv().is_ok() {} }\n",
        ),
    ];
    let r = ws(&files);
    assert_eq!(
        rules_of(&r),
        vec!["channel-unpaired-cross-crate"],
        "{:?}",
        r.findings
    );
    let d = r.findings[0].detail.as_deref().unwrap();
    assert!(d.contains("send: app") && d.contains("recv: worker"), "{d}");
}

#[test]
fn channel_pair_annotation_documents_the_crossing() {
    let files = [
        (
            "crates/app/src/lib.rs",
            r#"
use gaugenn_worker::drain;
pub fn fan_out() {
    // gaugelint: channel-pair(app.jobs) — worker crate drains the job queue
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    tx.send(1).ok();
    drain(rx);
}
"#,
        ),
        (
            "crates/worker/src/lib.rs",
            "use crossbeam::channel::Receiver;\npub fn drain(rx: Receiver<u32>) { while rx.recv().is_ok() {} }\n",
        ),
    ];
    let r = ws(&files);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    // The documented name becomes the channel's identity in the graph.
    assert!(r.waitfor_json.contains("\"name\": \"app.jobs\""));
}

/// The same-crate worker-queue shape (the harness campaign pattern) is
/// fine without any annotation.
#[test]
fn same_crate_send_recv_pair_passes() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn pump() {
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    tx.send(1).ok();
    worker(rx);
}
fn worker(rx: crossbeam::channel::Receiver<u32>) { while rx.recv().is_ok() {} }
"#,
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

/// Endpoints travel through clones and aliases.
#[test]
fn cloned_endpoints_still_count() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn pump() {
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    let tx2 = tx.clone();
    tx2.send(1).ok();
    let moved = rx;
    while moved.recv().is_ok() {}
}
"#,
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

// ------------------------------------------------------- wait-for graph

/// A fn that receives from one channel while (transitively) sending on
/// another contributes a wait edge send-channel → recv-channel.
#[test]
fn waitfor_graph_records_send_while_receiving() {
    let r = ws(&[(
        "crates/app/src/lib.rs",
        r#"
pub fn stage_two() {
    // gaugelint: channel-pair(stage.in) — fed by stage one
    let (txi, rxi) = crossbeam::channel::unbounded::<u32>();
    // gaugelint: channel-pair(stage.out) — drained by stage three
    let (txo, rxo) = crossbeam::channel::unbounded::<u32>();
    txi.send(1).ok();
    while let Ok(v) = rxi.recv() {
        txo.send(v).ok();
    }
    while rxo.recv().is_ok() {}
}
"#,
    )]);
    assert!(
        r.waitfor_json.contains("\"from\": \"stage.out\", \"to\": \"stage.in\""),
        "{}",
        r.waitfor_json
    );
}

/// Two identical runs emit byte-identical findings and wait-for graphs.
#[test]
fn workspace_pass_is_deterministic() {
    let files = [
        (
            "crates/app/src/lib.rs",
            "pub fn render_a() -> u64 { h() }\nfn h() -> u64 { std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0) }\n",
        ),
        (
            "crates/app/src/chan.rs",
            "pub fn produce() { let (tx, _rx) = crossbeam::channel::unbounded::<u32>(); tx.send(1).ok(); }\n",
        ),
    ];
    let a = ws(&files);
    let b = ws(&files);
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.waitfor_json, b.waitfor_json);
}

// ------------------------------------------------------------ self-lint

/// gaugelint passes its own semantic pass: lint every source file of the
/// lint crate itself (read from disk) and expect zero findings.
#[test]
fn lint_lints_itself_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut files: Vec<(String, String)> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("lint src dir")
        .flatten()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = format!(
                "crates/lint/src/{}",
                p.file_name().expect("file").to_string_lossy()
            );
            files.push((rel, std::fs::read_to_string(&p).expect("readable")));
        }
    }
    assert!(files.len() >= 7, "expected the full module set, got {files:?}");
    let r = lint_workspace(&files);
    assert!(r.findings.is_empty(), "self-lint: {:?}", r.findings);
}
