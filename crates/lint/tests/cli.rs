//! End-to-end acceptance test for the gaugelint binary: build a fixture
//! workspace on disk (in a temp dir whose path has no `tests` component,
//! so nothing is test-masked), run the real CLI against it, and check
//! the exit codes and output formats the verify gate depends on.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn fixture_root(tag: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("gaugelint-cli-{tag}"));
    if root.exists() {
        fs::remove_dir_all(&root).expect("clean fixture root");
    }
    // The 3-call-deep laundered SystemTime::now from the acceptance
    // criteria, reaching the render path across a module boundary.
    let src = root.join("crates/app/src");
    fs::create_dir_all(&src).expect("mkdir fixture");
    fs::write(
        src.join("lib.rs"),
        "pub mod clockmod;\n\
         pub fn render_report() -> u64 { crate::clockmod::step_one() }\n",
    )
    .expect("write lib.rs");
    fs::write(
        src.join("clockmod.rs"),
        "pub fn step_one() -> u64 { step_two() }\n\
         fn step_two() -> u64 { stamp() }\n\
         fn stamp() -> u64 {\n\
         \x20   std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0)\n\
         }\n",
    )
    .expect("write clockmod.rs");
    root
}

fn run_lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lint"))
        .args(args)
        .output()
        .expect("run gaugelint")
}

#[test]
fn laundered_clock_fails_with_the_full_chain_printed() {
    let root = fixture_root("chain");
    let app = root.join("crates/app");
    let out = run_lint(&[app.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a reachable sink must fail the lint\nstdout:\n{stdout}"
    );
    assert!(stdout.contains("nondeterministic-reach"), "{stdout}");
    // The full call chain, root to sink, on the chain detail line.
    assert!(
        stdout.contains(
            "app::render_report → app::clockmod::step_one → app::clockmod::step_two \
             → app::clockmod::stamp → SystemTime::now (clock)"
        ),
        "full chain printed:\n{stdout}"
    );
}

#[test]
fn json_format_is_stable_across_runs_and_baseline_waives_known_findings() {
    let root = fixture_root("baseline");
    let app = root.join("crates/app");
    let app_s = app.to_str().unwrap();

    let a = run_lint(&["--format", "json", app_s]);
    let b = run_lint(&["--format", "json", app_s]);
    assert_eq!(a.status.code(), Some(1));
    assert_eq!(a.stdout, b.stdout, "JSON findings must be byte-identical");
    let json = String::from_utf8_lossy(&a.stdout);
    assert!(json.contains("\"rule\": \"nondeterministic-reach\""), "{json}");
    assert!(json.contains("\"suppressed\": false"), "{json}");

    // Accepting today's findings as the baseline turns the run green...
    let baseline = root.join("baseline.json");
    fs::write(&baseline, a.stdout).expect("write baseline");
    let waived = run_lint(&["--baseline", baseline.to_str().unwrap(), app_s]);
    let waived_out = String::from_utf8_lossy(&waived.stdout);
    assert_eq!(
        waived.status.code(),
        Some(0),
        "baselined findings must not fail\n{waived_out}"
    );
    // Two findings waived: the taint chain and the lexical wall-clock
    // hit on the sink line itself.
    assert!(waived_out.contains("\"baselined\":2"), "{waived_out}");

    // ...but a *new* finding beyond the baseline still fails.
    fs::write(
        app.join("src/extra.rs"),
        "pub fn render_more() -> u64 { std::time::SystemTime::now().elapsed().map(|d| d.as_secs()).unwrap_or(0) }\n",
    )
    .expect("write extra.rs");
    fs::write(
        app.join("src/lib.rs"),
        "pub mod clockmod;\npub mod extra;\n\
         pub fn render_report() -> u64 { crate::clockmod::step_one() }\n",
    )
    .expect("rewrite lib.rs");
    let regressed = run_lint(&["--baseline", baseline.to_str().unwrap(), app_s]);
    assert_eq!(
        regressed.status.code(),
        Some(1),
        "a finding beyond the baseline must fail\n{}",
        String::from_utf8_lossy(&regressed.stdout)
    );
}

#[test]
fn waitfor_artifact_is_written_and_deterministic() {
    let root = fixture_root("waitfor");
    let src = root.join("crates/app/src");
    fs::write(
        src.join("lib.rs"),
        "pub mod clockmod;\n\
         pub fn pump() {\n\
         \x20   // gaugelint: channel-pair(cli.jobs) — drained below\n\
         \x20   let (tx, rx) = crossbeam::channel::unbounded::<u32>();\n\
         \x20   tx.send(1).ok();\n\
         \x20   while rx.recv().is_ok() {}\n\
         }\n",
    )
    .expect("rewrite lib.rs");
    fs::write(src.join("clockmod.rs"), "pub fn quiet() -> u64 { 3 }\n").expect("clockmod");
    let app = root.join("crates/app");
    let wf1 = root.join("wf1.json");
    let wf2 = root.join("wf2.json");
    let first = run_lint(&["--waitfor", wf1.to_str().unwrap(), app.to_str().unwrap()]);
    let second = run_lint(&["--waitfor", wf2.to_str().unwrap(), app.to_str().unwrap()]);
    assert_eq!(first.status.code(), Some(0));
    assert_eq!(second.status.code(), Some(0));
    let g1 = fs::read_to_string(&wf1).expect("waitfor written");
    let g2 = fs::read_to_string(&wf2).expect("waitfor written twice");
    assert_eq!(g1, g2, "wait-for graph must be byte-identical across runs");
    assert!(g1.contains("\"name\": \"cli.jobs\""), "{g1}");
}

#[test]
fn malformed_flags_exit_2() {
    let out = run_lint(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run_lint(&["--baseline"]);
    assert_eq!(out.status.code(), Some(2));
}
