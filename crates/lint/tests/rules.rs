//! Fixture-snippet tests: one positive and one suppressed case per rule,
//! plus lexer robustness and suppression-hygiene checks. Snippets are fed
//! through [`lint::lint_source`] with synthetic repo-relative paths so the
//! path-scoped rules (fault-path unwraps, analysis float accumulation,
//! bench exemptions) are exercised exactly as the CLI would.

use lint::lint_source;

/// Rules reported for a snippet, as (rule, line) pairs.
fn rules_at(path: &str, src: &str) -> Vec<(&'static str, u32)> {
    lint_source(path, src)
        .findings
        .iter()
        .map(|f| (f.rule, f.line))
        .collect()
}

/// Just the rule names reported for a snippet.
fn rules(path: &str, src: &str) -> Vec<&'static str> {
    rules_at(path, src).into_iter().map(|(r, _)| r).collect()
}

// ---------------------------------------------------------------- rule 1

#[test]
fn hashmap_iteration_is_flagged_for_loops_and_methods() {
    let src = r#"
use std::collections::HashMap;
fn render(m: &HashMap<String, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (_k, v) in m {
        out.push(*v);
    }
    out.extend(m.values());
    out
}
"#;
    let got = rules_at("crates/core/src/x.rs", src);
    assert_eq!(
        got,
        vec![("hashmap-iter-order", 5), ("hashmap-iter-order", 8)]
    );
}

#[test]
fn hashmap_lookups_are_not_flagged() {
    let src = r#"
use std::collections::HashMap;
fn lookup(m: &HashMap<String, u32>) -> u32 {
    let mut cache: HashMap<u64, u64> = HashMap::new();
    cache.insert(1, 2);
    m.get("a").copied().unwrap_or(0) + cache.len() as u64 as u32
}
"#;
    assert!(rules("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn hashmap_iteration_applies_to_test_code_too() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn golden() {
        let mut m = std::collections::HashMap::new();
        m.insert(1, 2);
        for (k, v) in &m {
            println!("{k}{v}");
        }
    }
}
"#;
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["hashmap-iter-order"]);
}

#[test]
fn hashmap_iteration_suppressed_by_directive_above() {
    let src = r#"
fn f(m: &std::collections::HashMap<u32, u32>) -> usize {
    // gaugelint: allow(hashmap-iter-order) — counted, not rendered
    m.keys().count()
}
"#;
    let report = lint_source("crates/core/src/x.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------------- rule 2

#[test]
fn wall_clock_reads_are_flagged_outside_tests() {
    let src = r#"
use std::time::Instant;
fn deadline() -> Instant {
    let start = Instant::now();
    start
}
#[cfg(test)]
mod tests {
    #[test]
    fn timing_is_fine_here() {
        let _t = std::time::Instant::now();
    }
}
"#;
    assert_eq!(rules_at("crates/harness/src/x.rs", src), vec![("wall-clock", 4)]);
}

#[test]
fn wall_clock_is_exempt_in_bench_sources_and_suppressible() {
    let src = "fn t() -> u128 { std::time::Instant::now().elapsed().as_millis() }\n";
    assert!(rules("crates/bench/src/main.rs", src).is_empty());

    let suppressed = "fn t() { let _ = std::time::SystemTime::now(); } // gaugelint: allow(wall-clock) — diagnostics only\n";
    let report = lint_source("crates/core/src/x.rs", suppressed);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------------- rule 3

#[test]
fn unwrap_is_flagged_only_on_fault_paths() {
    let src = r#"
fn parse(v: &str) -> u32 {
    let n: u32 = v.parse().unwrap();
    let m: u32 = v.parse().expect("checked");
    n + m
}
"#;
    assert_eq!(
        rules_at("crates/playstore/src/x.rs", src),
        vec![("unwrap-in-fault-path", 3), ("unwrap-in-fault-path", 4)]
    );
    assert_eq!(
        rules("crates/harness/src/x.rs", src),
        vec!["unwrap-in-fault-path", "unwrap-in-fault-path"]
    );
    // The analysis pipeline is not chaos-injected; unwraps there are
    // covered by review, not this rule.
    assert!(rules("crates/analysis/src/x.rs", src).is_empty());
}

#[test]
fn unwrap_in_fault_path_respects_test_code_and_suppressions() {
    let src = r#"
fn infallible() -> u32 {
    // gaugelint: allow(unwrap-in-fault-path) — provably infallible: literal
    "7".parse().unwrap()
}
#[cfg(test)]
mod tests {
    #[test]
    fn asserts_can_unwrap() {
        infallible().checked_add(1).unwrap();
    }
}
"#;
    let report = lint_source("crates/playstore/src/x.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------------- rule 4

#[test]
fn deprecated_crawler_apis_are_flagged_everywhere() {
    let src = r#"
fn old_school(addr: std::net::SocketAddr) {
    let c = Crawler::connect(addr);
    let c = c.with_retry(RetryPolicy::default());
    let _c = c.with_timeouts(1, 2);
}
"#;
    assert_eq!(
        rules_at("tests/old.rs", src),
        vec![
            ("deprecated-api", 3),
            ("deprecated-api", 4),
            ("deprecated-api", 5)
        ]
    );
}

#[test]
fn positional_cli_helper_calls_are_flagged_but_not_its_definition() {
    let src = r#"
pub fn legacy_positional(args: &[String]) -> Result<(), String> {
    Ok(())
}
fn parse(args: &[String]) {
    legacy_positional(args).unwrap();
    cli::legacy_positional(args).unwrap();
}
"#;
    assert_eq!(
        rules_at("crates/bench/src/bin/newbench.rs", src),
        vec![("deprecated-api", 6), ("deprecated-api", 7)]
    );
}

#[test]
fn sanctioned_positional_fallback_carries_a_suppression() {
    let src = r#"
fn parse(args: &[String]) {
    // gaugelint: allow(deprecated-api) — flag parser keeps the old spelling alive
    legacy_positional(args).unwrap();
}
"#;
    let report = lint_source("crates/bench/src/cli.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------------- rule 5

#[test]
fn send_while_holding_a_lock_guard_is_flagged() {
    let src = r#"
fn pump(m: &parking_lot::Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    tx.send(*g).ok();
}
"#;
    assert_eq!(rules_at("crates/analysis/src/x.rs", src), vec![("lock-across-send", 4)]);
}

#[test]
fn send_after_drop_or_scope_exit_is_clean() {
    let src = r#"
fn pump(m: &parking_lot::Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    let v = *g;
    drop(g);
    tx.send(v).ok();
}
fn scoped(m: &parking_lot::RwLock<u32>, tx: &Sender<u32>) {
    let v = {
        let g = m.read();
        *g
    };
    tx.send(v).ok();
}
fn extracted(m: &std::sync::Mutex<u32>, tx: &Sender<u32>) {
    let v = m.lock().unwrap().clone();
    tx.send(v).ok();
}
"#;
    assert!(rules("crates/analysis/src/x.rs", src).is_empty());
}

#[test]
fn lock_across_send_counts_std_guards_and_is_suppressible() {
    let src = r#"
fn pump(m: &std::sync::Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock().unwrap();
    // gaugelint: allow(lock-across-send) — receiver never locks m
    tx.send(*g).ok();
}
"#;
    let report = lint_source("crates/harness/src/x.rs", src);
    // The fault-path unwrap on line 3 still reports; the send is silenced.
    assert_eq!(
        report.findings.iter().map(|f| f.rule).collect::<Vec<_>>(),
        vec!["unwrap-in-fault-path"]
    );
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------------- rule 6

#[test]
fn entropy_seeding_is_flagged() {
    let src = r#"
fn seed() -> u64 {
    let mut rng = SmallRng::from_entropy();
    let x: u64 = rand::random();
    let _t = thread_rng();
    let _o = OsRng;
    x
}
"#;
    assert_eq!(
        rules("crates/core/src/x.rs", src),
        vec![
            "seed-from-entropy",
            "seed-from-entropy",
            "seed-from-entropy",
            "seed-from-entropy"
        ]
    );
}

#[test]
fn seeded_rngs_are_clean() {
    let src = "fn seed(s: u64) -> SmallRng { SmallRng::seed_from_u64(s) }\n";
    assert!(rules("crates/core/src/x.rs", src).is_empty());
}

// ---------------------------------------------------------------- rule 7

#[test]
fn float_accumulation_over_hash_iteration_is_flagged_in_analysis() {
    let src = r#"
use std::collections::HashMap;
fn entropy(counts: &HashMap<char, f64>) -> f64 {
    counts.values().map(|p| p * p.log2()).sum::<f64>()
}
"#;
    let got = rules("crates/analysis/src/stats.rs", src);
    assert!(got.contains(&"float-accum-order"), "{got:?}");
    // Outside the analysis crate only the iteration rule fires.
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["hashmap-iter-order"]);
}

#[test]
fn btreemap_accumulation_is_clean_in_analysis() {
    let src = r#"
use std::collections::BTreeMap;
fn entropy(counts: &BTreeMap<char, f64>) -> f64 {
    counts.values().map(|p| p * p.log2()).sum::<f64>()
}
"#;
    assert!(rules("crates/analysis/src/stats.rs", src).is_empty());
}

// ---------------------------------------------------------------- rule 8

#[test]
fn relaxed_ordering_is_flagged_in_report_crates() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
fn bump(hits: &AtomicU64) {
    hits.fetch_add(1, Ordering::Relaxed);
}
#[cfg(test)]
mod tests {
    use super::*;
    fn probe(n: &AtomicU64) -> u64 {
        n.load(Ordering::Relaxed)
    }
}
"#;
    assert_eq!(
        rules_at("crates/core/src/analyze.rs", src),
        vec![("relaxed-ordering-in-report", 4)]
    );
    assert_eq!(
        rules("crates/analysis/src/dedup.rs", src),
        vec!["relaxed-ordering-in-report"]
    );
    // Crates that never render reports keep their Relaxed stop flags.
    assert!(rules("crates/playstore/src/server.rs", src).is_empty());
    // SeqCst is always clean.
    let seqcst = "fn bump(h: &std::sync::atomic::AtomicU64) { h.fetch_add(1, std::sync::atomic::Ordering::SeqCst); }\n";
    assert!(rules("crates/core/src/analyze.rs", seqcst).is_empty());
}

#[test]
fn relaxed_ordering_is_suppressible_with_a_reason() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
fn bump(scratch: &AtomicU64) {
    // gaugelint: allow(relaxed-ordering-in-report) — scratch counter, never rendered
    scratch.fetch_add(1, Ordering::Relaxed);
}
"#;
    let report = lint_source("crates/core/src/scratch.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ---------------------------------------------------------------- rule 9

#[test]
fn todo_and_unimplemented_are_flagged_outside_tests() {
    let src = r#"
fn later() {
    todo!("wire up the DSP backend")
}
fn never() {
    unimplemented!()
}
#[cfg(test)]
mod tests {
    fn scaffold() {
        todo!()
    }
}
"#;
    assert_eq!(
        rules_at("crates/soc/src/x.rs", src),
        vec![("todo-unimplemented", 3), ("todo-unimplemented", 6)]
    );
}

// --------------------------------------------------------------- rule 10

#[test]
fn duration_literals_in_retry_paths_are_flagged() {
    let src = r#"
use std::time::Duration;
fn backoff_delay(attempt: u32) {
    std::thread::sleep(Duration::from_millis(250));
}
fn serve_probation_cooldown() -> Duration {
    Duration::from_secs(5)
}
fn unrelated_constant() -> Duration {
    Duration::from_millis(250)
}
fn retry_after(policy: &RetryPolicy) -> Duration {
    Duration::from_millis(policy.base_delay_ms)
}
"#;
    assert_eq!(
        rules_at("crates/playstore/src/x.rs", src),
        vec![
            ("literal-duration-in-retry", 4),
            ("literal-duration-in-retry", 7),
        ],
        "literals flag only in retry/cool-down-named fns; policy-driven values never do"
    );
}

#[test]
fn duration_literals_in_retry_tests_are_exempt() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn backoff_schedule_is_exact() {
        let d = std::time::Duration::from_millis(250);
        assert!(d.as_millis() == 250);
    }
}
"#;
    assert!(rules("crates/playstore/src/x.rs", src).is_empty());
}

#[test]
fn duration_literal_in_retry_suppressed_with_reason() {
    let src = r#"
fn retry_handshake() {
    // gaugelint: allow(literal-duration-in-retry) — TCP handshake grace is a protocol constant, not a policy knob
    std::thread::sleep(std::time::Duration::from_millis(5));
}
"#;
    let report = lint_source("crates/playstore/src/x.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// --------------------------------------------------------------- rule 11

#[test]
fn blocking_calls_in_the_reactor_are_flagged() {
    let src = r#"
fn pump(io: &mut TcpStream) {
    std::thread::sleep(Duration::from_millis(5));
    let mut head = [0u8; 4];
    let _ = io.read_exact(&mut head);
    let req = read_request(io);
    let _probe = TcpStream::connect_timeout(&addr, Duration::from_millis(10));
}
"#;
    let got = rules_at("crates/playstore/src/reactor.rs", src);
    assert_eq!(
        got.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec![
            "blocking-call-in-reactor",
            "blocking-call-in-reactor",
            "blocking-call-in-reactor",
            "blocking-call-in-reactor",
        ],
        "{got:?}"
    );
    assert_eq!(
        got.iter().map(|(_, l)| *l).collect::<Vec<_>>(),
        vec![3, 5, 6, 7]
    );
}

#[test]
fn blocking_calls_in_the_client_reactor_are_flagged_too() {
    // The non-blocking client lane driver shares the root set: one
    // blocking call in `drive_lanes` stalls every in-flight lane, so
    // the same shapes are banned there — delays go on the timer wheel.
    let src = r#"
fn pump_lane(io: &mut TcpStream) {
    std::thread::sleep(backoff);
    let resp = read_response(io);
}
"#;
    let got = rules_at("crates/playstore/src/reactor_client.rs", src);
    assert_eq!(
        got.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
        vec!["blocking-call-in-reactor", "blocking-call-in-reactor"],
        "{got:?}"
    );
    assert_eq!(got.iter().map(|(_, l)| *l).collect::<Vec<_>>(), vec![3, 4]);
}

#[test]
fn blocking_calls_outside_the_reactor_module_are_not_this_rules_business() {
    // The same shapes in the blocking server path are legal — that loop
    // owns one connection per thread, so blocking only stalls itself.
    let src = r#"
fn handle(io: &mut TcpStream) -> Result<()> {
    let req = read_request(io)?;
    write_response(io, &resp)?;
    Ok(())
}
"#;
    assert!(rules("crates/playstore/src/server.rs", src).is_empty());
}

#[test]
fn reactor_nonblocking_shapes_and_definitions_are_clean() {
    let src = r#"
fn read_request(buf: &[u8]) -> Option<Request> { None }
fn pump(io: &mut impl NonBlockingIo) -> usize {
    let mut chunk = [0u8; 1024];
    match io.try_read(&mut chunk) {
        Ok(n) => n,
        Err(_) => 0,
    }
}
"#;
    assert!(rules("crates/playstore/src/reactor.rs", src).is_empty());
}

#[test]
fn blocking_call_in_reactor_tests_exempt_and_suppressible() {
    let test_src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn scripted_stall() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
"#;
    assert!(rules("crates/playstore/src/reactor.rs", test_src).is_empty());

    let suppressed = r#"
fn drain(io: &mut TcpStream) {
    // gaugelint: allow(blocking-call-in-reactor) — shutdown path, loop already stopped
    let _ = io.read_to_end(&mut Vec::new());
}
"#;
    let report = lint_source("crates/playstore/src/reactor.rs", suppressed);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);
}

// ------------------------------------------------------- suppression hygiene

#[test]
fn unknown_rule_in_allow_is_a_bad_suppression() {
    let src = "// gaugelint: allow(no-such-rule)\nfn f() {}\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["bad-suppression"]);
}

#[test]
fn malformed_directive_is_a_bad_suppression() {
    let src = "// gaugelint: alow(wall-clock)\nfn f() {}\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["bad-suppression"]);
}

#[test]
fn bad_suppression_cannot_be_suppressed() {
    let src = "// gaugelint: allow(bad-suppression)\nfn f() {}\n";
    assert_eq!(rules("crates/core/src/x.rs", src), vec!["bad-suppression"]);
}

#[test]
fn one_directive_can_allow_multiple_rules() {
    let src = r#"
fn f(m: &std::collections::HashMap<u32, u32>) -> usize {
    // gaugelint: allow(hashmap-iter-order, wall-clock) — bounded diag loop
    m.keys().map(|_| std::time::Instant::now().elapsed().as_nanos() as usize).count()
}
"#;
    let report = lint_source("crates/core/src/x.rs", src);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 2);
}

// -------------------------------------------------------------- lexer edges

#[test]
fn strings_comments_and_lifetimes_never_trip_rules() {
    let src = r#"
// HashMap .iter() Instant::now() todo! in a comment is fine
/* and in /* nested */ block comments too: thread_rng() */
fn f<'a>(s: &'a str) -> String {
    let msg = "for x in map.values() { Instant::now(); todo!() }";
    let raw = r#inner#;
    let byte = b"unwrap() .expect()";
    let c = 'x';
    format!("{s}{msg}{raw:?}{byte:?}{c}")
}
"#
    .replace("r#inner#", "r##\"rand::random() OsRng\"##");
    assert!(rules("crates/playstore/src/x.rs", &src).is_empty());
}

#[test]
fn findings_carry_file_line_and_snippet() {
    let src = "fn f() {\n    todo!()\n}\n";
    let report = lint_source("crates/core/src/x.rs", src);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.file, "crates/core/src/x.rs");
    assert_eq!(f.line, 2);
    assert_eq!(f.snippet, "todo!()");
    assert_eq!(f.rule, "todo-unimplemented");
}
