//! The gaugelint rule set.
//!
//! Every rule is a linear scan over the token stream from
//! [`crate::lexer`]. Rules are deliberately lexical: they trade a little
//! precision for zero dependencies and total predictability — a rule
//! either matches a token shape or it does not, and a human can read the
//! match in one screen. Findings are `(rule, line)` pairs; suppression
//! and snippet extraction happen in [`crate::lint_source`].

use crate::lexer::{
    Lexed,
    Pat::{I, P},
    TokKind,
};
use std::collections::BTreeSet;

/// Method names whose call on a hash container walks it in nondeterministic
/// order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "values",
    "values_mut",
    "keys",
    "drain",
];

/// Everything a rule needs to know about one file.
pub(crate) struct Ctx<'a> {
    /// Normalized (forward-slash) path, as passed on the command line.
    path: String,
    /// The token stream.
    lex: &'a Lexed,
    /// Per-token flag: is this token inside test code (`#[cfg(test)]` /
    /// `#[test]` item, or a file under a `tests/` directory)?
    test_mask: Vec<bool>,
    /// Benchmark sources (`crates/bench/…`) are allowed wall-clock reads.
    is_bench: bool,
    /// Names bound or declared with a `HashMap`/`HashSet` type in this file.
    hash_names: BTreeSet<String>,
}

impl<'a> Ctx<'a> {
    /// Build the per-file context: path classification, test spans, and
    /// the set of hash-container binding names.
    pub(crate) fn new(path: &str, lex: &'a Lexed) -> Ctx<'a> {
        let norm = path.replace('\\', "/");
        let comps: Vec<&str> = norm.split('/').collect();
        let whole_test = comps.contains(&"tests");
        let is_bench = comps.iter().any(|c| *c == "bench" || *c == "benches");
        let test_mask = compute_test_mask(lex, whole_test);
        let hash_names = collect_hash_names(lex);
        Ctx {
            path: norm,
            lex,
            test_mask,
            is_bench,
            hash_names,
        }
    }

    fn in_test(&self, i: usize) -> bool {
        self.test_mask.get(i).copied().unwrap_or(false)
    }

    /// Crates whose non-test unwraps sit on chaos-reachable fault paths.
    fn in_fault_path(&self) -> bool {
        self.path.contains("crates/playstore/src") || self.path.contains("crates/harness/src")
    }

    /// The analysis crate renders floats into the merged report.
    fn in_analysis(&self) -> bool {
        self.path.contains("crates/analysis/")
    }

    /// The reactor root set: readiness loops and connection state
    /// machines where one blocking call stalls every connection at once
    /// — the serving loops (`reactor.rs`) and the non-blocking client
    /// lane driver (`reactor_client.rs`). Named explicitly so adding a
    /// sibling module is a deliberate decision, not a substring accident.
    fn in_reactor(&self) -> bool {
        self.path.contains("crates/playstore/src/reactor.rs")
            || self.path.contains("crates/playstore/src/reactor_client.rs")
    }

    /// Crates whose atomics feed the rendered report (cache and analysis
    /// counters end up in `PipelineReport::render_text`).
    fn in_report_crate(&self) -> bool {
        self.path.contains("crates/core/") || self.path.contains("crates/analysis/")
    }
}

/// Run every rule; returns raw `(rule, line)` findings in scan order.
pub(crate) fn run_all(ctx: &Ctx<'_>) -> Vec<(&'static str, u32)> {
    let mut out = Vec::new();
    rule_hashmap_iter_order(ctx, &mut out);
    rule_wall_clock(ctx, &mut out);
    rule_unwrap_in_fault_path(ctx, &mut out);
    rule_deprecated_api(ctx, &mut out);
    rule_lock_across_send(ctx, &mut out);
    rule_seed_from_entropy(ctx, &mut out);
    rule_float_accum_order(ctx, &mut out);
    rule_relaxed_ordering_in_report(ctx, &mut out);
    rule_todo_unimplemented(ctx, &mut out);
    rule_literal_duration_in_retry(ctx, &mut out);
    rule_blocking_call_in_reactor(ctx, &mut out);
    out
}

/// The per-token test mask for a file, path classification included —
/// shared with the semantic pass (test fns are exempt from taint and
/// channel-pairing findings, same as from the lexical rules).
pub(crate) fn test_mask_for(path: &str, lex: &Lexed) -> Vec<bool> {
    let norm = path.replace('\\', "/");
    let whole = norm.split('/').any(|c| c == "tests");
    compute_test_mask(lex, whole)
}

/// Mark every token inside `#[cfg(test)]` / `#[test]`-attributed items
/// (attribute through matching close brace). `whole` marks the entire
/// file (integration-test sources).
fn compute_test_mask(lex: &Lexed, whole: bool) -> Vec<bool> {
    let n = lex.toks.len();
    let mut mask = vec![whole; n];
    if whole {
        return mask;
    }
    let mut i = 0usize;
    while i < n {
        if !(lex.punct(i) == Some('#') && lex.punct(i + 1) == Some('[')) {
            i += 1;
            continue;
        }
        // Find the attribute's matching `]`.
        let mut depth = 0i32;
        let mut end = None;
        let mut j = i + 1;
        while j < n && j < i + 200 {
            match lex.punct(j) {
                Some('[') => depth += 1,
                Some(']') => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(j);
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(end) = end else {
            i += 1;
            continue;
        };
        let mut has_test = false;
        let mut has_not = false;
        for k in i..=end {
            match lex.ident(k) {
                Some("test") | Some("tests") => has_test = true,
                Some("not") => has_not = true,
                _ => {}
            }
        }
        if !has_test || has_not {
            i = end + 1;
            continue;
        }
        // Mark through the attributed item's body: the next `{ … }`
        // block, unless a `;` ends the item first (cfg'd use/static).
        let mut open = None;
        let mut k = end + 1;
        while k < n && k < end + 100 {
            match lex.punct(k) {
                Some('{') => {
                    open = Some(k);
                    break;
                }
                Some(';') => break,
                _ => {}
            }
            k += 1;
        }
        if let Some(open) = open {
            let mut bd = 0i32;
            let mut m = open;
            while m < n {
                match lex.punct(m) {
                    Some('{') => bd += 1,
                    Some('}') => {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            for t in mask.iter_mut().take(m.min(n - 1) + 1).skip(i) {
                *t = true;
            }
        }
        i = end + 1;
    }
    mask
}

/// Collect names declared with a hash-container type: `let` bindings whose
/// initialiser or type mentions `HashMap`/`HashSet`, plus field and
/// parameter declarations (`name: …HashMap<…>`), found by walking back
/// from the type name over type-ish tokens to a single `:`.
fn collect_hash_names(lex: &Lexed) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let n = lex.toks.len();
    let is_hash = |id: Option<&str>| matches!(id, Some("HashMap") | Some("HashSet"));

    for i in 0..n {
        if lex.ident(i) != Some("let") {
            continue;
        }
        let mut j = i + 1;
        if lex.ident(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = lex.ident(j) else { continue };
        let mut k = j + 1;
        while k < n && k < j + 100 {
            if lex.punct(k) == Some(';') {
                break;
            }
            if is_hash(lex.ident(k)) {
                names.insert(name.to_string());
                break;
            }
            k += 1;
        }
    }

    for i in 0..n {
        if !is_hash(lex.ident(i)) {
            continue;
        }
        let mut k = i;
        while k > 0 {
            k -= 1;
            let tok = &lex.toks[k];
            if tok.kind == TokKind::Ident {
                continue;
            }
            if tok.kind != TokKind::Punct {
                break;
            }
            match tok.text.chars().next() {
                Some('<') | Some('&') => continue,
                Some(':') => {
                    if k > 0 && lex.punct(k - 1) == Some(':') {
                        // `::` path separator — still inside the type.
                        k -= 1;
                        continue;
                    }
                    // Single `:` — the declaration boundary.
                    if k > 0 {
                        if let Some(name) = lex.ident(k - 1) {
                            names.insert(name.to_string());
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    names
}

/// Token indices where a known hash container is iterated: either
/// `name.iter()`-style method calls or `for … in [&][mut] name`.
fn hash_iteration_sites(ctx: &Ctx<'_>) -> Vec<usize> {
    let lex = ctx.lex;
    let n = lex.toks.len();
    let mut out = Vec::new();
    for i in 0..n {
        let Some(name) = lex.ident(i) else { continue };
        if !ctx.hash_names.contains(name) {
            continue;
        }
        if lex.punct(i + 1) == Some('.') {
            if let Some(m) = lex.ident(i + 2) {
                if ITER_METHODS.contains(&m) && lex.punct(i + 3) == Some('(') {
                    out.push(i + 2);
                    continue;
                }
            }
            // Other method calls (get, insert, len, …) are order-safe.
            continue;
        }
        // `for pat in &mut name` — walk back over `&`/`mut` to `in`, and
        // require a `for` shortly before it so `if x in …` shapes (none in
        // Rust, but cheap insurance) don't match.
        let mut b = i;
        while b > 0 && (lex.punct(b - 1) == Some('&') || lex.ident(b - 1) == Some("mut")) {
            b -= 1;
        }
        if b > 0 && lex.ident(b - 1) == Some("in") {
            let start = (b - 1).saturating_sub(10);
            if (start..b - 1).any(|k| lex.ident(k) == Some("for")) {
                out.push(i);
            }
        }
    }
    out
}

/// Rule `hashmap-iter-order`: iterating a `HashMap`/`HashSet` yields a
/// nondeterministic order; anything order-sensitive (rendered reports,
/// merged vectors, accumulated floats) must use `BTreeMap`/sorted keys.
/// Applies to test code too — goldens built from hash iteration flake.
fn rule_hashmap_iter_order(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    for site in hash_iteration_sites(ctx) {
        out.push(("hashmap-iter-order", ctx.lex.line(site)));
    }
}

/// Rule `wall-clock`: `Instant::now()` / `SystemTime::now()` outside test
/// code must go through the injectable `Clock` trait so watchdog and
/// deadline behaviour replays deterministically. Bench sources are exempt
/// (measuring wall time is their whole job).
fn rule_wall_clock(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    if ctx.is_bench {
        return;
    }
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if lex.matches(i, &[I("Instant"), P(':'), P(':'), I("now")])
            || lex.matches(i, &[I("SystemTime"), P(':'), P(':'), I("now")])
        {
            out.push(("wall-clock", lex.line(i)));
        }
    }
}

/// Rule `unwrap-in-fault-path`: `.unwrap()` / `.expect()` in non-test
/// playstore/harness sources — code chaos tests deliberately push into
/// fault paths, where a panic tears down a worker instead of producing a
/// typed error. Provably-infallible cases carry an allow with a reason.
fn rule_unwrap_in_fault_path(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    if !ctx.in_fault_path() {
        return;
    }
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if lex.punct(i) == Some('.')
            && matches!(lex.ident(i + 1), Some("unwrap") | Some("expect"))
            && lex.punct(i + 2) == Some('(')
        {
            out.push(("unwrap-in-fault-path", lex.line(i + 1)));
        }
    }
}

/// Rule `deprecated-api`: pre-builder crawler entry points that bypass
/// admission control. Kept as a rule (not just dead-code removal) so a
/// revert or copy-paste from an old branch fails the gate.
fn rule_deprecated_api(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if lex.matches(i, &[P('.'), I("with_retry"), P('(')])
            || lex.matches(i, &[P('.'), I("with_timeouts"), P('(')])
        {
            out.push(("deprecated-api", lex.line(i + 1)));
        }
        if lex.matches(i, &[I("Crawler"), P(':'), P(':'), I("connect"), P('(')]) {
            out.push(("deprecated-api", lex.line(i)));
        }
        // The bench CLI's positional-argument helper: calling it is the
        // deprecated act (`fn legacy_positional(` is its one definition,
        // not a call).
        if lex.matches(i, &[I("legacy_positional"), P('(')])
            && lex.ident(i.wrapping_sub(1)) != Some("fn")
        {
            out.push(("deprecated-api", lex.line(i)));
        }
    }
}

/// Blocking `Read`/`Write` combinators: each parks the calling thread
/// until the peer produces/consumes bytes, which inside a readiness loop
/// stalls every connection behind one slow peer.
const REACTOR_BLOCKING_METHODS: &[&str] = &["read_exact", "read_to_end", "read_to_string"];

/// The blocking proto helpers (they loop on a blocking stream until a
/// full frame arrives); the reactor must use the incremental
/// `parse_request` instead.
const REACTOR_BLOCKING_FNS: &[&str] = &["read_request", "read_response", "write_response"];

/// Rule `blocking-call-in-reactor`: blocking calls inside the reactor
/// module — `thread::sleep`, blocking connects, whole-frame proto
/// helpers, and `read_exact`-style combinators. One blocked thread there
/// freezes every connection the loop owns; delays belong on the timer
/// wheel and I/O on the non-blocking `try_read`/`try_write` pair. The
/// single sanctioned blocking point — `Reactor::poll` with a timeout —
/// does not match any of these shapes.
fn rule_blocking_call_in_reactor(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    if !ctx.in_reactor() {
        return;
    }
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if lex.matches(i, &[I("thread"), P(':'), P(':'), I("sleep")]) {
            out.push(("blocking-call-in-reactor", lex.line(i)));
        }
        if lex.matches(i, &[I("TcpStream"), P(':'), P(':')])
            && lex.ident(i + 3).is_some_and(|m| m.starts_with("connect"))
        {
            out.push(("blocking-call-in-reactor", lex.line(i)));
        }
        if lex.punct(i) == Some('.')
            && lex.ident(i + 1).is_some_and(|m| REACTOR_BLOCKING_METHODS.contains(&m))
            && lex.punct(i + 2) == Some('(')
        {
            out.push(("blocking-call-in-reactor", lex.line(i + 1)));
        }
        // Calls only — `fn read_request(` would be a definition.
        if lex.ident(i).is_some_and(|m| REACTOR_BLOCKING_FNS.contains(&m))
            && lex.punct(i + 1) == Some('(')
            && lex.ident(i.wrapping_sub(1)) != Some("fn")
        {
            out.push(("blocking-call-in-reactor", lex.line(i)));
        }
    }
}

/// Rule `lock-across-send`: calling `.send(…)` while a lock guard from a
/// `let g = ….lock()/.read()/.write()` binding is still live. Holding a
/// lock across a channel send invites lock-order inversions with the
/// receiver (the runtime `lock-order-check` feature catches the dynamic
/// version; this catches it in review). A binding stops being a guard at
/// `drop(g)` or when its scope closes; chains that extract a value
/// (`….lock().unwrap().clone()`) are not guards.
fn rule_lock_across_send(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    let lex = ctx.lex;
    let n = lex.toks.len();
    struct Guard {
        name: String,
        depth: i32,
    }
    let mut depth = 0i32;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0usize;
    while i < n {
        match lex.punct(i) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            _ => {}
        }
        if lex.ident(i) == Some("let") && !ctx.in_test(i) {
            let mut j = i + 1;
            if lex.ident(j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = lex.ident(j) {
                if let Some(after) = guard_acquisition(lex, j + 1) {
                    if statement_tail_is_guard(lex, after) {
                        guards.push(Guard {
                            name: name.to_string(),
                            depth,
                        });
                    }
                }
            }
        }
        if lex.ident(i) == Some("drop")
            && lex.punct(i + 1) == Some('(')
            && lex.punct(i + 3) == Some(')')
        {
            if let Some(name) = lex.ident(i + 2) {
                guards.retain(|g| g.name != name);
            }
        }
        if lex.punct(i) == Some('.')
            && lex.ident(i + 1) == Some("send")
            && lex.punct(i + 2) == Some('(')
            && !ctx.in_test(i)
            && !guards.is_empty()
        {
            out.push(("lock-across-send", lex.line(i + 1)));
        }
        i += 1;
    }
}

/// Scan a `let` initialiser for a no-argument `.lock()`/`.read()`/`.write()`
/// call before the statement's `;`. Returns the token index just past the
/// call's `()` on a match.
fn guard_acquisition(lex: &Lexed, from: usize) -> Option<usize> {
    let n = lex.toks.len();
    let mut k = from;
    while k < n && k < from + 120 {
        // `;` ends the statement; `{`/`|` open a block or closure whose
        // inner locks have their own `let` bindings — the outer binding
        // is a value, not a guard.
        if matches!(lex.punct(k), Some(';') | Some('{') | Some('|')) {
            return None;
        }
        if lex.punct(k) == Some('.')
            && matches!(lex.ident(k + 1), Some("lock") | Some("read") | Some("write"))
            && lex.punct(k + 2) == Some('(')
            && lex.punct(k + 3) == Some(')')
        {
            return Some(k + 4);
        }
        k += 1;
    }
    None
}

/// After the lock call, the binding is a guard only if the rest of the
/// statement is just `?`/`.unwrap(…)`/`.expect(…)` chained to the `;` —
/// any other method call extracts a value and releases the temporary.
fn statement_tail_is_guard(lex: &Lexed, mut k: usize) -> bool {
    let n = lex.toks.len();
    while k < n {
        if lex.punct(k) == Some(';') {
            return true;
        }
        if lex.punct(k) == Some('?') {
            k += 1;
            continue;
        }
        if lex.punct(k) == Some('.')
            && matches!(lex.ident(k + 1), Some("unwrap") | Some("expect"))
            && lex.punct(k + 2) == Some('(')
        {
            // Skip to the matching `)` (expect carries a message).
            let mut depth = 0i32;
            let mut m = k + 2;
            while m < n {
                match lex.punct(m) {
                    Some('(') => depth += 1,
                    Some(')') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
            continue;
        }
        return false;
    }
    false
}

/// Rule `seed-from-entropy`: RNGs must be seeded from configuration, not
/// OS entropy — `from_entropy`, `thread_rng`, `OsRng`, `rand::random` all
/// make a run unrepeatable. Applies to tests too; a test seeded from
/// entropy is a flake generator.
fn rule_seed_from_entropy(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if matches!(
            lex.ident(i),
            Some("from_entropy") | Some("thread_rng") | Some("OsRng")
        ) || lex.matches(i, &[I("rand"), P(':'), P(':'), I("random")])
        {
            out.push(("seed-from-entropy", lex.line(i)));
        }
    }
}

/// Rule `float-accum-order`: in the analysis crate, reducing a hash
/// iteration with `.sum()`/`.fold()`/`.product()` — float addition is not
/// associative, so the total depends on iteration order and the rendered
/// report stops being byte-stable.
fn rule_float_accum_order(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    if !ctx.in_analysis() {
        return;
    }
    let lex = ctx.lex;
    for site in hash_iteration_sites(ctx) {
        let end = (site + 64).min(lex.toks.len());
        for j in site..end {
            if lex.punct(j) == Some('.')
                && matches!(
                    lex.ident(j + 1),
                    Some("sum") | Some("fold") | Some("product")
                )
            {
                out.push(("float-accum-order", lex.line(j + 1)));
                break;
            }
        }
    }
}

/// Rule `relaxed-ordering-in-report`: `Ordering::Relaxed` in non-test
/// core/analysis sources. Counter atomics there (cache hits/misses,
/// analysis stats) are rendered into the merged report; `Relaxed`
/// increments are individually atomic but invite torn read-modify-write
/// *patterns* (load-then-store) that undercount under contention, and
/// counters that drift make the "byte-identical at any worker count"
/// tests flake. Use `SeqCst` — these are cold paths — or carry an allow
/// with a reason for a genuinely report-invisible atomic.
fn rule_relaxed_ordering_in_report(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    if !ctx.in_report_crate() {
        return;
    }
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if lex.matches(i, &[I("Ordering"), P(':'), P(':'), I("Relaxed")]) {
            out.push(("relaxed-ordering-in-report", lex.line(i)));
        }
    }
}

/// Rule `todo-unimplemented`: `todo!()` / `unimplemented!()` outside test
/// code — a chaos run that reaches one tears down a worker with a panic
/// instead of a typed error.
fn rule_todo_unimplemented(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    let lex = ctx.lex;
    for i in 0..lex.toks.len() {
        if ctx.in_test(i) {
            continue;
        }
        if matches!(lex.ident(i), Some("todo") | Some("unimplemented"))
            && lex.punct(i + 1) == Some('!')
        {
            out.push(("todo-unimplemented", lex.line(i)));
        }
    }
}

/// Function-name markers for retry/backoff/cool-down/probation paths.
const RETRY_FN_MARKERS: &[&str] = &["retry", "backoff", "cooldown", "cool_down", "probation"];

/// Rule `literal-duration-in-retry`: a `Duration::from_*(<number>)`
/// literal inside a function whose name marks it as a retry, backoff or
/// cool-down path. Literal durations there bypass both the injectable
/// clock discipline and the policy structs (`RetryPolicy`,
/// `probation_cooldown_ms`) that make fault schedules reproducible and
/// tunable — a hard-coded 250 ms sleep in a backoff loop is exactly how
/// chaos-test wall time quietly explodes. Constants that genuinely are
/// protocol invariants carry an `allow` with the reason.
fn rule_literal_duration_in_retry(ctx: &Ctx<'_>, out: &mut Vec<(&'static str, u32)>) {
    let lex = ctx.lex;
    let mask = retry_fn_mask(lex);
    for (i, in_retry) in mask.iter().enumerate() {
        if ctx.in_test(i) || !in_retry {
            continue;
        }
        if lex.matches(i, &[I("Duration"), P(':'), P(':')])
            && lex.ident(i + 3).is_some_and(|m| m.starts_with("from_"))
            && lex.punct(i + 4) == Some('(')
            && lex
                .toks
                .get(i + 5)
                .is_some_and(|t| t.kind == TokKind::Num)
        {
            out.push(("literal-duration-in-retry", lex.line(i)));
        }
    }
}

/// Per-token flag: inside the brace body of a `fn` whose name contains a
/// [`RETRY_FN_MARKERS`] substring (case-insensitive).
fn retry_fn_mask(lex: &Lexed) -> Vec<bool> {
    let n = lex.toks.len();
    let mut mask = vec![false; n];
    let mut i = 0usize;
    while i < n {
        let named_retry = lex.ident(i) == Some("fn")
            && lex.ident(i + 1).is_some_and(|name| {
                let lower = name.to_ascii_lowercase();
                RETRY_FN_MARKERS.iter().any(|m| lower.contains(m))
            });
        if !named_retry {
            i += 1;
            continue;
        }
        // Skip the signature to the body's opening brace, then mark
        // through its matching close.
        let mut j = i + 2;
        while j < n && lex.punct(j) != Some('{') {
            // A semicolon first means a trait method declaration: no body.
            if lex.punct(j) == Some(';') {
                break;
            }
            j += 1;
        }
        let mut depth = 0i32;
        while j < n && lex.punct(j) != Some(';') {
            match lex.punct(j) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    mask[j] = true;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            mask[j] = true;
            j += 1;
        }
        i = j.max(i + 1);
    }
    mask
}
