//! Channel endpoint inventory: creations, endpoint propagation, pairing
//! findings, and the machine-readable wait-for graph.
//!
//! Creations are `let (tx, rx) = …unbounded(…)` / `…unbounded_named("n",
//! …)` shapes inside fn bodies. Endpoint bindings propagate through
//! same-fn aliases (`let c = tx.clone();`, `let c = tx;`) and through
//! call arguments (argument position → callee parameter name) to a
//! fixpoint, so `rx` handed to a worker fn in another crate is still
//! recognised there. A `.send(…)` on a bound name is a sender use; a
//! `.recv(…)` / `.try_recv(…)` / `.recv_timeout(…)` / `.iter(…)` is a
//! receiver use.
//!
//! Findings: a channel whose sends have no receiver anywhere (or whose
//! receiver is never fed) is orphaned; a channel whose send and recv
//! sides live in different crates must carry a documented
//! `// gaugelint: channel-pair(name) — reason` at the creation.
//!
//! The wait-for graph (one edge `from → to` whenever some fn transitively
//! sends on `from` while also transitively receiving on `to`) is emitted
//! as deterministic JSON for the runtime deadlock detector in vendored
//! parking_lot to consume.

use crate::callgraph::CallGraph;
use crate::items::ItemGraph;
use crate::lexer::{Directive, Lexed};
use std::collections::{BTreeMap, BTreeSet};

/// One channel creation site.
#[derive(Debug, Clone)]
pub struct Channel {
    /// Index in the inventory.
    pub id: usize,
    /// Stable name: `channel-pair` directive > `unbounded_named` literal >
    /// `file:line` of the creation.
    pub name: String,
    /// File of the creation.
    pub file: String,
    /// Line of the creation.
    pub line: u32,
    /// Enclosing fn.
    pub created_in: usize,
    /// Documented by a `channel-pair` directive?
    pub paired: bool,
}

/// One endpoint use.
#[derive(Debug, Clone)]
pub struct EndpointUse {
    /// Channel used.
    pub chan: usize,
    /// Fn the use is in.
    pub fn_id: usize,
    /// File of the use.
    pub file: String,
    /// Line of the use.
    pub line: u32,
    /// `true` for `.send(…)`, `false` for the recv family.
    pub send: bool,
}

/// A pairing finding.
#[derive(Debug, Clone)]
pub struct ChanFinding {
    /// Rule name (`channel-orphan-sender`, `channel-orphan-receiver`,
    /// `channel-unpaired-cross-crate`).
    pub rule: &'static str,
    /// File of the creation site.
    pub file: String,
    /// Line of the creation site.
    pub line: u32,
    /// Detail: channel name plus the crates involved.
    pub detail: String,
}

/// The full channel analysis result.
#[derive(Debug, Default)]
pub struct ChannelReport {
    /// Inventory, in creation order.
    pub channels: Vec<Channel>,
    /// All endpoint uses.
    pub uses: Vec<EndpointUse>,
    /// Pairing findings.
    pub findings: Vec<ChanFinding>,
    /// Deterministic JSON wait-for graph.
    pub waitfor_json: String,
}

const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout", "iter"];

/// Run the channel analysis over the workspace.
pub fn run(
    graph: &ItemGraph,
    cg: &CallGraph,
    lexed: &BTreeMap<String, Lexed>,
) -> ChannelReport {
    let mut report = ChannelReport::default();
    // (fn_id, var) → (chan, originally-sender). The bool is advisory —
    // uses are classified by method name, not endpoint kind.
    let mut bindings: BTreeMap<(usize, String), usize> = BTreeMap::new();
    // Same-fn aliases to re-evaluate each fixpoint round.
    let mut aliases: Vec<(usize, String, String)> = Vec::new();

    for (file, lex) in lexed {
        let owner = crate::callgraph::owner_map(graph, file, lex.toks.len());
        let pair_names: BTreeMap<u32, String> = lex
            .directives
            .iter()
            .filter_map(|d| match d {
                Directive::ChannelPair { line, name } => Some((*line, name.clone())),
                _ => None,
            })
            .collect();
        let n = lex.toks.len();
        for i in 0..n {
            let Some(fn_id) = owner.get(i).copied().flatten() else {
                continue;
            };
            // Creation: `let ( a , b ) = … unbounded[_named] (`.
            if matches!(lex.ident(i), Some("unbounded") | Some("unbounded_named")) {
                let named = lex.ident(i) == Some("unbounded_named");
                let Some(open) = call_open(lex, i + 1) else {
                    continue;
                };
                let Some((tx, rx)) = let_tuple_before(lex, i) else {
                    continue;
                };
                let line = lex.line(i);
                let directive_name = pair_names
                    .get(&line)
                    .or_else(|| pair_names.get(&line.saturating_sub(1)))
                    .cloned();
                let literal_name = if named {
                    (open + 1..n.min(open + 4)).find_map(|k| {
                        let t = lex.toks.get(k)?;
                        (t.kind == crate::lexer::TokKind::Str).then(|| t.text.clone())
                    })
                } else {
                    None
                };
                let paired = directive_name.is_some();
                let name = directive_name
                    .or(literal_name)
                    .unwrap_or_else(|| format!("{file}:{line}"));
                let id = report.channels.len();
                report.channels.push(Channel {
                    id,
                    name,
                    file: file.clone(),
                    line,
                    created_in: fn_id,
                    paired,
                });
                bindings.insert((fn_id, tx), id);
                bindings.insert((fn_id, rx), id);
                continue;
            }
            // Alias: `let [mut] c = a [.clone()] ;`.
            if lex.ident(i) == Some("let") {
                let mut j = i + 1;
                if lex.ident(j) == Some("mut") {
                    j += 1;
                }
                if let (Some(c), Some('='), Some(a)) =
                    (lex.ident(j), lex.punct(j + 1), lex.ident(j + 2))
                {
                    let tail_ok = lex.punct(j + 3) == Some(';')
                        || (lex.punct(j + 3) == Some('.') && lex.ident(j + 4) == Some("clone"));
                    if tail_ok && c != a {
                        aliases.push((fn_id, c.to_string(), a.to_string()));
                    }
                }
            }
        }
    }

    // Propagate bindings: aliases + call-arg → callee-param, to fixpoint.
    loop {
        let mut changed = false;
        for (fn_id, c, a) in &aliases {
            if let Some(&chan) = bindings.get(&(*fn_id, a.clone())) {
                changed |= bindings.insert((*fn_id, c.clone()), chan).is_none();
            }
        }
        for e in &cg.edges {
            let callee = &graph.fns[e.callee];
            for (pos, arg) in e.args.iter().enumerate() {
                let Some(arg) = arg else { continue };
                let Some(&chan) = bindings.get(&(e.caller, arg.clone())) else {
                    continue;
                };
                let Some(param) = callee.params.get(pos) else {
                    continue;
                };
                if param.is_empty() || param == "self" {
                    continue;
                }
                changed |= bindings.insert((e.callee, param.clone()), chan).is_none();
            }
        }
        if !changed {
            break;
        }
    }

    // Endpoint uses: `bound.send(` / `bound.recv(` etc.
    for (file, lex) in lexed {
        let owner = crate::callgraph::owner_map(graph, file, lex.toks.len());
        for i in 0..lex.toks.len() {
            if lex.punct(i) != Some('.') {
                continue;
            }
            let Some(method) = lex.ident(i + 1) else {
                continue;
            };
            let send = method == "send";
            if !send && !RECV_METHODS.contains(&method) {
                continue;
            }
            let Some(var) = lex.ident(i.wrapping_sub(1)) else {
                continue;
            };
            let Some(fn_id) = owner.get(i).copied().flatten() else {
                continue;
            };
            let Some(&chan) = bindings.get(&(fn_id, var.to_string())) else {
                continue;
            };
            report.uses.push(EndpointUse {
                chan,
                fn_id,
                file: file.clone(),
                line: lex.line(i + 1),
                send,
            });
        }
    }
    report
        .uses
        .sort_by(|a, b| (a.chan, &a.file, a.line, a.send).cmp(&(b.chan, &b.file, b.line, b.send)));

    // Pairing findings. Channels created inside test code are exempt —
    // tests wire ad-hoc channels freely.
    for ch in &report.channels {
        if graph.fns[ch.created_in].is_test {
            continue;
        }
        let sends: Vec<&EndpointUse> =
            report.uses.iter().filter(|u| u.chan == ch.id && u.send).collect();
        let recvs: Vec<&EndpointUse> =
            report.uses.iter().filter(|u| u.chan == ch.id && !u.send).collect();
        if !sends.is_empty() && recvs.is_empty() {
            report.findings.push(ChanFinding {
                rule: "channel-orphan-sender",
                file: ch.file.clone(),
                line: ch.line,
                detail: format!("channel `{}` is sent to but never received from", ch.name),
            });
        }
        if sends.is_empty() && !recvs.is_empty() {
            report.findings.push(ChanFinding {
                rule: "channel-orphan-receiver",
                file: ch.file.clone(),
                line: ch.line,
                detail: format!("channel `{}` is received from but never fed", ch.name),
            });
        }
        let send_crates: BTreeSet<&str> = sends
            .iter()
            .map(|u| graph.fns[u.fn_id].crate_key.as_str())
            .collect();
        let recv_crates: BTreeSet<&str> = recvs
            .iter()
            .map(|u| graph.fns[u.fn_id].crate_key.as_str())
            .collect();
        let cross = send_crates
            .iter()
            .any(|s| recv_crates.iter().any(|r| r != s));
        if cross && !ch.paired {
            report.findings.push(ChanFinding {
                rule: "channel-unpaired-cross-crate",
                file: ch.file.clone(),
                line: ch.line,
                detail: format!(
                    "channel `{}` crosses crates (send: {}, recv: {}) without a channel-pair annotation",
                    ch.name,
                    send_crates.into_iter().collect::<Vec<_>>().join("+"),
                    recv_crates.into_iter().collect::<Vec<_>>().join("+"),
                ),
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    report.waitfor_json = render_waitfor(graph, cg, &report);
    report
}

/// `i` may start a `::<…>` turbofish; returns the index of the call's
/// `(` when one follows.
fn call_open(lex: &Lexed, i: usize) -> Option<usize> {
    let mut j = i;
    if lex.punct(j) == Some(':') && lex.punct(j + 1) == Some(':') && lex.punct(j + 2) == Some('<') {
        let mut depth = 0i32;
        let mut k = j + 2;
        while k < lex.toks.len() {
            match lex.punct(k) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    (lex.punct(j) == Some('(')).then_some(j)
}

/// Walk back from the call ident over `seg ::` path qualifiers to find a
/// `let ( a , b ) =` pattern; returns the two bound names.
fn let_tuple_before(lex: &Lexed, call: usize) -> Option<(String, String)> {
    let mut b = call;
    while b >= 3
        && lex.punct(b - 1) == Some(':')
        && lex.punct(b - 2) == Some(':')
        && lex.ident(b - 3).is_some()
    {
        b -= 3;
    }
    if b < 1 || lex.punct(b - 1) != Some('=') {
        return None;
    }
    // `( a , b )` before the `=`, tolerating `mut` in either slot.
    let mut k = b - 1;
    if k < 1 || lex.punct(k - 1) != Some(')') {
        return None;
    }
    k -= 1;
    let rx = lex.ident(k.checked_sub(1)?)?.to_string();
    k -= 1;
    if lex.ident(k.checked_sub(1)?) == Some("mut") {
        k -= 1;
    }
    if lex.punct(k.checked_sub(1)?) != Some(',') {
        return None;
    }
    k -= 1;
    let tx = lex.ident(k.checked_sub(1)?)?.to_string();
    k -= 1;
    if lex.ident(k.checked_sub(1)?) == Some("mut") {
        k -= 1;
    }
    if lex.punct(k.checked_sub(1)?) != Some('(') {
        return None;
    }
    Some((tx, rx))
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", crate::json_escape(s))
}

/// Render the wait-for graph. A fn's *transitive* send/recv channel sets
/// close over the call graph (caller inherits callee sets); an edge
/// `from → to` means some fn can send on `from` while its completion
/// depends on a recv from `to` — exactly the dependency shape the
/// runtime detector pairs with its blocked-thread registry.
fn render_waitfor(graph: &ItemGraph, cg: &CallGraph, report: &ChannelReport) -> String {
    let nfns = graph.fns.len();
    let mut sends: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nfns];
    let mut recvs: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nfns];
    for u in &report.uses {
        if u.send {
            sends[u.fn_id].insert(u.chan);
        } else {
            recvs[u.fn_id].insert(u.chan);
        }
    }
    loop {
        let mut changed = false;
        for e in &cg.edges {
            let add_s: Vec<usize> = sends[e.callee].iter().copied().collect();
            let add_r: Vec<usize> = recvs[e.callee].iter().copied().collect();
            for c in add_s {
                changed |= sends[e.caller].insert(c);
            }
            for c in add_r {
                changed |= recvs[e.caller].insert(c);
            }
        }
        if !changed {
            break;
        }
    }

    // wait edge (from, to, via) — deduped via BTreeSet ordering.
    let mut edges: BTreeSet<(String, String, String, String)> = BTreeSet::new();
    for (fid, f) in graph.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for &s in &sends[fid] {
            for &r in &recvs[fid] {
                if s == r {
                    continue;
                }
                edges.insert((
                    report.channels[s].name.clone(),
                    report.channels[r].name.clone(),
                    f.path(),
                    format!("{}:{}", f.file, f.line),
                ));
            }
        }
    }

    let mut out = String::from("{\n  \"version\": 1,\n  \"channels\": [\n");
    let mut chans: Vec<&Channel> = report.channels.iter().collect();
    chans.sort_by(|a, b| (&a.name, &a.file, a.line).cmp(&(&b.name, &b.file, b.line)));
    for (i, ch) in chans.iter().enumerate() {
        let fmt_uses = |send: bool| -> String {
            report
                .uses
                .iter()
                .filter(|u| u.chan == ch.id && u.send == send)
                .map(|u| {
                    format!(
                        "{{\"fn\": {}, \"site\": {}}}",
                        json_str(&graph.fns[u.fn_id].path()),
                        json_str(&format!("{}:{}", u.file, u.line)),
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "    {{\"name\": {}, \"created\": {}, \"senders\": [{}], \"receivers\": [{}]}}{}\n",
            json_str(&ch.name),
            json_str(&format!("{}:{}", ch.file, ch.line)),
            fmt_uses(true),
            fmt_uses(false),
            if i + 1 < chans.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"wait_edges\": [\n");
    let edges: Vec<_> = edges.into_iter().collect();
    for (i, (from, to, via, site)) in edges.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"from\": {}, \"to\": {}, \"via\": {}, \"site\": {}}}{}\n",
            json_str(from),
            json_str(to),
            json_str(via),
            json_str(site),
            if i + 1 < edges.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
