//! Name-resolved call graph over the item graph.
//!
//! Call sites are token shapes (`name(…)`, `a::b::name(…)`, `.method(…)`)
//! found inside `fn` bodies and attributed to the innermost enclosing
//! `fn`. Resolution is conservative and deterministic:
//!
//! * qualified calls resolve to every workspace `fn` whose qualified
//!   segment list (`crate`, modules…, `impl` type, name) contains the
//!   call's qualifiers as a subsequence;
//! * unqualified calls resolve through the file's `use` imports, then to
//!   same-crate `fn`s of that name;
//! * method calls resolve to every `impl` method of that name anywhere in
//!   the workspace.
//!
//! Over-approximation is deliberate: the taint pass built on top treats
//! "might call" as "calls", so a spurious edge can at worst surface a
//! finding for a human to sever with an annotation — never hide one.
//! Calls that resolve to nothing (std, vendored crates) produce no edge.

use crate::items::{FnItem, ItemGraph};
use crate::lexer::Lexed;
use std::collections::{BTreeMap, BTreeSet};

/// One resolved call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Calling `fn` (id into [`ItemGraph::fns`]).
    pub caller: usize,
    /// Called `fn`.
    pub callee: usize,
    /// File of the call site.
    pub file: String,
    /// Line of the call site.
    pub line: u32,
    /// First identifier of each top-level argument (`None` for literal
    /// or complex arguments) — consumed by the channel endpoint pass.
    pub args: Vec<Option<String>>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All resolved edges, sorted by (caller, callee, file, line).
    pub edges: Vec<Edge>,
    /// Caller fn id → indexes into [`CallGraph::edges`].
    pub out: BTreeMap<usize, Vec<usize>>,
}

/// Keywords that read like calls (`return (a, b)`, `match (x) {…}`).
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "fn", "let", "else",
    "impl", "dyn", "where", "unsafe", "break",
];

/// Per-token innermost-fn owner map for one file.
pub fn owner_map(graph: &ItemGraph, file: &str, n_toks: usize) -> Vec<Option<usize>> {
    let mut owner = vec![None; n_toks];
    let Some(items) = graph.files.get(file) else {
        return owner;
    };
    // Fill larger spans first so inner (smaller) fns overwrite.
    let mut ids: Vec<usize> = items
        .fn_ids
        .iter()
        .copied()
        .filter(|&id| graph.fns[id].body.is_some())
        .collect();
    ids.sort_by_key(|&id| {
        let (open, close) = graph.fns[id].body.expect("filtered to Some");
        std::cmp::Reverse(close.saturating_sub(open))
    });
    for id in ids {
        let (open, close) = graph.fns[id].body.expect("filtered to Some");
        for o in owner.iter_mut().take(close.min(n_toks.saturating_sub(1)) + 1).skip(open) {
            *o = Some(id);
        }
    }
    owner
}

/// A call shape found in a body, before resolution.
struct RawCall {
    caller: usize,
    line: u32,
    /// Path qualifiers before the final name (empty for plain calls);
    /// `None` name means a `.method(` call.
    quals: Vec<String>,
    name: String,
    method: bool,
    args: Vec<Option<String>>,
}

/// Build the call graph across every parsed file. `lexed` maps the same
/// keys as [`ItemGraph::files`] to their token streams.
pub fn build(graph: &ItemGraph, lexed: &BTreeMap<String, Lexed>) -> CallGraph {
    // Resolution indexes.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for f in &graph.fns {
        if f.body.is_none() {
            continue;
        }
        by_name.entry(&f.name).or_default().push(f.id);
        if f.self_ty.is_some() {
            methods.entry(&f.name).or_default().push(f.id);
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for (file, lex) in lexed {
        let owner = owner_map(graph, file, lex.toks.len());
        let imports = graph
            .files
            .get(file)
            .map(|fi| &fi.imports)
            .cloned()
            .unwrap_or_default();
        for raw in extract_calls(lex, &owner) {
            let caller = &graph.fns[raw.caller];
            let candidates = if raw.method {
                methods.get(raw.name.as_str()).cloned().unwrap_or_default()
            } else {
                resolve_plain(graph, &by_name, &imports, caller, &raw)
            };
            for callee in candidates {
                if callee == raw.caller {
                    continue; // self-recursion adds nothing to reachability
                }
                edges.push(Edge {
                    caller: raw.caller,
                    callee,
                    file: file.clone(),
                    line: raw.line,
                    args: raw.args.clone(),
                });
            }
        }
    }
    edges.sort_by(|a, b| {
        (a.caller, a.callee, &a.file, a.line).cmp(&(b.caller, b.callee, &b.file, b.line))
    });
    edges.dedup_by(|a, b| a.caller == b.caller && a.callee == b.callee && a.line == b.line);
    let mut out: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (i, e) in edges.iter().enumerate() {
        out.entry(e.caller).or_default().push(i);
    }
    CallGraph { edges, out }
}

/// Resolve a plain or path-qualified call to candidate fn ids.
fn resolve_plain(
    graph: &ItemGraph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    imports: &BTreeMap<String, Vec<String>>,
    caller: &FnItem,
    raw: &RawCall,
) -> Vec<usize> {
    let Some(cands) = by_name.get(raw.name.as_str()) else {
        return Vec::new();
    };
    // Expand the leading qualifier (or the bare name) through imports.
    let mut quals: Vec<String> = Vec::new();
    if raw.quals.is_empty() {
        if let Some(path) = imports.get(&raw.name) {
            quals = path[..path.len().saturating_sub(1)].to_vec();
        }
    } else {
        if let Some(path) = imports.get(&raw.quals[0]) {
            quals.extend(path.iter().cloned());
        } else {
            quals.push(raw.quals[0].clone());
        }
        quals.extend(raw.quals[1..].iter().cloned());
    }
    // Normalize: drop `crate`/`self`/`super` (they pin the caller's own
    // crate, enforced below), strip the `gaugenn_` dependency prefix.
    let own_crate = quals.iter().any(|q| q == "crate" || q == "self" || q == "super");
    let quals: Vec<String> = quals
        .into_iter()
        .filter(|q| !matches!(q.as_str(), "crate" | "self" | "super" | "std" | "core" | "alloc"))
        .map(|q| q.strip_prefix("gaugenn_").unwrap_or(&q).to_string())
        .collect();

    if quals.is_empty() && !own_crate {
        // Unqualified, unimported: same module first, then same crate.
        let same_module: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| {
                let f = &graph.fns[id];
                f.crate_key == caller.crate_key && f.module == caller.module && f.self_ty.is_none()
            })
            .collect();
        if !same_module.is_empty() {
            return same_module;
        }
        return cands
            .iter()
            .copied()
            .filter(|&id| {
                let f = &graph.fns[id];
                f.crate_key == caller.crate_key && f.self_ty.is_none()
            })
            .collect();
    }

    cands
        .iter()
        .copied()
        .filter(|&id| {
            let f = &graph.fns[id];
            if own_crate && f.crate_key != caller.crate_key {
                return false;
            }
            // The call's qualifiers must appear, in order, inside the
            // fn's own qualified segment list.
            let mut segs: Vec<&str> = vec![f.crate_key.as_str()];
            segs.extend(f.module.iter().map(String::as_str));
            if let Some(ty) = &f.self_ty {
                segs.push(ty);
            }
            is_subsequence(&quals, &segs)
        })
        .collect()
}

fn is_subsequence(needle: &[String], hay: &[&str]) -> bool {
    let mut it = hay.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Extract raw call shapes from one token stream, attributing each to the
/// innermost enclosing fn.
fn extract_calls(lex: &Lexed, owner: &[Option<usize>]) -> Vec<RawCall> {
    let n = lex.toks.len();
    let mut out = Vec::new();
    for i in 0..n {
        let Some(caller) = owner.get(i).copied().flatten() else {
            continue;
        };
        // Method call: `. name [::<…>] (`.
        if lex.punct(i) == Some('.') {
            if let Some(name) = lex.ident(i + 1) {
                if let Some(open) = after_turbofish(lex, i + 2) {
                    if lex.punct(open) == Some('(') {
                        out.push(RawCall {
                            caller,
                            line: lex.line(i + 1),
                            quals: Vec::new(),
                            name: name.to_string(),
                            method: true,
                            args: extract_args(lex, open),
                        });
                    }
                }
            }
            continue;
        }
        // Plain / path call: `name [::<…>] (` not preceded by `.` or `fn`
        // and not a macro (`name!`).
        let Some(name) = lex.ident(i) else { continue };
        if NOT_CALLS.contains(&name) {
            continue;
        }
        if matches!(lex.punct(i.wrapping_sub(1)), Some('.') | Some('!'))
            || lex.ident(i.wrapping_sub(1)) == Some("fn")
        {
            continue;
        }
        // Skip path *middles*: `a::name::b(…)` — name is a qualifier here.
        if lex.punct(i + 1) == Some(':') && lex.punct(i + 2) == Some(':') {
            continue;
        }
        if lex.punct(i + 1) == Some('!') {
            continue; // macro
        }
        let Some(open) = after_turbofish(lex, i + 1) else {
            continue;
        };
        if lex.punct(open) != Some('(') {
            continue;
        }
        // Walk back over `seg ::` qualifiers.
        let mut quals: Vec<String> = Vec::new();
        let mut b = i;
        while b >= 2
            && lex.punct(b - 1) == Some(':')
            && lex.punct(b - 2) == Some(':')
            && b >= 3
            && lex.ident(b - 3).is_some()
        {
            quals.insert(0, lex.ident(b - 3).expect("checked").to_string());
            b -= 3;
        }
        out.push(RawCall {
            caller,
            line: lex.line(i),
            quals,
            name: name.to_string(),
            method: false,
            args: extract_args(lex, open),
        });
    }
    out
}

/// Skip a `::<…>` turbofish starting at `i`; returns the index of the
/// token after it (or `i` unchanged when there is none).
fn after_turbofish(lex: &Lexed, i: usize) -> Option<usize> {
    if lex.punct(i) == Some(':') && lex.punct(i + 1) == Some(':') && lex.punct(i + 2) == Some('<') {
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < lex.toks.len() {
            match lex.punct(j) {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        return None;
    }
    Some(i)
}

/// First identifier of each top-level argument of the call whose `(` is
/// at `open`.
fn extract_args(lex: &Lexed, open: usize) -> Vec<Option<String>> {
    let n = lex.toks.len();
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    let mut start = open + 1;
    while j < n {
        match lex.punct(j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                depth -= 1;
                if depth == 0 {
                    if j > start {
                        args.push(first_arg_ident(lex, start, j));
                    }
                    break;
                }
            }
            Some(',') if depth == 1 => {
                args.push(first_arg_ident(lex, start, j));
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    args
}

/// First identifier of an argument slice, skipping `&`/`mut`/`move`/`*`
/// and closure pipes — `&rx`, `move || f(rx)` both yield their first
/// meaningful name.
fn first_arg_ident(lex: &Lexed, start: usize, end: usize) -> Option<String> {
    for k in start..end {
        if let Some(id) = lex.ident(k) {
            if matches!(id, "mut" | "move") {
                continue;
            }
            return Some(id.to_string());
        }
    }
    None
}

/// Transitive closure helper: every fn reachable from `roots` following
/// out-edges, with `blocked` edges excluded. Returns the visit set plus a
/// BFS parent map (edge index used to reach each fn) for chain rendering.
pub fn reachable(
    cg: &CallGraph,
    roots: &[usize],
    blocked: &BTreeSet<usize>,
) -> (BTreeSet<usize>, BTreeMap<usize, usize>) {
    let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: std::collections::VecDeque<usize> = roots.iter().copied().collect();
    while let Some(f) = queue.pop_front() {
        if let Some(out) = cg.out.get(&f) {
            for &ei in out {
                if blocked.contains(&ei) {
                    continue;
                }
                let e = &cg.edges[ei];
                if seen.insert(e.callee) {
                    parent.insert(e.callee, ei);
                    queue.push_back(e.callee);
                }
            }
        }
    }
    (seen, parent)
}
