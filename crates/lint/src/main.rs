//! gaugelint CLI: `cargo run -p lint -- [flags] crates tests`.
//!
//! Walks the given roots (default `crates tests`) for `.rs` files —
//! skipping `target/`, `vendor/`, `fixtures/`, and `.git/` — runs the
//! whole-workspace pass (lexical rules + item-graph taint + channel
//! pairing), prints findings, and exits non-zero if anything
//! unsuppressed (and not baselined) was found.
//!
//! Flags:
//!
//! * `--format human|json` — output format (default `human`). The JSON
//!   schema is stable: one finding object per line with `rule`, `path`,
//!   `line`, `snippet`, `suppressed`, and optional `detail` keys, then a
//!   `summary` object.
//! * `--baseline <file>` — a previous `--format json` run; only findings
//!   *beyond* the baseline (per `rule|path|snippet` key count) fail the
//!   run.
//! * `--waitfor <file>` — write the channel wait-for graph JSON here.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "human".to_string();
    let mut baseline: Option<String> = None;
    let mut waitfor: Option<String> = None;
    let mut roots: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next() {
                Some(v) if v == "human" || v == "json" => format = v,
                _ => {
                    eprintln!("gaugelint: --format takes `human` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(v),
                None => {
                    eprintln!("gaugelint: --baseline needs a file");
                    return ExitCode::from(2);
                }
            },
            "--waitfor" => match args.next() {
                Some(v) => waitfor = Some(v),
                None => {
                    eprintln!("gaugelint: --waitfor needs a file");
                    return ExitCode::from(2);
                }
            },
            _ => roots.push(a),
        }
    }
    if roots.is_empty() {
        roots = vec!["crates".to_string(), "tests".to_string()];
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for root in &roots {
        let p = Path::new(root);
        if !p.exists() {
            eprintln!("gaugelint: no such path: {root}");
            return ExitCode::from(2);
        }
        collect(p, &mut files);
    }
    files.sort();
    files.dedup();

    let mut sources: Vec<(String, String)> = Vec::new();
    for f in &files {
        let Ok(src) = std::fs::read_to_string(f) else {
            eprintln!("gaugelint: skipping unreadable file {}", f.display());
            continue;
        };
        sources.push((f.to_string_lossy().replace('\\', "/"), src));
    }

    let report = lint::lint_workspace(&sources);

    if let Some(path) = &waitfor {
        if let Err(e) = std::fs::write(path, &report.waitfor_json) {
            eprintln!("gaugelint: cannot write wait-for graph {path}: {e}");
            return ExitCode::from(2);
        }
    }

    // Baseline filter: a finding fails the run only when its
    // `rule|path|snippet` key occurs more often than in the baseline.
    let baseline_counts: BTreeMap<String, usize> = match &baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => baseline_keys(&text),
            Err(e) => {
                eprintln!("gaugelint: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => BTreeMap::new(),
    };
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let mut failing = 0usize;
    let mut baselined = 0usize;
    for f in &report.findings {
        let key = finding_key(f.rule, &f.file, &f.snippet);
        let n = seen.entry(key.clone()).or_insert(0);
        *n += 1;
        if *n <= baseline_counts.get(&key).copied().unwrap_or(0) {
            baselined += 1;
        } else {
            failing += 1;
        }
    }

    match format.as_str() {
        "json" => print_json(&report),
        _ => print_human(&report, baselined),
    }

    if failing > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_human(report: &lint::WorkspaceReport, baselined: usize) {
    for fd in &report.findings {
        println!("gaugelint[{}] {}:{}: {}", fd.rule, fd.file, fd.line, fd.snippet);
        if let Some(d) = &fd.detail {
            println!("    chain: {d}");
        }
    }
    let mut per_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for fd in &report.findings {
        *per_rule.entry(fd.rule).or_insert(0) += 1;
    }
    // Machine-readable trailer (stable key order; no JSON library needed).
    let per_rule_json = per_rule
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "gaugelint-summary {{\"files\":{},\"findings\":{},\"suppressed\":{},\"baselined\":{},\"per_rule\":{{{}}}}}",
        report.files,
        report.findings.len(),
        report.suppressed_findings.len(),
        baselined,
        per_rule_json
    );
}

fn print_json(report: &lint::WorkspaceReport) {
    println!("{{");
    println!("  \"version\": 1,");
    println!("  \"findings\": [");
    let all: Vec<(&lint::Finding, bool)> = report
        .findings
        .iter()
        .map(|f| (f, false))
        .chain(report.suppressed_findings.iter().map(|f| (f, true)))
        .collect();
    for (i, (f, sup)) in all.iter().enumerate() {
        let detail = f
            .detail
            .as_ref()
            .map(|d| format!(", \"detail\": \"{}\"", lint::json_escape(d)))
            .unwrap_or_default();
        println!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"snippet\": \"{}\", \"suppressed\": {}{}}}{}",
            f.rule,
            lint::json_escape(&f.file),
            f.line,
            lint::json_escape(&f.snippet),
            sup,
            detail,
            if i + 1 < all.len() { "," } else { "" }
        );
    }
    println!("  ],");
    println!(
        "  \"summary\": {{\"files\": {}, \"findings\": {}, \"suppressed\": {}}}",
        report.files,
        report.findings.len(),
        report.suppressed_findings.len()
    );
    println!("}}");
}

fn finding_key(rule: &str, path: &str, snippet: &str) -> String {
    format!(
        "{rule}|{}|{}",
        lint::json_escape(path),
        lint::json_escape(snippet)
    )
}

/// Parse a baseline file (the JSON output of a previous run) into
/// `rule|path|snippet` → count. One finding object per line, so a line
/// scan with quoted-field extraction is enough — and unsuppressed
/// findings only (a suppression in the tree shouldn't hide a new
/// identical finding elsewhere).
fn baseline_keys(text: &str) -> BTreeMap<String, usize> {
    let mut out: BTreeMap<String, usize> = BTreeMap::new();
    for line in text.lines() {
        let Some(rule) = json_field(line, "rule") else {
            continue;
        };
        let (Some(path), Some(snippet)) = (json_field(line, "path"), json_field(line, "snippet"))
        else {
            continue;
        };
        if line.contains("\"suppressed\": true") {
            continue;
        }
        *out.entry(format!("{rule}|{path}|{snippet}")).or_insert(0) += 1;
    }
    out
}

/// Extract the raw (still-escaped) value of `"key": "value"` from a
/// single-line JSON object.
fn json_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                out.push('\\');
                if let Some(n) = chars.next() {
                    out.push(n);
                }
            }
            '"' => return Some(out),
            c => out.push(c),
        }
    }
    None
}

/// Recursively gather `.rs` files, skipping build output, vendored code,
/// and binary fixtures.
fn collect(p: &Path, out: &mut Vec<PathBuf>) {
    if p.is_dir() {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if matches!(name, "target" | "vendor" | "fixtures" | ".git") {
            return;
        }
        let Ok(rd) = std::fs::read_dir(p) else { return };
        let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
        entries.sort();
        for e in entries {
            collect(&e, out);
        }
    } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
        out.push(p.to_path_buf());
    }
}
