//! gaugelint CLI: `cargo run -p lint -- crates tests`.
//!
//! Walks the given roots (default `crates tests`) for `.rs` files —
//! skipping `target/`, `vendor/`, `fixtures/`, and `.git/` — lints each,
//! prints one line per finding plus a machine-readable summary trailer,
//! and exits non-zero if anything unsuppressed was found.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<String> = if args.is_empty() {
        vec!["crates".to_string(), "tests".to_string()]
    } else {
        args
    };

    let mut files: Vec<PathBuf> = Vec::new();
    for root in &roots {
        let p = Path::new(root);
        if !p.exists() {
            eprintln!("gaugelint: no such path: {root}");
            return ExitCode::from(2);
        }
        collect(p, &mut files);
    }
    files.sort();
    files.dedup();

    let mut findings = 0usize;
    let mut suppressed = 0usize;
    let mut per_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for f in &files {
        let Ok(src) = std::fs::read_to_string(f) else {
            eprintln!("gaugelint: skipping unreadable file {}", f.display());
            continue;
        };
        let rel = f.to_string_lossy().replace('\\', "/");
        let report = lint::lint_source(&rel, &src);
        suppressed += report.suppressed;
        for fd in &report.findings {
            println!("gaugelint[{}] {}:{}: {}", fd.rule, fd.file, fd.line, fd.snippet);
            *per_rule.entry(fd.rule).or_insert(0) += 1;
            findings += 1;
        }
    }

    // Machine-readable trailer (stable key order; no JSON library needed).
    let per_rule_json = per_rule
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    println!(
        "gaugelint-summary {{\"files\":{},\"findings\":{},\"suppressed\":{},\"per_rule\":{{{}}}}}",
        files.len(),
        findings,
        suppressed,
        per_rule_json
    );
    if findings > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Recursively gather `.rs` files, skipping build output, vendored code,
/// and binary fixtures.
fn collect(p: &Path, out: &mut Vec<PathBuf>) {
    if p.is_dir() {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if matches!(name, "target" | "vendor" | "fixtures" | ".git") {
            return;
        }
        let Ok(rd) = std::fs::read_dir(p) else { return };
        let mut entries: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
        entries.sort();
        for e in entries {
            collect(&e, out);
        }
    } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
        out.push(p.to_path_buf());
    }
}
