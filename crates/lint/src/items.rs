//! The item graph: a lightweight parse of every workspace file into the
//! items the semantic passes need — module paths, `fn` definitions with
//! body spans, `impl` blocks, and `use` imports.
//!
//! This is deliberately *not* a Rust parser. It walks the token stream
//! from [`crate::lexer`] tracking brace depth, records where each `fn`
//! body starts and ends, and derives qualified paths
//! (`crate::module::Type::name`) good enough for the conservative name
//! resolution in [`crate::callgraph`]. Anything it cannot classify it
//! skips — the passes built on top over-approximate reachability, so a
//! missed item can hide a finding but never invent one.

use crate::lexer::Lexed;
use std::collections::BTreeMap;

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Index of this item in [`ItemGraph::fns`].
    pub id: usize,
    /// Normalized crate key (`core`, `harness`, `tests`, fixture names —
    /// the `gaugenn-` prefix is stripped).
    pub crate_key: String,
    /// Module path inside the crate (file-derived plus inline `mod`s).
    pub module: Vec<String>,
    /// `impl` self type when this is a method.
    pub self_ty: Option<String>,
    /// Bare function name.
    pub name: String,
    /// File the definition is in (repo-relative, forward slashes).
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body, `[open_brace, close_brace]`
    /// inclusive; `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Parameter names in declaration order (`self` receivers included
    /// as `"self"`); used to propagate channel endpoints through calls.
    pub params: Vec<String>,
    /// Entirely inside test code (`#[cfg(test)]` / `tests/` file)?
    pub is_test: bool,
}

impl FnItem {
    /// Rendered qualified path: `crate::module::Type::name`.
    pub fn path(&self) -> String {
        let mut parts: Vec<&str> = vec![self.crate_key.as_str()];
        parts.extend(self.module.iter().map(String::as_str));
        if let Some(ty) = &self.self_ty {
            parts.push(ty);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// Items extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// `fn` definitions in source order (ids index [`ItemGraph::fns`]).
    pub fn_ids: Vec<usize>,
    /// `use` imports: simple (possibly renamed) name → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
}

/// The whole-workspace item inventory.
#[derive(Debug, Default)]
pub struct ItemGraph {
    /// Every `fn` in the workspace, in (file, source) order.
    pub fns: Vec<FnItem>,
    /// Per-file items, keyed by normalized path.
    pub files: BTreeMap<String, FileItems>,
}

impl ItemGraph {
    /// The innermost `fn` whose body span contains token `tok` of `file`.
    pub fn enclosing_fn(&self, file: &str, tok: usize) -> Option<usize> {
        let items = self.files.get(file)?;
        let mut best: Option<usize> = None;
        let mut best_span = usize::MAX;
        for &id in &items.fn_ids {
            if let Some((open, close)) = self.fns[id].body {
                if open <= tok && tok <= close && close - open < best_span {
                    best_span = close - open;
                    best = Some(id);
                }
            }
        }
        best
    }
}

/// Normalized crate key for a repo-relative path: the component after the
/// *last* `crates/` (so fixture trees nested under `crates/lint/tests/…`
/// resolve to the fixture's own crate), `tests` for root integration
/// tests, `gaugenn` for the root `src/` crate.
pub fn crate_key_for_path(path: &str) -> String {
    let comps: Vec<&str> = path.split('/').collect();
    for i in (0..comps.len().saturating_sub(1)).rev() {
        if comps[i] == "crates" {
            return comps[i + 1].to_string();
        }
    }
    if comps.first() == Some(&"tests") || comps.contains(&"tests") {
        return "tests".to_string();
    }
    "gaugenn".to_string()
}

/// File-derived module path: components between `src/` (or `tests/`) and
/// the file stem; `lib`/`main`/`mod` stems contribute nothing, `tests/`
/// file stems become a `tests::<stem>` module so integration-test fns
/// never collide with library paths.
fn module_for_path(path: &str) -> (Vec<String>, bool) {
    let comps: Vec<&str> = path.split('/').collect();
    // Find the anchor: the last `src` or `tests` component.
    let mut anchor = None;
    for i in (0..comps.len()).rev() {
        if comps[i] == "src" || comps[i] == "tests" {
            anchor = Some(i);
            break;
        }
    }
    let Some(a) = anchor else {
        return (Vec::new(), false);
    };
    let in_tests = comps[a] == "tests";
    let mut module: Vec<String> = Vec::new();
    if in_tests {
        module.push("tests".to_string());
    }
    for c in &comps[a + 1..comps.len().saturating_sub(1)] {
        module.push((*c).to_string());
    }
    if let Some(fname) = comps.last() {
        let stem = fname.strip_suffix(".rs").unwrap_or(fname);
        if !matches!(stem, "lib" | "main" | "mod") {
            module.push(stem.to_string());
        }
    }
    (module, in_tests)
}

/// Parse one lexed file into the graph. `test_mask` is the per-token
/// test flag from the rules pass (same convention: whole integration-test
/// files are fully masked).
pub fn parse_file(graph: &mut ItemGraph, path: &str, lex: &Lexed, test_mask: &[bool]) {
    let crate_key_raw = crate_key_for_path(path);
    let crate_key = crate_key_raw
        .strip_prefix("gaugenn-")
        .unwrap_or(&crate_key_raw)
        .replace('-', "_");
    let (file_module, _in_tests) = module_for_path(path);

    let mut items = FileItems::default();
    collect_imports(lex, &mut items.imports);

    let n = lex.toks.len();
    // Scope stack: (depth at open, kind). Kind: inline module name or
    // impl self type. Anonymous braces push `None`.
    enum Scope {
        Module(String),
        Impl(String),
        Other,
    }
    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < n {
        match lex.punct(i) {
            Some('{') => {
                // Classified opens are handled where the keyword is seen;
                // this is an anonymous block.
                stack.push(Scope::Other);
                i += 1;
                continue;
            }
            Some('}') => {
                stack.pop();
                i += 1;
                continue;
            }
            _ => {}
        }
        match lex.ident(i) {
            Some("mod") => {
                if let Some(name) = lex.ident(i + 1) {
                    if lex.punct(i + 2) == Some('{') {
                        stack.push(Scope::Module(name.to_string()));
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            Some("impl") => {
                // Scan to the block's `{`; the self type is the first
                // type ident after `for` if present, else the first type
                // ident after `impl` (skipping `<…>` generics).
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut ty: Option<String> = None;
                let mut after_for = false;
                while j < n {
                    match lex.punct(j) {
                        Some('<') => angle += 1,
                        // `>` closes a generic list unless it is the tail
                        // of a `->` / `=>` arrow.
                        Some('>') if !matches!(lex.punct(j.wrapping_sub(1)), Some('-') | Some('=')) => {
                            angle -= 1
                        }
                        Some('{') if angle <= 0 => break,
                        Some(';') => break,
                        _ => {}
                    }
                    if angle == 0 {
                        if lex.ident(j) == Some("for") {
                            after_for = true;
                            ty = None;
                        } else if ty.is_none() {
                            if let Some(id) = lex.ident(j) {
                                if id != "dyn" && id != "for" {
                                    // `a::b::Type` — keep the last path seg.
                                    let mut k = j;
                                    while lex.punct(k + 1) == Some(':')
                                        && lex.punct(k + 2) == Some(':')
                                        && lex.ident(k + 3).is_some()
                                    {
                                        k += 3;
                                    }
                                    ty = lex.ident(k).map(str::to_string);
                                    j = k;
                                }
                            }
                        }
                    }
                    j += 1;
                }
                let _ = after_for;
                if j < n && lex.punct(j) == Some('{') {
                    stack.push(Scope::Impl(ty.unwrap_or_default()));
                    i = j + 1;
                } else {
                    i = j.max(i + 1);
                }
            }
            Some("fn") => {
                let Some(name) = lex.ident(i + 1) else {
                    i += 1;
                    continue;
                };
                // Signature runs to the body `{` or a `;` (no body).
                // Angle depth guards `->` arrows inside generics; brace
                // depth never opens before the body in the shapes this
                // repo uses.
                let mut j = i + 2;
                let mut angle = 0i32;
                let mut body = None;
                while j < n {
                    match lex.punct(j) {
                        Some('<') => angle += 1,
                        Some('>') if !matches!(lex.punct(j.wrapping_sub(1)), Some('-') | Some('=')) => {
                            angle -= 1
                        }
                        Some(';') if angle <= 0 => break,
                        Some('{') if angle <= 0 => {
                            // Find the matching close.
                            let mut depth = 0i32;
                            let mut m = j;
                            while m < n {
                                match lex.punct(m) {
                                    Some('{') => depth += 1,
                                    Some('}') => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                                m += 1;
                            }
                            body = Some((j, m.min(n.saturating_sub(1))));
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let mut module = file_module.clone();
                let mut self_ty = None;
                for s in &stack {
                    match s {
                        Scope::Module(m) => module.push(m.clone()),
                        Scope::Impl(t) if !t.is_empty() => self_ty = Some(t.clone()),
                        _ => {}
                    }
                }
                let id = graph.fns.len();
                graph.fns.push(FnItem {
                    id,
                    crate_key: crate_key.clone(),
                    module,
                    self_ty,
                    name: name.to_string(),
                    file: path.to_string(),
                    line: lex.line(i),
                    body,
                    params: parse_params(lex, i + 2, n),
                    is_test: test_mask.get(i).copied().unwrap_or(false),
                });
                items.fn_ids.push(id);
                // Continue *inside* the body so nested fns are found.
                i += 2;
            }
            _ => i += 1,
        }
    }
    graph.files.insert(path.to_string(), items);
}

/// Parse the parameter-name list of a `fn` whose name ends just before
/// token `from` (the signature's `(` is the next `(` at angle depth 0).
/// Each parameter contributes the first identifier of its pattern —
/// enough for the by-name endpoint propagation; destructuring patterns
/// degrade to their first binding.
fn parse_params(lex: &Lexed, from: usize, n: usize) -> Vec<String> {
    let mut i = from;
    let mut angle = 0i32;
    while i < n {
        match lex.punct(i) {
            Some('<') => angle += 1,
            Some('>') if !matches!(lex.punct(i.wrapping_sub(1)), Some('-') | Some('=')) => {
                angle -= 1
            }
            Some('(') if angle <= 0 => break,
            Some('{') | Some(';') => return Vec::new(),
            _ => {}
        }
        i += 1;
    }
    if i >= n {
        return Vec::new();
    }
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = i + 1;
    let mut j = i;
    while j < n {
        match lex.punct(j) {
            Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                depth -= 1;
                if depth == 0 {
                    if j > start {
                        params.push(first_param_ident(lex, start, j));
                    }
                    break;
                }
            }
            Some('>') if !matches!(lex.punct(j.wrapping_sub(1)), Some('-') | Some('=')) => {
                depth -= 1
            }
            Some(',') if depth == 1 => {
                params.push(first_param_ident(lex, start, j));
                start = j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    params
}

/// First binding identifier of a parameter slice (skipping `&`, `mut`,
/// lifetimes); empty string when the pattern has none (e.g. `_: u32`).
fn first_param_ident(lex: &Lexed, start: usize, end: usize) -> String {
    for k in start..end {
        if let Some(id) = lex.ident(k) {
            if id == "mut" {
                continue;
            }
            return id.to_string();
        }
        // Stop at the type separator: everything after `:` is a type.
        if lex.punct(k) == Some(':') {
            break;
        }
    }
    String::new()
}

/// Collect `use` imports: `use a::b::c;`, `use a::{b, c as d};`,
/// `use a::b as c;`. Globs and nested groups beyond one level are
/// ignored (the call resolver falls back to same-crate matching).
fn collect_imports(lex: &Lexed, out: &mut BTreeMap<String, Vec<String>>) {
    let n = lex.toks.len();
    let mut i = 0usize;
    while i < n {
        if lex.ident(i) != Some("use") {
            i += 1;
            continue;
        }
        // Gather the statement's tokens up to `;`.
        let start = i + 1;
        let mut end = start;
        while end < n && lex.punct(end) != Some(';') {
            end += 1;
        }
        parse_use_tree(lex, start, end, &mut Vec::new(), out);
        i = end + 1;
    }
}

/// Recursive descent over one `use` tree between token indexes
/// `[i, end)`, with `prefix` holding the path segments accumulated so
/// far.
fn parse_use_tree(
    lex: &Lexed,
    mut i: usize,
    end: usize,
    prefix: &mut Vec<String>,
    out: &mut BTreeMap<String, Vec<String>>,
) {
    let base_len = prefix.len();
    let mut last: Option<String> = None;
    while i < end {
        if let Some(id) = lex.ident(i) {
            if id == "as" {
                // `path as alias` — the alias is the visible name.
                if let (Some(alias), Some(target)) = (lex.ident(i + 1), last.take()) {
                    let mut full = prefix.clone();
                    full.push(target);
                    out.insert(alias.to_string(), full);
                }
                i += 2;
                continue;
            }
            if let Some(prev) = last.take() {
                // Two idents: the previous one was a path segment… only
                // reachable through `::`, handled below; treat defensively.
                prefix.push(prev);
            }
            last = Some(id.to_string());
            i += 1;
            continue;
        }
        match lex.punct(i) {
            Some(':') if lex.punct(i + 1) == Some(':') => {
                if let Some(seg) = last.take() {
                    prefix.push(seg);
                }
                i += 2;
            }
            Some('{') => {
                // Group: split members on top-level commas.
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut member_start = j;
                while j < end && depth > 0 {
                    match lex.punct(j) {
                        Some('{') => depth += 1,
                        Some('}') => {
                            depth -= 1;
                            if depth == 0 {
                                parse_use_tree(lex, member_start, j, prefix, out);
                            }
                        }
                        Some(',') if depth == 1 => {
                            parse_use_tree(lex, member_start, j, prefix, out);
                            member_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                prefix.truncate(base_len);
                return;
            }
            Some(',') => {
                // Top-level comma inside a group member — flush.
                break;
            }
            Some('*') => {
                // Glob import: unresolvable, ignore.
                last = None;
                i += 1;
            }
            _ => i += 1,
        }
    }
    if let Some(name) = last {
        if name != "self" {
            let mut full = prefix.clone();
            full.push(name.clone());
            out.insert(name, full);
        } else if let Some(seg) = prefix.last().cloned() {
            // `use a::b::{self}` — binds `b`.
            out.insert(seg, prefix.clone());
        }
    }
    prefix.truncate(base_len);
}
