//! A lightweight Rust tokenizer: just enough lexical structure for the
//! gaugelint rules — identifiers, punctuation, literals — with comments
//! and string/char literals consumed (so a `HashMap` inside a doc string
//! can never trip a rule) and `// gaugelint: allow(...)` suppression
//! directives extracted on the way through.

/// Token kind. The rules only ever inspect identifiers and punctuation;
/// literal kinds exist so the token stream keeps its shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal.
    Num,
    /// String literal (regular, raw, or byte). The literal's inner text
    /// is retained (the channel inventory reads `unbounded_named("…")`
    /// names from it); no rule ever pattern-matches inside it.
    Str,
    /// Character literal.
    CharLit,
    /// Lifetime (`'a`).
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Token text (the inner text for string literals, empty for char
    /// literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `// gaugelint: ...` directive found in a line comment.
#[derive(Debug, Clone)]
pub enum Directive {
    /// `// gaugelint: allow(rule-a, rule-b) — optional reason`.
    Allow {
        /// Line the comment sits on.
        line: u32,
        /// Rule names listed inside `allow(...)`.
        rules: Vec<String>,
    },
    /// `// gaugelint: deterministic-via(clock|seed) — reason`. Declares
    /// that the nondeterminism source reached through this line is
    /// injected deterministically (a `Clock` impl, a configured seed):
    /// the taint pass does not propagate the named categories through
    /// the call edge (or sink) on this line, and the matching lexical
    /// sink rule (`wall-clock` / `seed-from-entropy`) is suppressed too.
    DeterministicVia {
        /// Line the comment sits on.
        line: u32,
        /// Severed taint categories (`clock`, `seed`).
        kinds: Vec<String>,
    },
    /// `// gaugelint: channel-pair(name) — reason`. Names the channel
    /// created on this line so its cross-crate send/recv pairing is a
    /// documented contract (and the wait-for graph uses the name).
    ChannelPair {
        /// Line the comment sits on.
        line: u32,
        /// The documented pairing name.
        name: String,
    },
    /// A comment mentioning gaugelint that could not be parsed — always
    /// reported, so a typo'd suppression cannot silently not work.
    Malformed {
        /// Line the comment sits on.
        line: u32,
    },
}

/// Tokenized source plus extracted suppression directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Suppression directives in source order.
    pub directives: Vec<Directive>,
}

impl Lexed {
    /// Identifier text at index `i`, if that token is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }

    /// Punctuation char at index `i`, if that token is punctuation.
    pub fn punct(&self, i: usize) -> Option<char> {
        match self.toks.get(i) {
            Some(t) if t.kind == TokKind::Punct => t.text.chars().next(),
            _ => None,
        }
    }

    /// Does the token sequence starting at `i` match `pat`?
    /// Identifier elements match exactly; `"*"` matches any identifier.
    pub fn matches(&self, i: usize, pat: &[Pat<'_>]) -> bool {
        pat.iter().enumerate().all(|(k, p)| match p {
            Pat::I(name) => self.ident(i + k) == Some(name),
            Pat::P(ch) => self.punct(i + k) == Some(*ch),
        })
    }

    /// Source line of token `i` (0 when out of range).
    pub fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map(|t| t.line).unwrap_or(0)
    }
}

/// Pattern element for [`Lexed::matches`].
#[derive(Debug, Clone, Copy)]
pub enum Pat<'a> {
    /// Exact identifier.
    I(&'a str),
    /// Exact punctuation char.
    P(char),
}

/// Tokenize `src`.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = chars.len();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_char = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment — the only place suppressions are recognised.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[start..j].iter().collect();
            // Doc comments (`///`, `//!`) describe the directive syntax;
            // only plain `//` comments can carry a live suppression.
            if !text.starts_with('/') && !text.starts_with('!') {
                if let Some(d) = parse_directive(&text, line) {
                    out.directives.push(d);
                }
            }
            i = j;
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // Raw / byte / plain string literals: r"", r#""#, br"", b"", "".
        if let Some((next, crossed)) = try_string(&chars, i) {
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: string_inner(&chars[i..next]),
                line,
            });
            line += crossed;
            i = next;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            if let Some((next, _)) = try_char_literal(&chars, i) {
                out.toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: String::new(),
                    line,
                });
                i = next;
                continue;
            }
            // Lifetime: consume the quote and the following identifier.
            let mut j = i + 1;
            while j < n && is_ident_char(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Lifetime,
                text: chars[i + 1..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_char(chars[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (is_ident_char(chars[j])) {
                j += 1;
            }
            // Fractional part — but stop before `..` range syntax.
            if j < n && chars[j] == '.' && j + 1 < n && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && is_ident_char(chars[j]) {
                    j += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// The inner text of a lexed string literal (prefix, hashes, and quotes
/// stripped). Escapes are left as written — the only consumer is the
/// channel inventory, which reads plain identifiers out of
/// `unbounded_named("…")`.
fn string_inner(lit: &[char]) -> String {
    let mut a = 0usize;
    while a < lit.len() && (lit[a] == 'b' || lit[a] == 'r' || lit[a] == '#') {
        a += 1;
    }
    let mut b = lit.len();
    while b > a && lit[b - 1] == '#' {
        b -= 1;
    }
    let body = &lit[a..b];
    let body = body.strip_prefix(&['"']).unwrap_or(body);
    let body = body.strip_suffix(&['"']).unwrap_or(body);
    body.iter().collect()
}

/// Try to lex a string literal at `i`. Returns `(index after literal,
/// newlines crossed)` on success.
fn try_string(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let n = chars.len();
    let mut j = i;
    // Optional b / r / br prefix.
    if j < n && chars[j] == 'b' {
        j += 1;
    }
    let raw = j < n && chars[j] == 'r';
    if raw {
        j += 1;
        let mut hashes = 0usize;
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        if j >= n || chars[j] != '"' {
            return None;
        }
        j += 1;
        let mut crossed = 0u32;
        while j < n {
            if chars[j] == '\n' {
                crossed += 1;
                j += 1;
                continue;
            }
            if chars[j] == '"' {
                let mut k = j + 1;
                let mut seen = 0usize;
                while k < n && seen < hashes && chars[k] == '#' {
                    seen += 1;
                    k += 1;
                }
                if seen == hashes {
                    return Some((k, crossed));
                }
            }
            j += 1;
        }
        return Some((n, crossed));
    }
    if j >= n || chars[j] != '"' {
        return None;
    }
    j += 1;
    let mut crossed = 0u32;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                crossed += 1;
                j += 1;
            }
            '"' => return Some((j + 1, crossed)),
            _ => j += 1,
        }
    }
    Some((n, crossed))
}

/// Try to lex a char literal at `i` (which holds `'`). Returns the index
/// after the literal on success; `None` means "this is a lifetime".
fn try_char_literal(chars: &[char], i: usize) -> Option<(usize, u32)> {
    let n = chars.len();
    if i + 1 >= n {
        return None;
    }
    if chars[i + 1] == '\\' {
        // Escape: scan to the closing quote.
        let mut j = i + 2;
        while j < n && chars[j] != '\'' {
            j += 1;
        }
        return Some((j.min(n - 1) + 1, 0));
    }
    // 'x' — a single char then a closing quote. Anything else ('a as a
    // lifetime, '_, …) is not a char literal.
    if i + 2 < n && chars[i + 2] == '\'' {
        return Some((i + 3, 0));
    }
    None
}

/// Parse a gaugelint directive out of a line comment's text. The grammar
/// is one clause per comment:
///
/// ```text
/// // gaugelint: allow(rule-a, rule-b) — reason
/// // gaugelint: deterministic-via(clock|seed) — reason
/// // gaugelint: channel-pair(name) — reason
/// ```
fn parse_directive(comment: &str, line: u32) -> Option<Directive> {
    let at = comment.find("gaugelint")?;
    let rest = comment[at + "gaugelint".len()..].trim_start();
    let rest = rest.strip_prefix(':').map(str::trim_start).unwrap_or(rest);

    let (verb, items) = match parse_clause(rest) {
        Some(parts) => parts,
        None => return Some(Directive::Malformed { line }),
    };
    match verb {
        "allow" => Some(Directive::Allow { line, rules: items }),
        "deterministic-via" => {
            if items.iter().all(|k| k == "clock" || k == "seed") {
                Some(Directive::DeterministicVia { line, kinds: items })
            } else {
                Some(Directive::Malformed { line })
            }
        }
        "channel-pair" => {
            let ok = items.len() == 1
                && items[0]
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
            if ok {
                Some(Directive::ChannelPair {
                    line,
                    name: items.into_iter().next().expect("len checked"),
                })
            } else {
                Some(Directive::Malformed { line })
            }
        }
        _ => Some(Directive::Malformed { line }),
    }
}

/// Split `verb(item, item, …)` off the front of a directive body.
/// Returns the verb and the non-empty item list, or `None` on any
/// malformation (missing parens, empty list, unknown shape).
fn parse_clause(rest: &str) -> Option<(&str, Vec<String>)> {
    let open = rest.find('(')?;
    let verb = rest[..open].trim_end();
    if verb.is_empty() || !verb.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return None;
    }
    let body = &rest[open + 1..];
    let close = body.find(')')?;
    let items: Vec<String> = body[..close]
        .split([',', '|'])
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if items.is_empty() {
        return None;
    }
    Some((verb, items))
}
