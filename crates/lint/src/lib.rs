//! gaugelint — the repo's in-tree invariant checker.
//!
//! The determinism contract (DESIGN.md §10) says the merged
//! `PipelineReport` is byte-identical at any crawl/analysis worker count
//! and that chaos faults surface as typed errors, never panics. The three
//! classic ways that contract rots are (a) iterating a `HashMap` into
//! rendered output, (b) reading the wall clock on a control path, and
//! (c) `unwrap()` on a path a fault schedule can reach. gaugelint is two
//! passes over the same token stream, zero dependencies:
//!
//! * a **lexical pass** — per-line token-shape rules ([`lint_source`]);
//! * a **semantic pass** ([`lint_workspace`], DESIGN.md §15) — an item
//!   graph and name-resolved call graph over every workspace file, on
//!   which determinism *taint* propagates transitively from known sinks
//!   ([`taint`]), channel endpoints are inventoried and paired across
//!   crates ([`channels`]), and a machine-readable channel wait-for
//!   graph is emitted for the runtime deadlock detector.
//!
//! # Suppressions
//!
//! A finding is silenced by a plain line comment on the same line or the
//! line above. One clause per comment:
//!
//! ```text
//! // gaugelint: allow(wall-clock) — reason for the exception
//! // gaugelint: deterministic-via(clock) — reason the source is injected
//! // gaugelint: channel-pair(name) — reason the pairing is intended
//! ```
//!
//! `deterministic-via(clock|seed)` both severs the taint edge/sink on
//! its line *and* suppresses the matching lexical rule (`wall-clock` /
//! `seed-from-entropy`), so one annotation documents one injection
//! point. Unknown rule names and malformed directives are themselves
//! findings (`bad-suppression`), and `bad-suppression` cannot be
//! suppressed — a typo'd allow can never silently disable a rule.

pub mod callgraph;
pub mod channels;
pub mod items;
pub mod lexer;
mod rules;
pub mod taint;

use std::collections::{BTreeMap, BTreeSet};

/// Every rule gaugelint knows, in documentation order. The final four
/// before `bad-suppression` are semantic (workspace-pass) rules;
/// `bad-suppression` is the meta-rule for broken `allow(...)` directives.
pub const RULES: &[&str] = &[
    "hashmap-iter-order",
    "wall-clock",
    "unwrap-in-fault-path",
    "deprecated-api",
    "lock-across-send",
    "seed-from-entropy",
    "float-accum-order",
    "relaxed-ordering-in-report",
    "todo-unimplemented",
    "literal-duration-in-retry",
    "blocking-call-in-reactor",
    "nondeterministic-reach",
    "channel-orphan-sender",
    "channel-orphan-receiver",
    "channel-unpaired-cross-crate",
    "bad-suppression",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (an entry of [`RULES`]).
    pub rule: &'static str,
    /// File the finding is in (as passed to [`lint_source`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line, truncated to ~120 chars.
    pub snippet: String,
    /// Semantic-pass detail (taint call chain, channel pairing info).
    pub detail: Option<String>,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, ordered by (line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid `allow(...)` directive.
    pub suppressed: usize,
}

/// Result of the whole-workspace pass.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Unsuppressed findings (lexical + semantic), ordered by
    /// (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid directive, same order.
    pub suppressed_findings: Vec<Finding>,
    /// Number of files linted.
    pub files: usize,
    /// The channel wait-for graph as deterministic JSON.
    pub waitfor_json: String,
}

/// Per-file pass internals shared by [`lint_source`] and
/// [`lint_workspace`].
struct FilePass {
    report: FileReport,
    /// The suppressed findings, itemized (the report only counts them).
    suppressed_findings: Vec<Finding>,
    /// line → rule names allowed there (after `deterministic-via`
    /// translation).
    allow: BTreeMap<u32, BTreeSet<String>>,
}

fn snippet_of(lines: &[&str], line: u32) -> String {
    let Some(l) = lines.get(line.saturating_sub(1) as usize) else {
        return String::new();
    };
    let t = l.trim();
    if t.chars().count() > 120 {
        let cut: String = t.chars().take(117).collect();
        format!("{cut}...")
    } else {
        t.to_string()
    }
}

fn allowed(allow: &BTreeMap<u32, BTreeSet<String>>, line: u32, rule: &str) -> bool {
    let hit = |l: u32| allow.get(&l).is_some_and(|s| s.contains(rule));
    hit(line) || (line > 1 && hit(line - 1))
}

fn file_pass(path: &str, src: &str, lex: &lexer::Lexed) -> FilePass {
    let lines: Vec<&str> = src.lines().collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut allow: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    let bad = |line: u32, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            rule: "bad-suppression",
            file: path.to_string(),
            line,
            snippet: snippet_of(&lines, line),
            detail: None,
        })
    };
    for d in &lex.directives {
        match d {
            lexer::Directive::Malformed { line } => bad(*line, &mut findings),
            lexer::Directive::Allow { line, rules } => {
                for r in rules {
                    if r != "bad-suppression" && RULES.contains(&r.as_str()) {
                        allow.entry(*line).or_default().insert(r.clone());
                    } else {
                        bad(*line, &mut findings);
                    }
                }
            }
            lexer::Directive::DeterministicVia { line, kinds } => {
                // One annotation covers both the lexical sink rule and
                // the taint edge (severed in the taint pass itself).
                for k in kinds {
                    let rule = match k.as_str() {
                        "clock" => "wall-clock",
                        _ => "seed-from-entropy",
                    };
                    allow.entry(*line).or_default().insert(rule.to_string());
                }
            }
            lexer::Directive::ChannelPair { .. } => {
                // Consumed by the channel inventory; no lexical effect.
            }
        }
    }

    let ctx = rules::Ctx::new(path, lex);
    let mut suppressed_findings: Vec<Finding> = Vec::new();
    for (rule, line) in rules::run_all(&ctx) {
        let f = Finding {
            rule,
            file: path.to_string(),
            line,
            snippet: snippet_of(&lines, line),
            detail: None,
        };
        if allowed(&allow, line, rule) {
            suppressed_findings.push(f);
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FilePass {
        report: FileReport {
            findings,
            suppressed: suppressed_findings.len(),
        },
        suppressed_findings,
        allow,
    }
}

/// Lint one source file (lexical rules only). `path` drives the
/// path-scoped rules (`unwrap-in-fault-path`, `float-accum-order`,
/// bench/test exemptions), so callers must pass repo-relative paths like
/// `crates/playstore/src/crawler.rs`.
pub fn lint_source(path: &str, src: &str) -> FileReport {
    let lex = lexer::lex(src);
    file_pass(path, src, &lex).report
}

/// Lint the whole workspace: the lexical pass over every file plus the
/// semantic pass (item graph → call graph → taint + channels) across all
/// of them. `files` are `(repo-relative path, source)` pairs.
pub fn lint_workspace(files: &[(String, String)]) -> WorkspaceReport {
    let mut out = WorkspaceReport {
        files: files.len(),
        ..WorkspaceReport::default()
    };

    let mut lexed: BTreeMap<String, lexer::Lexed> = BTreeMap::new();
    let mut sources: BTreeMap<&str, &str> = BTreeMap::new();
    for (path, src) in files {
        lexed.insert(path.clone(), lexer::lex(src));
        sources.insert(path, src);
    }

    // Per-file lexical pass; keep the allow maps for semantic findings.
    let mut allows: BTreeMap<&str, BTreeMap<u32, BTreeSet<String>>> = BTreeMap::new();
    for (path, src) in files {
        let pass = file_pass(path, src, &lexed[path]);
        out.findings.extend(pass.report.findings);
        out.suppressed_findings.extend(pass.suppressed_findings);
        allows.insert(path, pass.allow);
    }

    // Item graph + call graph.
    let mut graph = items::ItemGraph::default();
    let mut test_masks: BTreeMap<String, Vec<bool>> = BTreeMap::new();
    for (path, lex) in &lexed {
        let mask = rules::test_mask_for(path, lex);
        items::parse_file(&mut graph, path, lex, &mask);
        test_masks.insert(path.clone(), mask);
    }
    let cg = callgraph::build(&graph, &lexed);

    // Determinism taint.
    let severed: BTreeMap<String, BTreeMap<u32, BTreeSet<taint::Cat>>> = lexed
        .iter()
        .map(|(p, lex)| (p.clone(), taint::severed_lines(lex)))
        .collect();
    let sinks = taint::find_sinks(&graph, &lexed, &test_masks, &severed);
    for t in taint::run(&graph, &cg, &sinks, &severed) {
        let snippet = sources
            .get(t.file.as_str())
            .map(|src| snippet_of(&src.lines().collect::<Vec<_>>(), t.line))
            .unwrap_or_default();
        let f = Finding {
            rule: taint::RULE,
            file: t.file.clone(),
            line: t.line,
            snippet,
            detail: Some(t.chain),
        };
        if allows
            .get(t.file.as_str())
            .is_some_and(|a| allowed(a, t.line, taint::RULE))
        {
            out.suppressed_findings.push(f);
        } else {
            out.findings.push(f);
        }
    }

    // Channel pairing + wait-for graph.
    let chan = channels::run(&graph, &cg, &lexed);
    for c in &chan.findings {
        let snippet = sources
            .get(c.file.as_str())
            .map(|src| snippet_of(&src.lines().collect::<Vec<_>>(), c.line))
            .unwrap_or_default();
        let f = Finding {
            rule: c.rule,
            file: c.file.clone(),
            line: c.line,
            snippet,
            detail: Some(c.detail.clone()),
        };
        if allows
            .get(c.file.as_str())
            .is_some_and(|a| allowed(a, c.line, c.rule))
        {
            out.suppressed_findings.push(f);
        } else {
            out.findings.push(f);
        }
    }
    out.waitfor_json = chan.waitfor_json;

    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out.suppressed_findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Escape a string for the JSON emitters in this crate and the CLI.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
