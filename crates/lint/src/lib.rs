//! gaugelint — the repo's in-tree invariant checker.
//!
//! The determinism contract (DESIGN.md §10) says the merged
//! `PipelineReport` is byte-identical at any crawl/analysis worker count
//! and that chaos faults surface as typed errors, never panics. The three
//! classic ways that contract rots are (a) iterating a `HashMap` into
//! rendered output, (b) reading the wall clock on a control path, and
//! (c) `unwrap()` on a path a fault schedule can reach. gaugelint is a
//! lexical pass — a small tokenizer plus token-shape rules, zero
//! dependencies — that fails `scripts/verify.sh` when one of those (or a
//! handful of related hazards) reappears.
//!
//! # Suppressions
//!
//! A finding is silenced by a plain line comment on the same line or the
//! line above:
//!
//! ```text
//! // gaugelint: allow(wall-clock) — reason for the exception
//! ```
//!
//! Unknown rule names and malformed directives are themselves findings
//! (`bad-suppression`), and `bad-suppression` cannot be suppressed — a
//! typo'd allow can never silently disable a rule.

pub mod lexer;
mod rules;

use std::collections::{BTreeMap, BTreeSet};

/// Every rule gaugelint knows, in documentation order. `bad-suppression`
/// is the meta-rule for broken `allow(...)` directives.
pub const RULES: &[&str] = &[
    "hashmap-iter-order",
    "wall-clock",
    "unwrap-in-fault-path",
    "deprecated-api",
    "lock-across-send",
    "seed-from-entropy",
    "float-accum-order",
    "relaxed-ordering-in-report",
    "todo-unimplemented",
    "literal-duration-in-retry",
    "blocking-call-in-reactor",
    "bad-suppression",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (an entry of [`RULES`]).
    pub rule: &'static str,
    /// File the finding is in (as passed to [`lint_source`]).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line, truncated to ~120 chars.
    pub snippet: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Unsuppressed findings, ordered by (line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid `allow(...)` directive.
    pub suppressed: usize,
}

/// Lint one source file. `path` drives the path-scoped rules
/// (`unwrap-in-fault-path`, `float-accum-order`, bench/test exemptions),
/// so callers must pass repo-relative paths like
/// `crates/playstore/src/crawler.rs`.
pub fn lint_source(path: &str, src: &str) -> FileReport {
    let lex = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        let Some(l) = lines.get(line.saturating_sub(1) as usize) else {
            return String::new();
        };
        let t = l.trim();
        if t.chars().count() > 120 {
            let cut: String = t.chars().take(117).collect();
            format!("{cut}...")
        } else {
            t.to_string()
        }
    };

    let mut findings: Vec<Finding> = Vec::new();
    let mut allow: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for d in &lex.directives {
        match d {
            lexer::Directive::Malformed { line } => findings.push(Finding {
                rule: "bad-suppression",
                file: path.to_string(),
                line: *line,
                snippet: snippet(*line),
            }),
            lexer::Directive::Allow { line, rules } => {
                for r in rules {
                    if r != "bad-suppression" && RULES.contains(&r.as_str()) {
                        allow.entry(*line).or_default().insert(r.clone());
                    } else {
                        findings.push(Finding {
                            rule: "bad-suppression",
                            file: path.to_string(),
                            line: *line,
                            snippet: snippet(*line),
                        });
                    }
                }
            }
        }
    }

    let ctx = rules::Ctx::new(path, &lex);
    let mut suppressed = 0usize;
    for (rule, line) in rules::run_all(&ctx) {
        let hit = |l: u32| allow.get(&l).is_some_and(|s| s.contains(rule));
        if hit(line) || (line > 1 && hit(line - 1)) {
            suppressed += 1;
            continue;
        }
        findings.push(Finding {
            rule,
            file: path.to_string(),
            line,
            snippet: snippet(line),
        });
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    FileReport {
        findings,
        suppressed,
    }
}
