//! Determinism taint: transitive nondeterminism-reachability over the
//! call graph.
//!
//! The lexical `wall-clock` / `seed-from-entropy` rules catch a sink at
//! its own line; this pass catches a sink *laundered through helpers*.
//! Known sinks (wall-clock reads, entropy seeding, thread-identity) are
//! seeded per function, then every function reachable from a determinism
//! root — `core::pipeline`, the `analysis` crate, and the render path —
//! that can reach a sink is a finding, reported at the sink with the
//! full call chain.
//!
//! An edge or sink is *severed* by `// gaugelint: deterministic-via(clock
//! |seed) — reason` on the same line or the line above: the annotation
//! declares the nondeterminism is injected deterministically (an
//! injectable `Clock` impl, a configured seed), so the named categories
//! do not propagate through it. Dead code falls out for free: a sink in
//! a function no root reaches is not a finding.

use crate::callgraph::{reachable, CallGraph};
use crate::items::ItemGraph;
use crate::lexer::{Directive, Lexed};
use std::collections::{BTreeMap, BTreeSet};

/// Rule name the taint pass reports under.
pub const RULE: &str = "nondeterministic-reach";

/// Taint category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cat {
    /// Wall-clock reads (`Instant::now`, `SystemTime::now`).
    Clock,
    /// Entropy / ambient-identity seeding (`thread_rng`, `from_entropy`,
    /// `OsRng`, `thread::current`).
    Seed,
}

impl Cat {
    /// The annotation keyword for this category.
    pub fn key(self) -> &'static str {
        match self {
            Cat::Clock => "clock",
            Cat::Seed => "seed",
        }
    }
}

/// One nondeterminism sink found in a fn body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Containing fn (id into [`ItemGraph::fns`]).
    pub fn_id: usize,
    /// Sink line.
    pub line: u32,
    /// Human name (`Instant::now`, `thread_rng`, …).
    pub name: &'static str,
    /// Category the sink taints.
    pub cat: Cat,
    /// Severed by a `deterministic-via` annotation at the sink?
    pub severed: bool,
}

/// A taint finding: a root-reachable unsevered sink, with its chain.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// File of the sink.
    pub file: String,
    /// Line of the sink.
    pub line: u32,
    /// Sink name.
    pub sink: &'static str,
    /// Category.
    pub cat: Cat,
    /// Rendered call chain `root → … → fn → Sink (cat)`.
    pub chain: String,
}

/// Per-file map: line → severed categories (from `deterministic-via`).
pub fn severed_lines(lex: &Lexed) -> BTreeMap<u32, BTreeSet<Cat>> {
    let mut out: BTreeMap<u32, BTreeSet<Cat>> = BTreeMap::new();
    for d in &lex.directives {
        if let Directive::DeterministicVia { line, kinds } = d {
            let entry = out.entry(*line).or_default();
            for k in kinds {
                match k.as_str() {
                    "clock" => {
                        entry.insert(Cat::Clock);
                    }
                    "seed" => {
                        entry.insert(Cat::Seed);
                    }
                    _ => {}
                }
            }
        }
    }
    out
}

fn severed_at(map: &BTreeMap<u32, BTreeSet<Cat>>, line: u32, cat: Cat) -> bool {
    let hit = |l: u32| map.get(&l).is_some_and(|s| s.contains(&cat));
    hit(line) || (line > 1 && hit(line - 1))
}

/// Find the nondeterminism sinks in every fn body. Tokens inside test
/// code (per `test_masks`) are skipped — tests may read real clocks.
pub fn find_sinks(
    graph: &ItemGraph,
    lexed: &BTreeMap<String, Lexed>,
    test_masks: &BTreeMap<String, Vec<bool>>,
    severed: &BTreeMap<String, BTreeMap<u32, BTreeSet<Cat>>>,
) -> Vec<Sink> {
    let mut sinks = Vec::new();
    for (file, lex) in lexed {
        let mask = test_masks.get(file);
        let owner = crate::callgraph::owner_map(graph, file, lex.toks.len());
        let sev = severed.get(file);
        for i in 0..lex.toks.len() {
            if mask.is_some_and(|m| m.get(i).copied().unwrap_or(false)) {
                continue;
            }
            let Some(fn_id) = owner.get(i).copied().flatten() else {
                continue;
            };
            let found: Option<(&'static str, Cat)> = if path2(lex, i, "Instant", "now") {
                Some(("Instant::now", Cat::Clock))
            } else if path2(lex, i, "SystemTime", "now") {
                Some(("SystemTime::now", Cat::Clock))
            } else if path2(lex, i, "thread", "current") {
                Some(("thread::current", Cat::Seed))
            } else if lex.ident(i) == Some("from_entropy") {
                Some(("from_entropy", Cat::Seed))
            } else if lex.ident(i) == Some("thread_rng") {
                Some(("thread_rng", Cat::Seed))
            } else if lex.ident(i) == Some("OsRng") {
                Some(("OsRng", Cat::Seed))
            } else if path2(lex, i, "rand", "random") {
                Some(("rand::random", Cat::Seed))
            } else {
                None
            };
            if let Some((name, cat)) = found {
                let line = lex.line(i);
                sinks.push(Sink {
                    fn_id,
                    line,
                    name,
                    cat,
                    severed: sev.is_some_and(|m| severed_at(m, line, cat)),
                });
            }
        }
    }
    sinks
}

/// `A :: B` at token `i`.
fn path2(lex: &Lexed, i: usize, a: &str, b: &str) -> bool {
    lex.ident(i) == Some(a)
        && lex.punct(i + 1) == Some(':')
        && lex.punct(i + 2) == Some(':')
        && lex.ident(i + 3) == Some(b)
}

/// Is this fn a determinism root? The roots pin the paths whose output
/// the byte-identical contract covers: the core pipeline, all of
/// `analysis`, and anything on the render path.
pub fn is_root(graph: &ItemGraph, id: usize) -> bool {
    let f = &graph.fns[id];
    if f.is_test || f.body.is_none() {
        return false;
    }
    (f.crate_key == "core" && f.module.first().map(String::as_str) == Some("pipeline"))
        || f.crate_key == "analysis"
        || f.name.contains("render")
}

/// Run the pass: root-reachability per category with severed edges
/// excluded, one finding per reachable unsevered sink.
pub fn run(
    graph: &ItemGraph,
    cg: &CallGraph,
    sinks: &[Sink],
    severed: &BTreeMap<String, BTreeMap<u32, BTreeSet<Cat>>>,
) -> Vec<TaintFinding> {
    let mut roots: Vec<usize> = (0..graph.fns.len())
        .filter(|&id| is_root(graph, id))
        .collect();
    roots.sort_by(|&a, &b| graph.fns[a].path().cmp(&graph.fns[b].path()));

    let mut findings = Vec::new();
    for cat in [Cat::Clock, Cat::Seed] {
        let blocked: BTreeSet<usize> = cg
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                severed
                    .get(&e.file)
                    .is_some_and(|m| severed_at(m, e.line, cat))
            })
            .map(|(i, _)| i)
            .collect();
        let (seen, parent) = reachable(cg, &roots, &blocked);
        for s in sinks {
            if s.cat != cat || s.severed || !seen.contains(&s.fn_id) {
                continue;
            }
            let mut chain: Vec<String> = Vec::new();
            let mut cur = s.fn_id;
            chain.push(graph.fns[cur].path());
            while let Some(&ei) = parent.get(&cur) {
                cur = cg.edges[ei].caller;
                chain.push(graph.fns[cur].path());
            }
            chain.reverse();
            findings.push(TaintFinding {
                file: graph.fns[s.fn_id].file.clone(),
                line: s.line,
                sink: s.name,
                cat,
                chain: format!("{} → {} ({})", chain.join(" → "), s.name, cat.key()),
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.sink).cmp(&(&b.file, b.line, b.sink)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.sink == b.sink);
    findings
}
