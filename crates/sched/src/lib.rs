//! Deterministic size-aware work scheduling, shared by the crawl pool
//! (`gaugenn-playstore`) and the analysis pool (`gaugenn-core`).
//!
//! Both pools follow the same discipline: work units (store categories /
//! model files) are **assigned to workers before any thread starts**, each
//! worker processes its shard in ascending unit-index order, and the merge
//! replays unit-index order. Because the merge ignores *who* produced a
//! shard, the assignment only ever moves wall-clock time between workers —
//! it can never change the merged output. That is what lets this crate
//! offer three interchangeable policies:
//!
//! * [`SchedMode::Static`] — the legacy `index % workers` partition.
//!   Oblivious to size; one heavy unit straggles its shard.
//! * [`SchedMode::Lpt`] — longest-processing-time-first: walk units in
//!   (size descending, index ascending) order, always assigning to the
//!   least-loaded worker (ties to the lowest worker id). Classic 4/3-OPT
//!   makespan bound, and deterministic because every comparison has a
//!   total order: sizes tie-break on unit index, loads on worker id.
//! * [`SchedMode::Stealing`] — start from the static partition, then run a
//!   bounded sequence of *planned* steals: each round the least-loaded
//!   worker steals one unit from a victim picked by a pure function of
//!   `(seed, thief id, round)` (see [`splitmix64`]). The plan is computed
//!   before any worker runs, so unlike a runtime deque there is nothing
//!   for thread timing to perturb — same inputs, same plan, every run.
//!
//! The mode is selected per pool config, defaulting to the `GAUGENN_SCHED`
//! environment variable (`static` | `lpt` | `stealing`), falling back to
//! LPT. `scripts/verify.sh` runs the determinism suite under both `static`
//! and `lpt` to prove reports are byte-identical across modes.

use std::collections::BTreeMap;

/// How work units are partitioned across pool workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Legacy static partition: unit `index % workers`.
    Static,
    /// Longest-processing-time-first by size estimate.
    Lpt,
    /// Static partition rebalanced by deterministic planned steals.
    Stealing,
}

impl SchedMode {
    /// Parse a mode name as used by `GAUGENN_SCHED` and the bench CLIs.
    pub fn parse(s: &str) -> Option<SchedMode> {
        match s {
            "static" => Some(SchedMode::Static),
            "lpt" => Some(SchedMode::Lpt),
            "stealing" => Some(SchedMode::Stealing),
            _ => None,
        }
    }

    /// Mode from the `GAUGENN_SCHED` environment variable; unset or
    /// unrecognised values fall back to [`SchedMode::Lpt`].
    pub fn from_env() -> SchedMode {
        std::env::var("GAUGENN_SCHED")
            .ok()
            .as_deref()
            .and_then(SchedMode::parse)
            .unwrap_or(SchedMode::Lpt)
    }

    /// Stable lowercase name (round-trips through [`SchedMode::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            SchedMode::Static => "static",
            SchedMode::Lpt => "lpt",
            SchedMode::Stealing => "stealing",
        }
    }
}

impl Default for SchedMode {
    fn default() -> Self {
        SchedMode::from_env()
    }
}

/// One schedulable unit: a stable identity (`index` — the corpus/category
/// position the merge replays) and a cost estimate in arbitrary units
/// (catalog bytes, model-file bytes, ...). A zero size is legal and sorts
/// last under LPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Merge-order identity; must be unique within one `assign` call.
    pub index: usize,
    /// Size estimate driving LPT/stealing decisions.
    pub size: u64,
}

/// SplitMix64 — the steal plan's only source of "randomness". A pure
/// function of its seed, so the plan is reproducible by construction.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Cap on planned steal rounds, as a multiple of the unit count. Steals
/// strictly reduce the thief/victim pairwise makespan, so the plan always
/// terminates on its own; the cap only bounds pathological inputs.
const STEAL_ROUND_FACTOR: usize = 4;

/// Partition `units` across `workers` shards under `mode`.
///
/// Returns one `Vec` of unit indices per worker, each sorted ascending so
/// workers process (and chaos fault schedules see) units in a stable
/// order. Every unit index appears in exactly one shard. `seed` only
/// influences [`SchedMode::Stealing`].
pub fn assign(units: &[WorkUnit], workers: usize, mode: SchedMode, seed: u64) -> Vec<Vec<usize>> {
    let workers = workers.max(1);
    let mut shards = match mode {
        SchedMode::Static => assign_static(units, workers),
        SchedMode::Lpt => assign_lpt(units, workers),
        SchedMode::Stealing => assign_stealing(units, workers, seed),
    };
    for shard in &mut shards {
        shard.sort_unstable();
    }
    shards
}

/// The legacy partition: the unit whose index is `i` goes to `i % workers`.
fn assign_static(units: &[WorkUnit], workers: usize) -> Vec<Vec<usize>> {
    let mut shards = vec![Vec::new(); workers];
    for u in units {
        shards[u.index % workers].push(u.index);
    }
    shards
}

/// Longest-processing-time-first with total-order tie-breaks.
fn assign_lpt(units: &[WorkUnit], workers: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<&WorkUnit> = units.iter().collect();
    // Size descending; equal sizes keep corpus order (index ascending) so
    // the sort key is a total order and the plan is input-determined.
    order.sort_by(|a, b| b.size.cmp(&a.size).then(a.index.cmp(&b.index)));
    let mut shards = vec![Vec::new(); workers];
    let mut load = vec![0u64; workers];
    for u in order {
        let w = least_loaded(&load);
        shards[w].push(u.index);
        load[w] += u.size;
    }
    shards
}

/// Static partition rebalanced by a deterministic steal plan: each round
/// the least-loaded worker (the thief) steals the largest profitable unit
/// from a victim chosen by `splitmix64(seed ⊕ (thief << 32) ⊕ round)`
/// among workers it can profitably steal from. "Profitable" means the
/// steal strictly lowers `max(thief, victim)` load, so the plan can never
/// cycle and stops on its own once no worker can improve the balance.
fn assign_stealing(units: &[WorkUnit], workers: usize, seed: u64) -> Vec<Vec<usize>> {
    let size_of: BTreeMap<usize, u64> = units.iter().map(|u| (u.index, u.size)).collect();
    let mut shards = assign_static(units, workers);
    let mut load: Vec<u64> = shards
        .iter()
        .map(|s| s.iter().map(|i| size_of[i]).sum())
        .collect();

    let max_rounds = units.len().saturating_mul(STEAL_ROUND_FACTOR);
    for round in 0..max_rounds as u64 {
        let thief = least_loaded(&load);
        // A victim is eligible if handing over its largest stealable unit
        // strictly improves the pairwise makespan: thief + size < victim.
        let eligible: Vec<(usize, usize, u64)> = (0..workers)
            .filter(|&v| v != thief)
            .filter_map(|v| {
                shards[v]
                    .iter()
                    .map(|i| (*i, size_of[i]))
                    .filter(|&(_, sz)| load[thief] + sz < load[v] && sz > 0)
                    .max_by_key(|&(i, sz)| (sz, std::cmp::Reverse(i)))
                    .map(|(i, sz)| (v, i, sz))
            })
            .collect();
        if eligible.is_empty() {
            break;
        }
        let pick = splitmix64(seed ^ ((thief as u64) << 32) ^ round) as usize % eligible.len();
        let (victim, unit, sz) = eligible[pick];
        shards[victim].retain(|&i| i != unit);
        shards[thief].push(unit);
        load[victim] -= sz;
        load[thief] += sz;
    }
    shards
}

/// Worker with the smallest load; ties go to the lowest worker id.
fn least_loaded(load: &[u64]) -> usize {
    let mut best = 0usize;
    for (w, &l) in load.iter().enumerate().skip(1) {
        if l < load[best] {
            best = w;
        }
    }
    best
}

/// Predicted makespan of an assignment: the largest per-shard size sum.
pub fn makespan(units: &[WorkUnit], shards: &[Vec<usize>]) -> u64 {
    let size_of: BTreeMap<usize, u64> = units.iter().map(|u| (u.index, u.size)).collect();
    shards
        .iter()
        .map(|s| s.iter().map(|i| size_of.get(i).copied().unwrap_or(0)).sum())
        .max()
        .unwrap_or(0)
}

/// Predicted imbalance: makespan over mean shard load (1.0 = perfectly
/// balanced). Returns 1.0 for empty inputs.
pub fn imbalance(units: &[WorkUnit], shards: &[Vec<usize>]) -> f64 {
    let total: u64 = units.iter().map(|u| u.size).sum();
    if total == 0 || shards.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / shards.len() as f64;
    makespan(units, shards) as f64 / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn units(sizes: &[u64]) -> Vec<WorkUnit> {
        sizes
            .iter()
            .enumerate()
            .map(|(index, &size)| WorkUnit { index, size })
            .collect()
    }

    fn flat_sorted(shards: &[Vec<usize>]) -> Vec<usize> {
        let mut all: Vec<usize> = shards.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    #[test]
    fn static_matches_legacy_modulo_layout() {
        let u = units(&[5, 1, 9, 2, 7]);
        let shards = assign(&u, 2, SchedMode::Static, 0);
        assert_eq!(shards, vec![vec![0, 2, 4], vec![1, 3]]);
    }

    #[test]
    fn every_mode_covers_every_unit_exactly_once() {
        let u = units(&[3, 0, 8, 8, 1, 400, 2, 2]);
        for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
            for workers in [1usize, 2, 3, 8, 16] {
                let shards = assign(&u, workers, mode, 42);
                assert_eq!(shards.len(), workers);
                assert_eq!(
                    flat_sorted(&shards),
                    (0..u.len()).collect::<Vec<_>>(),
                    "{mode:?} x{workers}"
                );
            }
        }
    }

    #[test]
    fn lpt_beats_static_on_a_skewed_corpus() {
        // One whale and a school of minnows: static parks the whale with
        // whatever else shares its residue class; LPT isolates it.
        let u = units(&[100, 10, 10, 10, 100, 10, 10, 10]);
        let st = assign(&u, 4, SchedMode::Static, 0);
        let lpt = assign(&u, 4, SchedMode::Lpt, 0);
        assert!(
            makespan(&u, &lpt) < makespan(&u, &st),
            "lpt {} vs static {}",
            makespan(&u, &lpt),
            makespan(&u, &st)
        );
    }

    #[test]
    fn stealing_never_worse_than_static() {
        let u = units(&[512, 1, 1, 1, 300, 2, 9, 4, 4, 4, 128, 1]);
        for workers in [2usize, 3, 4, 8] {
            for seed in [0u64, 1, 0xD15EA5E] {
                let st = assign(&u, workers, SchedMode::Static, seed);
                let steal = assign(&u, workers, SchedMode::Stealing, seed);
                assert!(
                    makespan(&u, &steal) <= makespan(&u, &st),
                    "x{workers} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn lpt_tie_break_is_stable() {
        // All-equal sizes: LPT must degrade to round-robin in index order,
        // not depend on sort internals.
        let u = units(&[7, 7, 7, 7, 7, 7]);
        let shards = assign(&u, 3, SchedMode::Lpt, 0);
        assert_eq!(shards, vec![vec![0, 3], vec![1, 4], vec![2, 5]]);
    }

    #[test]
    fn assignment_is_reproducible() {
        let u = units(&[3, 141, 59, 26, 5, 35, 8, 97, 9, 3]);
        for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
            let a = assign(&u, 4, mode, 99);
            let b = assign(&u, 4, mode, 99);
            assert_eq!(a, b, "{mode:?}");
        }
    }

    #[test]
    fn steal_seed_changes_plan_not_coverage() {
        let u = units(&[50, 1, 50, 1, 50, 1, 50, 1, 50, 1]);
        let a = assign(&u, 4, SchedMode::Stealing, 1);
        let b = assign(&u, 4, SchedMode::Stealing, 2);
        assert_eq!(flat_sorted(&a), flat_sorted(&b));
    }

    #[test]
    fn shards_are_sorted_ascending() {
        let u = units(&[9, 8, 7, 6, 5, 4, 3, 2, 1]);
        for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
            for shard in assign(&u, 3, mode, 7) {
                assert!(shard.windows(2).all(|w| w[0] < w[1]), "{mode:?} {shard:?}");
            }
        }
    }

    #[test]
    fn mode_names_round_trip() {
        for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
            assert_eq!(SchedMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(SchedMode::parse("bogus"), None);
    }

    #[test]
    fn imbalance_of_perfect_split_is_one() {
        let u = units(&[5, 5, 5, 5]);
        let shards = assign(&u, 4, SchedMode::Lpt, 0);
        assert!((imbalance(&u, &shards) - 1.0).abs() < 1e-9);
        assert_eq!(makespan(&u, &shards), 5);
    }

    proptest! {
        #[test]
        fn prop_every_mode_is_a_permutation(
            sizes in proptest::collection::vec(0u64..10_000, 1..64),
            workers in 1usize..12,
            seed in any::<u64>(),
        ) {
            let u = units(&sizes);
            for mode in [SchedMode::Static, SchedMode::Lpt, SchedMode::Stealing] {
                let shards = assign(&u, workers, mode, seed);
                prop_assert_eq!(shards.len(), workers);
                prop_assert_eq!(flat_sorted(&shards), (0..u.len()).collect::<Vec<_>>());
            }
        }

        #[test]
        fn prop_lpt_never_loses_to_static(
            sizes in proptest::collection::vec(0u64..10_000, 1..64),
            workers in 1usize..12,
        ) {
            let u = units(&sizes);
            let st = assign(&u, workers, SchedMode::Static, 0);
            let lpt = assign(&u, workers, SchedMode::Lpt, 0);
            prop_assert!(makespan(&u, &lpt) <= makespan(&u, &st));
        }
    }
}
