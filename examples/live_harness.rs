//! Live harness: runs the *real* master–slave benchmark workflow (Fig. 3)
//! over TCP — model push via adb, USB power cut, headless device agent,
//! netcat-style completion message, result pull — for a handful of models
//! on the three HDK generations.
//!
//! ```sh
//! cargo run --release --example live_harness
//! ```

use gaugenn::dnn::task::Task;
use gaugenn::dnn::zoo::{build_for_task, SizeClass};
use gaugenn::harness::campaign::{run_campaign, Campaign};
use gaugenn::harness::job::JobSpec;
use gaugenn::modelfmt::Framework;
use gaugenn::soc::sched::ThreadConfig;
use gaugenn::soc::spec::hdks;
use gaugenn::soc::Backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = [
        (Task::FaceDetection, 11u64),
        (Task::ImageClassification, 12),
        (Task::SoundRecognition, 13),
        (Task::AutoComplete, 14),
        (Task::SemanticSegmentation, 15),
    ];
    let mut jobs = Vec::new();
    for (i, (task, seed)) in tasks.iter().enumerate() {
        let g = build_for_task(*task, *seed, SizeClass::Small, true).graph;
        let files = gaugenn::modelfmt::encode(&g, Framework::TfLite)?.files;
        jobs.push(Campaign {
            spec: JobSpec {
                warmups: 2,
                runs: 8,
                ..JobSpec::new(
                    i as u64 + 1,
                    files[0].0.clone(),
                    Backend::Cpu(ThreadConfig::unpinned(4)),
                )
            },
            files,
        });
    }

    println!(
        "running {} jobs on {} devices through the TCP master-slave harness...\n",
        jobs.len(),
        hdks().len()
    );
    let results = run_campaign(&hdks(), &jobs);
    println!(
        "{:6} {:4} {:>12} {:>12} {:>10} {:>10}",
        "device", "job", "mean ms", "energy mJ", "power W", "temp C"
    );
    for r in &results {
        match &r.outcome {
            Ok(j) => println!(
                "{:6} {:4} {:>12.2} {:>12.2} {:>10.2} {:>10.1}",
                r.device,
                r.job_id,
                j.mean_latency_ms(),
                j.mean_energy_mj(),
                j.avg_power_w,
                j.final_temp_c
            ),
            Err(e) => println!("{:6} {:4} FAILED: {e}", r.device, r.job_id),
        }
    }
    Ok(())
}
