//! Store census: the full offline analysis across both snapshots — the
//! paper's §4 (Tables 2–3, Figs. 4–7), §4.5 uniqueness, §6.1 optimisation
//! census and §6.4 cloud APIs (Fig. 15) — on a Small-scale corpus.
//!
//! ```sh
//! cargo run --release --example store_census
//! ```

use gaugenn::core::experiments::offline;
use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::playstore::corpus::Snapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 1402;
    println!("crawling the Feb 2020 snapshot...");
    let r2020 = Pipeline::new(PipelineConfig::small(Snapshot::Y2020, seed)).run()?;
    println!("crawling the Apr 2021 snapshot...");
    let r2021 = Pipeline::new(PipelineConfig::small(Snapshot::Y2021, seed)).run()?;

    println!();
    println!("{}", offline::tab2(&r2020, &r2021).render());
    println!("{}", offline::tab3(&r2021).render());
    println!("{}", offline::fig4(&r2021).render());
    println!("{}", offline::fig5(&r2020, &r2021).render());
    println!("{}", offline::fig6(&r2021).render());
    println!("{}", offline::fig7(&r2021).render());
    println!("{}", offline::render_sec45(&offline::sec45(&r2021)));
    println!("{}", offline::render_sec61(&offline::sec61(&r2021)));
    println!("{}", offline::fig15(&r2021).render());

    // Temporal headline (§4.6): the model count roughly doubles.
    let growth = r2021.dataset.total_models as f64 / r2020.dataset.total_models.max(1) as f64;
    println!(
        "temporal growth: {} -> {} model instances ({growth:.2}x; paper: 821 -> 1,666, ~2x)",
        r2020.dataset.total_models, r2021.dataset.total_models
    );
    Ok(())
}
