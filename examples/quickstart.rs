//! Quickstart: build a tiny synthetic Play Store snapshot, crawl it over
//! TCP, extract and validate every DNN model, and print what gaugeNN found.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gaugenn::core::experiments::offline;
use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::playstore::corpus::Snapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deterministic ~50-app store; the same code path scales to the
    // paper's 16.6k apps with PipelineConfig::paper(..).
    let config = PipelineConfig::tiny(Snapshot::Y2021, 7);
    println!("crawling the synthetic Play Store snapshot ({:?}, seed {})...", config.snapshot, config.seed);
    let report = Pipeline::new(config).run()?;

    let d = &report.dataset;
    println!();
    println!("== dataset ==");
    println!("apps crawled:            {}", d.total_apps);
    println!("apps with ML libraries:  {}", d.ml_apps);
    println!("apps with valid models:  {}", d.benchmarkable_apps);
    println!("model instances:         {}", d.total_models);
    println!("unique models (md5):     {}", d.unique_models);
    println!("failed candidates:       {} (decoys + encrypted models)", d.failed_candidates);
    println!("models outside base APK: {} (the §4.2 finding)", d.models_outside_apk);
    println!(
        "device-profile invariant: {:?} (old-profile re-crawl got identical APKs)",
        d.device_profile_invariant
    );

    println!();
    println!("== per-model details (first 8 unique models) ==");
    for m in report.models.iter().take(8) {
        let task = m
            .classification
            .map(|c| c.task.name())
            .unwrap_or("unidentified");
        println!(
            "  {}  {:28} {:9} {:22} {:>10.1} MFLOPs  {:>8} params  in {} app(s)",
            &m.checksum[..8],
            m.name.chars().take(28).collect::<String>(),
            m.framework.name(),
            task,
            m.trace.total_flops as f64 / 1e6,
            m.trace.total_params,
            m.app_count,
        );
    }

    println!();
    let t3 = offline::tab3(&report);
    println!("{}", t3.render());
    let census = offline::sec61(&report);
    println!("{}", offline::render_sec61(&census));
    Ok(())
}
