//! Device sweep: the paper's §5 runtime analysis — latency across device
//! tiers and SoC generations (Figs. 8–9), energy/power/efficiency
//! distributions on the HDK boards (Fig. 10) and the scenario-driven
//! battery analysis (Table 4).
//!
//! ```sh
//! cargo run --release --example device_sweep
//! ```

use gaugenn::core::experiments::runtime;
use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::playstore::corpus::Snapshot;
use gaugenn::soc::spec::all_devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", runtime::tab1());

    println!("crawling + extracting the corpus...");
    let report = Pipeline::new(PipelineConfig::small(Snapshot::Y2021, 1402)).run()?;
    println!(
        "benchmarking {} unique models across {} devices...\n",
        report.models.len(),
        all_devices().len()
    );

    let sweep = runtime::latency_sweep(&report, &all_devices());
    println!("{}", runtime::fig8(&sweep).render());
    println!("{}", runtime::fig9(&sweep).render());
    println!("{}", runtime::fig10(&report)?.render());
    println!("{}", runtime::tab4(&report)?.render());
    Ok(())
}
