//! Offload advisor: for every model extracted from the store, decide per
//! device and network whether a developer should run it locally or call a
//! cloud API — the §6.4 trade-off the paper's Fig. 15 apps face.
//!
//! ```sh
//! cargo run --release --example offload_advisor
//! ```

use gaugenn::core::experiments::offload::offload_study;
use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::playstore::corpus::Snapshot;
use gaugenn::soc::offload::{offload_latency_ms, CloudSpec, NETWORKS};
use gaugenn::soc::sched::ThreadConfig;
use gaugenn::soc::spec::device;
use gaugenn::soc::thermal::ThermalState;
use gaugenn::soc::Backend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("crawling + extracting the corpus...");
    let report = Pipeline::new(PipelineConfig::small(Snapshot::Y2021, 1402)).run()?;

    println!("\n{}", offload_study(&report)?.render());

    // Per-model advice on the weakest device over LTE.
    let a20 = device("A20").expect("Table 1 device");
    let lte = &NETWORKS[1];
    let cloud = CloudSpec::default();
    let cpu = Backend::Cpu(ThreadConfig::unpinned(4));
    let cool = ThermalState::cool();
    println!("per-model advice on the A20 over LTE (first 12 models):");
    println!(
        "{:34} {:>10} {:>10}  advice",
        "model", "local ms", "cloud ms"
    );
    for m in report.models.iter().take(12) {
        let Ok(local) = gaugenn::soc::estimate_latency(&a20, cpu, &m.trace, &cool) else {
            continue;
        };
        let off = offload_latency_ms(&m.trace, lte, &cloud, 20.0);
        let advice = if off < local.total_ms { "offload" } else { "stay local" };
        println!(
            "{:34} {:>10.1} {:>10.1}  {advice}",
            m.name.chars().take(34).collect::<String>(),
            local.total_ms,
            off
        );
    }
    Ok(())
}
