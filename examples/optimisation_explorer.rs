//! Optimisation explorer: the paper's §6.2–§6.3 system-level experiments —
//! batch-size scaling (Fig. 11), thread count and core affinity (Fig. 12),
//! CPU-runtime delegates (Fig. 13) and SNPE hardware targets (Fig. 14).
//!
//! ```sh
//! cargo run --release --example optimisation_explorer
//! ```

use gaugenn::core::experiments::backends;
use gaugenn::core::pipeline::{Pipeline, PipelineConfig};
use gaugenn::playstore::corpus::Snapshot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("crawling + extracting the corpus...");
    let report = Pipeline::new(PipelineConfig::small(Snapshot::Y2021, 1402)).run()?;
    println!("{} unique models extracted\n", report.models.len());

    println!("{}", backends::fig11(&report).render());
    println!("{}", backends::fig12(&report).render());
    println!(
        "{}",
        backends::fig13(&report)?.render("Fig 13: TFLite CPU runtimes (CPU vs XNNPACK vs NNAPI)")
    );
    println!(
        "{}",
        backends::fig14(&report)?.render("Fig 14: SNPE hardware targets (TFLite + caffe models)")
    );
    println!(
        "paper anchors: XNNPACK 1.03x faster / 1.13x more efficient; NNAPI 0.49x; \
         SNPE-DSP 5.72x faster / 20.3x more efficient; SNPE-GPU 2.28x / 8.39x (vs CPU)."
    );
    Ok(())
}
