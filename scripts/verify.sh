#!/usr/bin/env sh
# Tier-1 verification: build + full test suite (see ROADMAP.md), the
# concurrency suite re-run single-threaded (and again under each forced
# pool scheduling mode), a double-repro persistent-cache determinism
# check, the gaugelint and lock-order gates, and workspace clippy.
#
# Works without network access: if the registry is unreachable, cargo is
# retried in --offline mode (using whatever is already vendored/cached).
# Exits nonzero when neither mode can build or any test fails.
set -u
cd "$(dirname "$0")/.."

run_cargo() {
    mode="$1"; shift
    echo "==> cargo $* ($mode)"
    if [ "$mode" = "offline" ]; then
        cargo --offline "$@"
    else
        cargo "$@"
    fi
}

verify() {
    mode="$1"
    run_cargo "$mode" build --release || return 1
    run_cargo "$mode" test -q || return 1
    # The concurrency suite exercises the sharded crawl pool and the
    # analysis pool's render determinism; re-run it with the test harness
    # single-threaded so pool determinism is also proven without
    # inter-test parallelism masking (or causing) races.
    run_cargo "$mode" test -q --test concurrency -- --test-threads=1 || return 1
    # And pin the analysis-pool determinism test by name so a filtered-out
    # rename fails loudly instead of silently skipping the gate.
    run_cargo "$mode" test -q --test concurrency \
        analysis_worker_count_never_changes_the_report -- --test-threads=1 \
        || return 1
    # Scheduling-mode determinism: the same suite must pass with the pool
    # scheduler forced to static shards and to deterministic LPT — the
    # mode may move wall time, never report bytes (DESIGN.md §11).
    GAUGENN_SCHED=static run_cargo "$mode" test -q --test concurrency \
        -- --test-threads=1 || return 1
    GAUGENN_SCHED=lpt run_cargo "$mode" test -q --test concurrency \
        -- --test-threads=1 || return 1
    # Persistent-cache determinism: two back-to-back repro runs against a
    # fresh cache directory must emit byte-identical stdout, and the
    # second must actually attach to the first's persisted analyses.
    cache_dir="target/verify-cache.$$"
    rm -rf "$cache_dir"
    GAUGENN_CACHE_DIR="$cache_dir" run_cargo "$mode" run --release -q \
        -p gaugenn-bench --bin repro -- tiny 1402 2 2 \
        >"$cache_dir.out1" 2>"$cache_dir.err1" || return 1
    GAUGENN_CACHE_DIR="$cache_dir" run_cargo "$mode" run --release -q \
        -p gaugenn-bench --bin repro -- tiny 1402 2 2 \
        >"$cache_dir.out2" 2>"$cache_dir.err2" || return 1
    if ! cmp -s "$cache_dir.out1" "$cache_dir.out2"; then
        echo "verify: repro stdout differs between cold and warm cache runs" >&2
        diff "$cache_dir.out1" "$cache_dir.out2" | head -20 >&2
        return 1
    fi
    if ! grep -q "persistent cache: [1-9][0-9]* hits" "$cache_dir.err2"; then
        echo "verify: warm repro run reported no persistent cache hits" >&2
        grep "persistent cache:" "$cache_dir.err2" >&2
        return 1
    fi
    rm -rf "$cache_dir" "$cache_dir.out1" "$cache_dir.out2" \
        "$cache_dir.err1" "$cache_dir.err2"
    # gaugelint gate: the in-repo invariant checker (DESIGN.md §10) must
    # pass its own fixture suite and report zero unsuppressed findings
    # across crates/ and tests/.
    run_cargo "$mode" test -q -p lint || return 1
    run_cargo "$mode" run -q -p lint -- crates tests || return 1
    # Runtime lock-order deadlock detector: the vendored parking_lot's own
    # detector suite, then the concurrency suite re-run with every lock in
    # the build graph order-checked (single-threaded, so a detected cycle
    # panics one test instead of wedging the harness).
    run_cargo "$mode" test -q -p parking_lot --features lock-order-check \
        || return 1
    run_cargo "$mode" test -q --test concurrency --features lock-order-check \
        -- --test-threads=1 || return 1
    # Workspace-wide clippy gate (kept after the repo went warning-clean).
    if run_cargo "$mode" clippy --version >/dev/null 2>&1; then
        run_cargo "$mode" clippy --workspace --all-targets -- -D warnings \
            || return 1
    else
        echo "verify: clippy unavailable in $mode mode; skipping lint gate"
    fi
}

if verify online; then
    echo "verify: OK (online)"
    exit 0
fi
echo "verify: online build failed (no network / registry unreachable?); retrying offline"
if verify offline; then
    echo "verify: OK (offline)"
    exit 0
fi
echo "verify: FAILED in both online and offline modes" >&2
exit 1
