#!/usr/bin/env sh
# Tier-1 verification: build + full test suite (see ROADMAP.md), the
# concurrency suite re-run single-threaded (and again under each forced
# pool scheduling mode), a double-repro persistent-cache determinism
# check, the crash-recovery matrix (SIGKILL at each registered crash
# point, then --resume must reproduce stdout byte-for-byte), a cache
# compaction-under-pressure check, the query-serving determinism gate
# (querybench streams must be byte-identical at every connection count),
# the reactor gate (readiness-replay determinism plus sim/epoll digest
# equality up to 256 connections), the client-reactor gate (lockstep
# multi-connection replay pinned by name, sim crawls byte-stable across
# runs, epoll/threaded/sim client transports rendering one report), the
# gaugelint and lock-order gates, and workspace clippy.
#
# Works without network access: if the registry is unreachable, cargo is
# retried in --offline mode (using whatever is already vendored/cached).
# Exits nonzero when neither mode can build or any test fails.
set -u
cd "$(dirname "$0")/.."

run_cargo() {
    mode="$1"; shift
    # Progress goes to stderr so gates that capture a run's stdout
    # (the byte-compare checks below) see pure program output.
    echo "==> cargo $* ($mode)" >&2
    if [ "$mode" = "offline" ]; then
        cargo --offline "$@"
    else
        cargo "$@"
    fi
}

verify() {
    mode="$1"
    run_cargo "$mode" build --release || return 1
    run_cargo "$mode" test -q || return 1
    # The concurrency suite exercises the sharded crawl pool and the
    # analysis pool's render determinism; re-run it with the test harness
    # single-threaded so pool determinism is also proven without
    # inter-test parallelism masking (or causing) races.
    run_cargo "$mode" test -q --test concurrency -- --test-threads=1 || return 1
    # And pin the analysis-pool determinism test by name so a filtered-out
    # rename fails loudly instead of silently skipping the gate.
    run_cargo "$mode" test -q --test concurrency \
        analysis_worker_count_never_changes_the_report -- --test-threads=1 \
        || return 1
    # Scheduling-mode determinism: the same suite must pass with the pool
    # scheduler forced to static shards and to deterministic LPT — the
    # mode may move wall time, never report bytes (DESIGN.md §11).
    GAUGENN_SCHED=static run_cargo "$mode" test -q --test concurrency \
        -- --test-threads=1 || return 1
    GAUGENN_SCHED=lpt run_cargo "$mode" test -q --test concurrency \
        -- --test-threads=1 || return 1
    # Persistent-cache determinism: two back-to-back repro runs against a
    # fresh cache directory must emit byte-identical stdout, and the
    # second must actually attach to the first's persisted analyses.
    cache_dir="target/verify-cache.$$"
    rm -rf "$cache_dir"
    GAUGENN_CACHE_DIR="$cache_dir" run_cargo "$mode" run --release -q \
        -p gaugenn-bench --bin repro -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 \
        >"$cache_dir.out1" 2>"$cache_dir.err1" || return 1
    GAUGENN_CACHE_DIR="$cache_dir" run_cargo "$mode" run --release -q \
        -p gaugenn-bench --bin repro -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 \
        >"$cache_dir.out2" 2>"$cache_dir.err2" || return 1
    if ! cmp -s "$cache_dir.out1" "$cache_dir.out2"; then
        echo "verify: repro stdout differs between cold and warm cache runs" >&2
        diff "$cache_dir.out1" "$cache_dir.out2" | head -20 >&2
        return 1
    fi
    if ! grep -q "persistent cache: [1-9][0-9]* hits" "$cache_dir.err2"; then
        echo "verify: warm repro run reported no persistent cache hits" >&2
        grep "persistent cache:" "$cache_dir.err2" >&2
        return 1
    fi
    rm -rf "$cache_dir" "$cache_dir.out1" "$cache_dir.out2" \
        "$cache_dir.err1" "$cache_dir.err2"
    # Crash-fault injection (DESIGN.md §12): the child-process matrix
    # that really SIGKILLs a run at each registered crash point, pinned
    # by name so a rename cannot silently skip the gate.
    run_cargo "$mode" test -q -p gaugenn-core --test failure_injection \
        || return 1
    run_cargo "$mode" test -q -p gaugenn-core --test failure_injection \
        sigkill_matrix_resume_is_byte_identical || return 1
    # Repro-level crash matrix: kill the real repro binary at three
    # registered points, then --resume must reproduce the uninterrupted
    # run's stdout byte-for-byte (exit 137 = SIGKILL is the expected
    # "failure" of the armed run).
    crash_dir="target/verify-crash.$$"
    rm -rf "$crash_dir"
    mkdir -p "$crash_dir"
    GAUGENN_JOURNAL_DIR="$crash_dir/journal" GAUGENN_CACHE_DIR="$crash_dir/cache" \
        run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 >"$crash_dir/baseline.out" 2>/dev/null || return 1
    for point in post-crawl:1 model-analysis:2 cache-append:2; do
        rm -rf "$crash_dir/journal" "$crash_dir/cache"
        GAUGENN_CRASH="$point" GAUGENN_CRASH_MODE=kill \
            GAUGENN_JOURNAL_DIR="$crash_dir/journal" GAUGENN_CACHE_DIR="$crash_dir/cache" \
            run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
            -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 >/dev/null 2>&1
        status=$?
        if [ "$status" -eq 0 ]; then
            echo "verify: armed crash point $point did not kill repro" >&2
            return 1
        fi
        GAUGENN_JOURNAL_DIR="$crash_dir/journal" GAUGENN_CACHE_DIR="$crash_dir/cache" \
            run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
            -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 --resume >"$crash_dir/resumed.out" 2>/dev/null || return 1
        if ! cmp -s "$crash_dir/baseline.out" "$crash_dir/resumed.out"; then
            echo "verify: resumed repro stdout diverged after $point kill" >&2
            diff "$crash_dir/baseline.out" "$crash_dir/resumed.out" | head -20 >&2
            return 1
        fi
    done
    # Compaction under pressure: a small GAUGENN_CACHE_MAX_BYTES budget
    # must bound the cache directory while repeat runs stay byte-stable.
    rm -rf "$crash_dir/cache"
    GAUGENN_CACHE_DIR="$crash_dir/cache" GAUGENN_CACHE_MAX_BYTES=16384 \
        run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 >"$crash_dir/press1.out" 2>/dev/null || return 1
    GAUGENN_CACHE_DIR="$crash_dir/cache" GAUGENN_CACHE_MAX_BYTES=16384 \
        run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --analysis-workers 2 >"$crash_dir/press2.out" 2>/dev/null || return 1
    if ! cmp -s "$crash_dir/press1.out" "$crash_dir/press2.out"; then
        echo "verify: repro stdout differs under cache pressure" >&2
        return 1
    fi
    # Sum regular files (entries + index): the budget governs cache
    # payload, not filesystem directory-inode overhead.
    cache_bytes=$(find "$crash_dir/cache" -type f -exec wc -c {} + 2>/dev/null \
        | awk 'END { print $1 }')
    if [ -n "$cache_bytes" ] && [ "$cache_bytes" -gt 16384 ]; then
        echo "verify: cache dir $cache_bytes bytes exceeds GAUGENN_CACHE_MAX_BYTES=16384" >&2
        return 1
    fi
    rm -rf "$crash_dir"
    # Query-serving gate (DESIGN.md §13): querybench replays one seeded
    # query stream at 1 and 8 connections (and under chaos) and asserts
    # internally that every response stream is byte-identical; the digest
    # lines on stderr are re-checked here so a silenced assert cannot
    # slip through — every run must print the same digest.
    query_out="target/verify-query.$$"
    run_cargo "$mode" run --release -q -p gaugenn-bench --bin querybench \
        -- --scale tiny --seed 1402 --workers 8 \
        >"$query_out.out" 2>"$query_out.err" || return 1
    if ! grep -q "byte-identical" "$query_out.out"; then
        echo "verify: querybench did not report byte-identical streams" >&2
        return 1
    fi
    distinct_digests=$(grep -o 'digest [0-9a-f]*' "$query_out.err" \
        | sort -u | awk 'END { print NR }')
    if [ "$distinct_digests" != "1" ]; then
        echo "verify: querybench digests diverged across connection counts" >&2
        grep 'digest' "$query_out.err" >&2
        return 1
    fi
    rm -f "$query_out.out" "$query_out.err"
    # Reactor gate (DESIGN.md §14): the readiness-replay determinism and
    # cross-loop equivalence suite, with the replay test pinned by name
    # so a rename cannot silently skip it.
    run_cargo "$mode" test -q --test reactor || return 1
    run_cargo "$mode" test -q --test reactor \
        same_seed_replays_the_same_event_order_and_bytes || return 1
    # Client-reactor gate (DESIGN.md §16): the lockstep multi-connection
    # crawls whose client+server event digests must replay bit-for-bit
    # from the seeds, pinned by name.
    run_cargo "$mode" test -q --test reactor \
        one_poll_loop_holds_256_lanes_in_flight_and_replays || return 1
    run_cargo "$mode" test -q --test reactor \
        chaos_trio_through_the_nonblocking_client_recovers_and_replays || return 1
    # The full pipeline over the non-blocking client: a sim-reactor
    # multi-connection crawl run twice must print byte-identical tables
    # (the free-running readiness schedule may differ — stdout must not),
    # and the epoll and threaded client transports must render the same
    # PipelineReport.
    pool_out="target/verify-pool.$$"
    run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --reactor sim --connections 64 \
        >"$pool_out.sim1.out" 2>"$pool_out.sim1.err" || return 1
    run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --reactor sim --connections 64 \
        >"$pool_out.sim2.out" 2>"$pool_out.sim2.err" || return 1
    if ! cmp -s "$pool_out.sim1.out" "$pool_out.sim2.out"; then
        echo "verify: sim-reactor multi-connection crawl stdout differs between runs" >&2
        diff "$pool_out.sim1.out" "$pool_out.sim2.out" | head -20 >&2
        return 1
    fi
    for side in sim1 sim2; do
        if ! grep -q "reactor digest" "$pool_out.$side.err"; then
            echo "verify: $side repro run printed no reactor schedule digest" >&2
            return 1
        fi
    done
    run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --reactor epoll --connections 64 \
        >"$pool_out.epoll.out" 2>/dev/null || return 1
    run_cargo "$mode" run --release -q -p gaugenn-bench --bin repro \
        -- --scale tiny --seed 1402 --workers 2 --reactor legacy \
        >"$pool_out.threaded.out" 2>/dev/null || return 1
    if ! cmp -s "$pool_out.epoll.out" "$pool_out.threaded.out"; then
        echo "verify: epoll and threaded client transports rendered different reports" >&2
        diff "$pool_out.epoll.out" "$pool_out.threaded.out" | head -20 >&2
        return 1
    fi
    if ! cmp -s "$pool_out.sim1.out" "$pool_out.threaded.out"; then
        echo "verify: sim and threaded client transports rendered different reports" >&2
        diff "$pool_out.sim1.out" "$pool_out.threaded.out" | head -20 >&2
        return 1
    fi
    rm -f "$pool_out.sim1.out" "$pool_out.sim1.err" \
        "$pool_out.sim2.out" "$pool_out.sim2.err" \
        "$pool_out.epoll.out" "$pool_out.threaded.out"
    # The query gate again under the deterministic sim reactor and under
    # a forced epoll sweep to 256 connections. Each run asserts
    # byte-identical streams internally (including 256-conn == 1-conn);
    # the digests are re-checked across BOTH runs here — response bytes
    # are a pure function of (index, stream), never of the serving loop
    # or the connection count, so the sim and epoll digests must agree.
    net_out="target/verify-net.$$"
    GAUGENN_REACTOR=sim run_cargo "$mode" run --release -q -p gaugenn-bench \
        --bin querybench -- --scale tiny --seed 1402 --workers 256 \
        >"$net_out.sim.out" 2>"$net_out.sim.err" || return 1
    run_cargo "$mode" run --release -q -p gaugenn-bench \
        --bin querybench -- --scale tiny --seed 1402 --workers 256 --reactor epoll \
        >"$net_out.epoll.out" 2>"$net_out.epoll.err" || return 1
    for side in sim epoll; do
        if ! grep -q "byte-identical" "$net_out.$side.out"; then
            echo "verify: $side querybench did not report byte-identical streams" >&2
            return 1
        fi
    done
    net_digests=$(cat "$net_out.sim.err" "$net_out.epoll.err" \
        | grep -o 'digest [0-9a-f]*' | sort -u | awk 'END { print NR }')
    if [ "$net_digests" != "1" ]; then
        echo "verify: response digests diverged across reactors or connection counts" >&2
        grep 'digest' "$net_out.sim.err" "$net_out.epoll.err" >&2
        return 1
    fi
    rm -f "$net_out.sim.out" "$net_out.sim.err" \
        "$net_out.epoll.out" "$net_out.epoll.err"
    # gaugelint gate (DESIGN.md §10, §15): the in-repo invariant checker
    # must pass its fixture suites (lexical rules, workspace semantics,
    # CLI acceptance), then the whole-workspace semantic pass must come
    # back clean against the committed baseline — twice, with both the
    # findings JSON and the channel wait-for graph byte-identical across
    # runs (the lint's own determinism contract).
    run_cargo "$mode" test -q -p lint || return 1
    lint_out="target/verify-lint.$$"
    run_cargo "$mode" run -q -p lint -- --format json \
        --baseline results/lint_baseline.json --waitfor "$lint_out.wf1.json" \
        crates tests >"$lint_out.1.json" || return 1
    run_cargo "$mode" run -q -p lint -- --format json \
        --baseline results/lint_baseline.json --waitfor "$lint_out.wf2.json" \
        crates tests >"$lint_out.2.json" || return 1
    if ! cmp -s "$lint_out.1.json" "$lint_out.2.json"; then
        echo "verify: gaugelint findings JSON differs between identical runs" >&2
        diff "$lint_out.1.json" "$lint_out.2.json" | head -20 >&2
        return 1
    fi
    if ! cmp -s "$lint_out.wf1.json" "$lint_out.wf2.json"; then
        echo "verify: gaugelint wait-for graph differs between identical runs" >&2
        diff "$lint_out.wf1.json" "$lint_out.wf2.json" | head -20 >&2
        return 1
    fi
    rm -f "$lint_out.1.json" "$lint_out.2.json" \
        "$lint_out.wf1.json" "$lint_out.wf2.json"
    # Runtime lock-order deadlock detector: the vendored parking_lot's own
    # detector suite, then the concurrency suite re-run with every lock in
    # the build graph order-checked (single-threaded, so a detected cycle
    # panics one test instead of wedging the harness), then the channel
    # wait-for detector's regression suite (mutual-recv cycles must panic
    # with both sites before blocking; detector state is process-global,
    # hence single-threaded).
    run_cargo "$mode" test -q -p parking_lot --features lock-order-check \
        || return 1
    run_cargo "$mode" test -q --test concurrency --features lock-order-check \
        -- --test-threads=1 || return 1
    run_cargo "$mode" test -q --test chan_deadlock --features lock-order-check \
        -- --test-threads=1 || return 1
    # Workspace-wide clippy gate (kept after the repo went warning-clean).
    if run_cargo "$mode" clippy --version >/dev/null 2>&1; then
        run_cargo "$mode" clippy --workspace --all-targets -- -D warnings \
            || return 1
    else
        echo "verify: clippy unavailable in $mode mode; skipping lint gate"
    fi
}

if verify online; then
    echo "verify: OK (online)"
    exit 0
fi
echo "verify: online build failed (no network / registry unreachable?); retrying offline"
if verify offline; then
    echo "verify: OK (offline)"
    exit 0
fi
echo "verify: FAILED in both online and offline modes" >&2
exit 1
