#!/usr/bin/env sh
# Tier-1 verification: build + full test suite (see ROADMAP.md).
#
# Works without network access: if the registry is unreachable, cargo is
# retried in --offline mode (using whatever is already vendored/cached).
# Exits nonzero when neither mode can build or any test fails.
set -u
cd "$(dirname "$0")/.."

run_cargo() {
    mode="$1"; shift
    echo "==> cargo $* ($mode)"
    if [ "$mode" = "offline" ]; then
        cargo --offline "$@"
    else
        cargo "$@"
    fi
}

verify() {
    mode="$1"
    run_cargo "$mode" build --release && run_cargo "$mode" test -q
}

if verify online; then
    echo "verify: OK (online)"
    exit 0
fi
echo "verify: online build failed (no network / registry unreachable?); retrying offline"
if verify offline; then
    echo "verify: OK (offline)"
    exit 0
fi
echo "verify: FAILED in both online and offline modes" >&2
exit 1
