#!/usr/bin/env sh
# Tier-1 verification: build + full test suite (see ROADMAP.md), the
# concurrency suite re-run single-threaded, and a clippy gate on the
# store/crawler crate.
#
# Works without network access: if the registry is unreachable, cargo is
# retried in --offline mode (using whatever is already vendored/cached).
# Exits nonzero when neither mode can build or any test fails.
set -u
cd "$(dirname "$0")/.."

run_cargo() {
    mode="$1"; shift
    echo "==> cargo $* ($mode)"
    if [ "$mode" = "offline" ]; then
        cargo --offline "$@"
    else
        cargo "$@"
    fi
}

verify() {
    mode="$1"
    run_cargo "$mode" build --release || return 1
    run_cargo "$mode" test -q || return 1
    # The concurrency suite exercises the sharded crawl pool; re-run it
    # with the test harness single-threaded so pool determinism is also
    # proven without inter-test parallelism masking (or causing) races.
    run_cargo "$mode" test -q --test concurrency -- --test-threads=1 || return 1
    # Lint gate for the crate this PR reworked; extend crate by crate.
    if run_cargo "$mode" clippy --version >/dev/null 2>&1; then
        run_cargo "$mode" clippy -p gaugenn-playstore --all-targets -- -D warnings || return 1
    else
        echo "verify: clippy unavailable in $mode mode; skipping lint gate"
    fi
}

if verify online; then
    echo "verify: OK (online)"
    exit 0
fi
echo "verify: online build failed (no network / registry unreachable?); retrying offline"
if verify offline; then
    echo "verify: OK (offline)"
    exit 0
fi
echo "verify: FAILED in both online and offline modes" >&2
exit 1
