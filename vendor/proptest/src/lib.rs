//! Offline stand-in for the subset of `proptest` 1.x this workspace uses.
//!
//! Supports the `proptest! { #[test] fn name(x in strategy, ..) { .. } }`
//! macro (with an optional `#![proptest_config(..)]` header), the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` macros, `any::<T>()`,
//! numeric range strategies, regex-subset string strategies
//! (`"[a-z0-9_/]{1,24}"`, `"\\PC{0,40}"`, …), tuple strategies, and
//! `prop::collection::{vec, btree_set}`.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! file: each test runs `cases` deterministic inputs derived from the
//! test's name, so a failure reproduces on every run. The printed case
//! index identifies the failing input.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Per-test deterministic random stream (SplitMix64). The seed mixes the
/// test name and the case index so every case across every test draws an
/// independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for `case` of the test `name`.
    pub fn new(name: &str, case: u32) -> TestRng {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]` (inclusive).
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty draw span");
        self.next_u64() % span
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases to run per property (the only config knob used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; these properties are cheap, so
        // match it.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// ---- numeric ranges ------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*}
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*}
}
float_range_strategy!(f32, f64);

// ---- any::<T>() ----------------------------------------------------------

/// Types with a whole-domain default strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Arbitrary bit patterns, with signalling NaNs quietened so
        // bit-exact roundtrip assertions are not at the mercy of the FPU.
        let mut bits = rng.next_u64() as u32;
        if bits & 0x7F80_0000 == 0x7F80_0000 && bits & 0x007F_FFFF != 0 {
            bits |= 0x0040_0000;
        }
        f32::from_bits(bits)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mut bits = rng.next_u64();
        if bits & 0x7FF0_0000_0000_0000 == 0x7FF0_0000_0000_0000
            && bits & 0x000F_FFFF_FFFF_FFFF != 0
        {
            bits |= 0x0008_0000_0000_0000;
        }
        f64::from_bits(bits)
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---- tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*}
}
tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

// ---- regex-subset string strategies --------------------------------------

/// One parsed pattern atom: a set of candidate chars plus a repetition.
struct Atom {
    chars: Vec<char>,
    min: u32,
    max: u32,
}

/// Candidate pool for `\PC` ("any printable char"): full ASCII printable
/// plus a few multi-byte scalars so UTF-8 handling gets exercised.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (' '..='~').collect();
    pool.extend(['é', 'ß', 'λ', 'Ж', '中', '日', '€', '→', '𝄞', '🙂']);
    pool
}

/// Parse the regex subset used by the workspace's patterns: sequences of
/// `[class]`, `\PC`, or literal chars, each with an optional `{n}`/`{m,n}`
/// repetition. Panics on anything outside that subset so an unsupported
/// pattern fails loudly instead of silently generating garbage.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let pool = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars.next().unwrap_or_else(|| {
                        panic!("unterminated [class] in pattern {pattern:?}")
                    });
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("checked");
                            let hi = chars.next().expect("peeked");
                            assert!(lo <= hi, "bad range {lo}-{hi} in {pattern:?}");
                            // `lo` is already in `class`; add the rest.
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    class.push(ch);
                                }
                            }
                        }
                        c => {
                            class.push(c);
                            prev = Some(c);
                        }
                    }
                }
                assert!(!class.is_empty(), "empty [class] in {pattern:?}");
                class
            }
            '\\' => match chars.next() {
                Some('P') => {
                    assert_eq!(
                        chars.next(),
                        Some('C'),
                        "only \\PC is supported in {pattern:?}"
                    );
                    printable_pool()
                }
                Some(esc @ ('\\' | '.' | '[' | ']' | '{' | '}')) => vec![esc],
                other => panic!("unsupported escape \\{other:?} in {pattern:?}"),
            },
            '.' => printable_pool(),
            c => vec![c],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(c) => spec.push(c),
                    None => panic!("unterminated {{m,n}} in {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repetition min"),
                    n.trim().parse().expect("repetition max"),
                ),
                None => {
                    let n: u32 = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in {pattern:?}");
        atoms.push(Atom {
            chars: pool,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---- collections ---------------------------------------------------------

/// A size argument for collection strategies.
pub trait IntoSizeRange {
    /// Inclusive (min, max) element counts.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{IntoSizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Strategy producing `Vec<S::Value>` with a length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `Vec` strategy with element strategy `elem` and `size` elements.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { elem, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet<S::Value>` with a size in `size`.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    /// `BTreeSet` strategy. The element strategy's domain must comfortably
    /// exceed the requested size (true for every use in this repo); the
    /// generator gives up with a panic after a bounded number of duplicate
    /// draws rather than looping forever.
    pub fn btree_set<S>(elem: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { elem, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.min + rng.below((self.max - self.min + 1) as u64) as usize;
            let mut set = BTreeSet::new();
            let mut misses = 0usize;
            while set.len() < target {
                if !set.insert(self.elem.generate(rng)) {
                    misses += 1;
                    assert!(
                        misses < 1000 + target * 100,
                        "btree_set strategy: element domain too small for size {target}"
                    );
                }
            }
            set
        }
    }
}

/// Everything a property test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Assert a condition inside a property (panics, as shrinking-free
/// stand-in for proptest's early-return).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+)
    };
}

/// Define property tests: each `#[test] fn name(arg in strategy, ..)`
/// becomes a regular `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        #[test]
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest `{}`: case {}/{} failed (deterministic; reruns reproduce it)",
                        stringify!($name), __case, __config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn string_patterns_respect_class_and_length() {
        let mut rng = TestRng::new("pattern", 0);
        for _ in 0..200 {
            let s = Strategy::generate("[a-z0-9_/]{1,24}", &mut rng);
            assert!((1..=24).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '/'));
            let t = Strategy::generate("[ -~]{0,64}", &mut rng);
            assert!(t.chars().count() <= 64);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
            let u = Strategy::generate("\\PC{0,40}", &mut rng);
            assert!(u.chars().count() <= 40);
            assert!(u.chars().all(|c| !c.is_control()), "{u:?}");
        }
    }

    #[test]
    fn collection_sizes_respect_bounds() {
        let mut rng = TestRng::new("sizes", 1);
        for _ in 0..100 {
            let v = prop::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s: BTreeSet<i32> =
                prop::collection::btree_set(-1000i32..1000, 2..32).generate(&mut rng);
            assert!((2..32).contains(&s.len()));
        }
    }

    #[test]
    fn cases_are_deterministic_per_name_and_index() {
        let a = Strategy::generate(&(0u64..1_000_000), &mut TestRng::new("t", 3));
        let b = Strategy::generate(&(0u64..1_000_000), &mut TestRng::new("t", 3));
        let c = Strategy::generate(&(0u64..1_000_000), &mut TestRng::new("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn the_macro_itself_expands_and_runs(
            xs in prop::collection::vec(any::<u8>(), 0..8),
            k in 1u32..=4,
        ) {
            prop_assert!(xs.len() < 8);
            prop_assert_eq!(k.min(4), k, "k={}", k);
            prop_assert_ne!(k, 0);
        }
    }
}
