//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small, deterministic implementation of the APIs it calls:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] (integer and float ranges, half-open and inclusive),
//! [`Rng::gen_bool`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator is a SplitMix64 stream — statistically fine for corpus
//! synthesis and weight initialisation, and *stable*: every draw is a pure
//! function of the seed, which is what the repo's determinism guarantee
//! (DESIGN.md §6) actually depends on. It does **not** reproduce the
//! upstream ChaCha12 `StdRng` stream; nothing in the workspace assumes
//! specific draw values, only that they are deterministic per seed.

#![forbid(unsafe_code)]

/// Core random-source trait: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (only the `seed_from_u64` entry point is used).
pub trait SeedableRng: Sized {
    /// Build an RNG whose whole stream is a function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types drawable by [`Rng::gen_range`]. The blanket [`SampleRange`]
/// impls are generic over this trait (one impl per range shape, not per
/// type) so that unsuffixed literals like `gen_range(2..=4)` infer their
/// type from context exactly as with the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `lo..hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `lo..=hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*}
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let f = <$t as Standard>::sample_standard(rng);
                lo + f * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let f = <$t as Standard>::sample_standard(rng);
                lo + f * (hi - lo)
            }
        }
    )*}
}
uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling trait (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw one standard-distribution value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 stream (see the crate docs: this is a
    /// stand-in, not the upstream ChaCha12 `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Seed pre-mix: xored into the raw seed so adjacent seeds do not give
    /// overlapping SplitMix64 streams.
    const SEED_PREMIX: u64 = 0x2748774CDF8EEB99;

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut rng = StdRng {
                state: state ^ SEED_PREMIX,
            };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffle/choose over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// One uniformly random element (`None` when empty).
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(3..9u32);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(-1.5..=1.5f32);
            assert!((-1.5..=1.5).contains(&f));
            let p: f64 = r.gen();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn range_bounds_are_reachable() {
        let mut r = StdRng::seed_from_u64(11);
        let draws: Vec<u32> = (0..200).map(|_| r.gen_range(0..4u32)).collect();
        for want in 0..4 {
            assert!(draws.contains(&want), "{want} never drawn");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 32-element shuffle is (overwhelmingly) not identity");
    }
}
