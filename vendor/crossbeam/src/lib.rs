//! Offline stand-in for the subset of `crossbeam` 0.8 this workspace
//! uses: `channel::{unbounded, Sender, Receiver}` with MPMC semantics
//! (both halves are `Clone`; `recv` unblocks with `Err` once every sender
//! is dropped and the queue is drained).
//!
//! Implemented as a `Mutex<VecDeque>` + `Condvar` — adequate for the
//! work-queue fan-out patterns in this repo, with none of crossbeam's
//! lock-free performance. The API shape is what matters offline.

#![forbid(unsafe_code)]

/// MPMC channels (the only crossbeam module this workspace touches).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::panic::Location;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
        /// Channel name for the wait-for deadlock detector and its
        /// diagnostics: the `unbounded_named` name, or the creation
        /// site's `file:line` — the same identity gaugelint's static
        /// wait-for graph uses, so runtime registrations line up with
        /// static edges.
        name: String,
    }

    /// Registers the current thread with the wait-for detector the first
    /// time a receive actually blocks; unregisters on drop (item,
    /// disconnect, or timeout — any way out of the blocking loop).
    #[cfg(feature = "wait-for-check")]
    struct WaitReg<'a> {
        name: &'a str,
        site: &'static Location<'static>,
        armed: bool,
    }

    #[cfg(feature = "wait-for-check")]
    impl<'a> WaitReg<'a> {
        fn new(name: &'a str, site: &'static Location<'static>) -> WaitReg<'a> {
            WaitReg {
                name,
                site,
                armed: false,
            }
        }

        /// About to block: check for a wait cycle (panics before
        /// blocking) and register. Idempotent across the recv loop's
        /// spurious wakeups.
        fn arm(&mut self) {
            if !self.armed {
                parking_lot::chanwait::before_recv(self.name, self.site);
                self.armed = true;
            }
        }
    }

    #[cfg(feature = "wait-for-check")]
    impl Drop for WaitReg<'_> {
        fn drop(&mut self) {
            if self.armed {
                parking_lot::chanwait::after_recv(self.name);
            }
        }
    }

    /// No-op twin so the recv paths read identically without the feature.
    #[cfg(not(feature = "wait-for-check"))]
    struct WaitReg<'a>(std::marker::PhantomData<&'a str>);

    #[cfg(not(feature = "wait-for-check"))]
    impl<'a> WaitReg<'a> {
        fn new(_name: &'a str, _site: &'static Location<'static>) -> WaitReg<'a> {
            WaitReg(std::marker::PhantomData)
        }

        fn arm(&mut self) {}
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is drained
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel momentarily empty but senders remain.
        Empty,
        /// Channel drained and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline elapsed with the channel still empty.
        Timeout,
        /// Channel drained and all senders dropped.
        Disconnected,
    }

    /// Producer half; cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Consumer half; cloning adds another consumer competing for items.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel. The channel's identity for the
    /// wait-for deadlock detector is the caller's `file:line` — the same
    /// default name gaugelint's channel inventory assigns.
    #[track_caller]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let site = Location::caller();
        with_name(format!("{}:{}", site.file(), site.line()))
    }

    /// Create an unbounded MPMC channel with an explicit name (matching
    /// a `// gaugelint: channel-pair(name)` annotation at the creation
    /// site, so static wait-for edges and runtime registrations agree).
    pub fn unbounded_named<T>(name: &str) -> (Sender<T>, Receiver<T>) {
        with_name(name.to_string())
    }

    fn with_name<T>(name: String) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
            name,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`. Never blocks (unbounded); errs only if every
        /// receiver has been dropped — which this shim cannot observe
        /// cheaply, so like crossbeam's unbounded channel it simply
        /// enqueues (the value is dropped with the queue).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Wake every blocked receiver so they can observe EOF.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an item arrives or all senders disconnect. With
        /// `wait-for-check`, a receive that is about to block first
        /// checks the channel wait-for graph and panics (before
        /// blocking) if another blocked receive closes a wait cycle.
        #[track_caller]
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut reg = WaitReg::new(&self.shared.name, Location::caller());
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                reg.arm();
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(item) = state.items.pop_front() {
                Ok(item)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking receive with a deadline. Participates in wait-for
        /// checking like [`Receiver::recv`]: a bounded wait still
        /// serialises a deadlocked pipeline for the full timeout, so
        /// flagging the cycle eagerly is the useful behaviour.
        #[track_caller]
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let mut reg = WaitReg::new(&self.shared.name, Location::caller());
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                reg.arm();
                let (s, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = s;
            }
        }

        /// Iterator that drains the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    /// Blocking iterator over received items.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_single_consumer() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn competing_consumers_partition_the_queue() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || rx.iter().count())
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn timeout_fires_on_empty_channel() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn try_recv_distinguishes_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
