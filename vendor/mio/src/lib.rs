//! Offline stand-in for the subset of a readiness event loop this
//! workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal mio-style reactor: [`Token`]/[`Interest`]/[`Event`] types, a
//! [`Reactor`] trait, and two implementations behind it —
//!
//! * [`EpollReactor`] wraps the real `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait` syscalls (level-triggered) on Linux. All `unsafe` in the
//!   workspace lives here, behind a safe registration API taking
//!   [`RawFd`]s; the consuming crates keep `#![forbid(unsafe_code)]`.
//! * [`SimReactor`] is a deterministic in-process reactor for tests and
//!   replay: sources are [`SimSource`] readiness probes, and the delivery
//!   order of ready events within a poll round is a pure function of the
//!   seed and the round number (sorted by token, rotated by a SplitMix64
//!   draw). A running FNV-1a digest over the delivered event stream makes
//!   "same seed ⇒ same event order" directly assertable.
//!
//! Also provided: [`TimerWheel`] (deterministic deadline set on whatever
//! clock the caller runs — wall milliseconds under epoll, logical ticks
//! under sim) and [`Parker`], a condvar wrapper the sim loop sleeps on so
//! in-process clients can wake it without busy-waiting.
//!
//! Nothing here reproduces upstream mio's API surface beyond what the
//! workspace calls; edge-triggered modes, OS pipes/UDP, and waker fds are
//! intentionally out of scope.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[cfg(target_os = "linux")]
use std::os::fd::RawFd;
#[cfg(not(target_os = "linux"))]
/// Raw file descriptor alias on non-Linux hosts (epoll unavailable there;
/// the type exists so signatures compile).
pub type RawFd = i32;

/// Identifies one registered event source. The reactor hands tokens back
/// in [`Event`]s; the caller maps them to connection state machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest mask. Combine with [`Interest::with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interested in read readiness (data or EOF available).
    pub const READABLE: Interest = Interest(0b01);
    /// Interested in write readiness (send buffer has room).
    pub const WRITABLE: Interest = Interest(0b10);
    /// Interested in nothing (source stays registered but silent; hangups
    /// may still be reported by the OS reactor).
    pub const NONE: Interest = Interest(0b00);

    /// Union of two interests (a renamed `|`, kept method-shaped for chaining).
    #[must_use]
    pub fn with(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Does this interest include read readiness?
    pub fn is_readable(self) -> bool {
        self.0 & 0b01 != 0
    }

    /// Does this interest include write readiness?
    pub fn is_writable(self) -> bool {
        self.0 & 0b10 != 0
    }

    /// Is this the empty interest?
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// One delivered readiness event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Token the source was registered under.
    pub token: Token,
    /// Read readiness (includes EOF/hangup: a read will not block).
    pub readable: bool,
    /// Write readiness.
    pub writable: bool,
}

/// Reusable event buffer filled by [`Reactor::poll`].
#[derive(Debug, Default)]
pub struct Events {
    buf: Vec<Event>,
}

impl Events {
    /// New empty buffer.
    pub fn new() -> Events {
        Events { buf: Vec::new() }
    }

    /// Iterate the events delivered by the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.buf.iter()
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when the last poll delivered nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn clear(&mut self) {
        self.buf.clear();
    }

    fn push(&mut self, ev: Event) {
        self.buf.push(ev);
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

/// Readiness polling, implemented by [`EpollReactor`] (kernel) and
/// [`SimReactor`] (deterministic in-process). Registration is inherent on
/// each implementation because the source type differs (fds vs
/// [`SimSource`]s); everything after registration goes through here.
pub trait Reactor {
    /// Collect ready events into `events` (cleared first), waiting at most
    /// `timeout` for the first one. Returns the number delivered.
    fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize>;

    /// Replace the interest mask of a registered source.
    fn set_interest(&mut self, token: Token, interest: Interest) -> io::Result<()>;

    /// Remove a source from the reactor.
    fn deregister(&mut self, token: Token) -> io::Result<()>;
}

/// SplitMix64 mix — the workspace-standard seed expander (matches
/// `playstore::chaos::splitmix64`; duplicated here so the shim stays
/// dependency-free).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------------
// Epoll reactor (Linux)
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    use std::os::raw::c_int;

    // Matches the kernel ABI: packed on x86-64, naturally aligned elsewhere.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0x80000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Re-issue `listen(2)` on an already-listening socket to widen its
/// accept backlog (std's `TcpListener::bind` hard-codes 128). The kernel
/// treats a second `listen` as a pure backlog update; failure leaves the
/// old backlog in place, so the result is ignored.
#[cfg(unix)]
pub fn widen_backlog(fd: RawFd, backlog: i32) {
    use std::os::raw::c_int;
    extern "C" {
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }
    unsafe {
        let _ = listen(fd, backlog);
    }
}

/// No-op on hosts without BSD sockets semantics.
#[cfg(not(unix))]
pub fn widen_backlog(_fd: RawFd, _backlog: i32) {}

#[cfg(target_os = "linux")]
mod net_sys {
    use std::os::raw::{c_int, c_void};

    pub const AF_INET: c_int = 2;
    pub const AF_INET6: c_int = 10;
    pub const SOCK_STREAM: c_int = 1;
    pub const SOCK_NONBLOCK: c_int = 0o4000;
    pub const SOCK_CLOEXEC: c_int = 0o2000000;
    pub const EINPROGRESS: i32 = 115;
    pub const SOL_SOCKET: c_int = 1;
    pub const SO_ERROR: c_int = 4;
    pub const IPPROTO_TCP: c_int = 6;
    pub const TCP_NODELAY: c_int = 1;

    // Kernel sockaddr layouts (both fields past `family` in network byte
    // order where applicable).
    #[repr(C)]
    pub struct SockAddrIn {
        pub family: u16,
        pub port: u16,
        pub addr: [u8; 4],
        pub zero: [u8; 8],
    }

    #[repr(C)]
    pub struct SockAddrIn6 {
        pub family: u16,
        pub port: u16,
        pub flowinfo: u32,
        pub addr: [u8; 16],
        pub scope_id: u32,
    }

    extern "C" {
        pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        pub fn connect(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        pub fn getsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *mut c_void,
            optlen: *mut u32,
        ) -> c_int;
        pub fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
    }
}

/// Open a TCP connection to `addr` without ever blocking on the
/// three-way handshake: the socket is created `SOCK_NONBLOCK` and
/// `connect(2)` returns immediately with `EINPROGRESS`. Register the fd
/// with write interest; when the reactor first reports it writable, call
/// [`take_socket_error`] to learn whether the handshake succeeded. The
/// returned `TcpStream` stays non-blocking for its whole life (it is
/// never switched back), and `TCP_NODELAY` is pre-set to match the
/// blocking dial path.
#[cfg(target_os = "linux")]
pub fn tcp_connect_nonblocking(addr: std::net::SocketAddr) -> io::Result<std::net::TcpStream> {
    use std::os::fd::FromRawFd;
    use std::os::raw::{c_int, c_void};

    let domain = match addr {
        std::net::SocketAddr::V4(_) => net_sys::AF_INET,
        std::net::SocketAddr::V6(_) => net_sys::AF_INET6,
    };
    // Safety: socket() touches no caller memory.
    let fd = unsafe {
        net_sys::socket(
            domain,
            net_sys::SOCK_STREAM | net_sys::SOCK_NONBLOCK | net_sys::SOCK_CLOEXEC,
            0,
        )
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Safety: from_raw_fd takes sole ownership of a valid, fresh fd; on
    // any error below the stream's Drop closes it exactly once.
    let stream = unsafe { std::net::TcpStream::from_raw_fd(fd) };
    let one: c_int = 1;
    // Safety: `one` outlives the call; the kernel copies 4 bytes from it.
    let rc = unsafe {
        net_sys::setsockopt(
            fd,
            net_sys::IPPROTO_TCP,
            net_sys::TCP_NODELAY,
            std::ptr::addr_of!(one).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc = match addr {
        std::net::SocketAddr::V4(v4) => {
            let sa = net_sys::SockAddrIn {
                family: net_sys::AF_INET as u16,
                port: v4.port().to_be(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            // Safety: `sa` is a properly-initialised sockaddr_in that
            // outlives the call; the kernel copies it.
            unsafe {
                net_sys::connect(
                    fd,
                    std::ptr::addr_of!(sa).cast::<c_void>(),
                    std::mem::size_of::<net_sys::SockAddrIn>() as u32,
                )
            }
        }
        std::net::SocketAddr::V6(v6) => {
            let sa = net_sys::SockAddrIn6 {
                family: net_sys::AF_INET6 as u16,
                port: v6.port().to_be(),
                flowinfo: v6.flowinfo().to_be(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            // Safety: as above, for sockaddr_in6.
            unsafe {
                net_sys::connect(
                    fd,
                    std::ptr::addr_of!(sa).cast::<c_void>(),
                    std::mem::size_of::<net_sys::SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(net_sys::EINPROGRESS) {
            return Err(err);
        }
    }
    Ok(stream)
}

/// Unsupported off Linux — callers fall back to the blocking dial path
/// (mirrors [`EpollReactor::new`], which fails the same way there).
#[cfg(not(target_os = "linux"))]
pub fn tcp_connect_nonblocking(_addr: std::net::SocketAddr) -> io::Result<std::net::TcpStream> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "non-blocking connect is only available on Linux",
    ))
}

/// Drain the pending socket error (`SO_ERROR`): `Ok(())` when the
/// in-flight [`tcp_connect_nonblocking`] handshake succeeded, the typed
/// OS error (e.g. `ECONNREFUSED`) when it failed. Call once when the
/// reactor first reports the connecting socket writable.
#[cfg(target_os = "linux")]
pub fn take_socket_error(fd: RawFd) -> io::Result<()> {
    use std::os::raw::c_void;
    let mut err: i32 = 0;
    let mut len: u32 = std::mem::size_of::<i32>() as u32;
    // Safety: `err`/`len` outlive the call; the kernel writes 4 bytes.
    let rc = unsafe {
        net_sys::getsockopt(
            fd,
            net_sys::SOL_SOCKET,
            net_sys::SO_ERROR,
            std::ptr::addr_of_mut!(err).cast::<c_void>(),
            &mut len,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// Unsupported off Linux (see [`tcp_connect_nonblocking`]).
#[cfg(not(target_os = "linux"))]
pub fn take_socket_error(_fd: RawFd) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "non-blocking connect is only available on Linux",
    ))
}

/// Kernel epoll reactor (level-triggered). Linux-only; construction fails
/// with [`io::ErrorKind::Unsupported`] elsewhere so callers can fall back
/// to the threaded path or [`SimReactor`].
#[derive(Debug)]
pub struct EpollReactor {
    #[cfg(target_os = "linux")]
    epfd: i32,
    #[cfg(target_os = "linux")]
    fds: BTreeMap<usize, RawFd>,
    #[cfg(not(target_os = "linux"))]
    _nothing: (),
}

#[cfg(target_os = "linux")]
impl EpollReactor {
    /// Open an epoll instance.
    pub fn new() -> io::Result<EpollReactor> {
        // Safety: epoll_create1 touches no caller memory.
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollReactor {
            epfd,
            fds: BTreeMap::new(),
        })
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if interest.is_readable() {
            m |= sys::EPOLLIN;
        }
        if interest.is_writable() {
            m |= sys::EPOLLOUT;
        }
        m
    }

    fn ctl(&self, op: std::os::raw::c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: Self::mask(interest),
            data: token.0 as u64,
        };
        // Safety: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register a non-blocking fd under `token`. The fd must stay open
    /// until [`Reactor::deregister`] (the reactor does not own it).
    pub fn register_fd(&mut self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)?;
        self.fds.insert(token.0, fd);
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Reactor for EpollReactor {
    fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; 512];
        let timeout_ms: std::os::raw::c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = loop {
            // Safety: `buf` is a valid writable array of `buf.len()` events.
            let rc = unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for slot in buf.iter().take(n) {
            let raw = { slot.events };
            let data = { slot.data };
            let hangup = raw & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            events.push(Event {
                token: Token(data as usize),
                // A hangup means a read will not block (it returns 0/err),
                // so fold it into readability like level-triggered epoll
                // consumers conventionally do.
                readable: raw & sys::EPOLLIN != 0 || hangup,
                writable: raw & sys::EPOLLOUT != 0,
            });
        }
        Ok(events.len())
    }

    fn set_interest(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        let fd = *self
            .fds
            .get(&token.0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "token not registered"))?;
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    fn deregister(&mut self, token: Token) -> io::Result<()> {
        let fd = self
            .fds
            .remove(&token.0)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "token not registered"))?;
        self.ctl(sys::EPOLL_CTL_DEL, fd, token, Interest::NONE)
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollReactor {
    fn drop(&mut self) {
        // Safety: epfd was returned by epoll_create1 and is closed once.
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl EpollReactor {
    /// Epoll is unavailable off Linux; callers fall back to sim/threaded.
    pub fn new() -> io::Result<EpollReactor> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is only available on Linux",
        ))
    }

    /// Unreachable off Linux (`new` never succeeds).
    pub fn register_fd(&mut self, _fd: RawFd, _token: Token, _interest: Interest) -> io::Result<()> {
        unreachable!("EpollReactor cannot be constructed off Linux")
    }
}

#[cfg(not(target_os = "linux"))]
impl Reactor for EpollReactor {
    fn poll(&mut self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
        unreachable!("EpollReactor cannot be constructed off Linux")
    }
    fn set_interest(&mut self, _token: Token, _interest: Interest) -> io::Result<()> {
        unreachable!("EpollReactor cannot be constructed off Linux")
    }
    fn deregister(&mut self, _token: Token) -> io::Result<()> {
        unreachable!("EpollReactor cannot be constructed off Linux")
    }
}

// ---------------------------------------------------------------------------
// Parker
// ---------------------------------------------------------------------------

/// Wakeup latch the sim event loop sleeps on between polls. In-process
/// clients call [`Parker::notify`] after writing to a sim pipe so the loop
/// re-polls immediately instead of spinning or sleeping a fixed quantum.
#[derive(Debug, Default)]
pub struct Parker {
    seq: Mutex<u64>,
    cv: Condvar,
}

impl Parker {
    /// New parker, wrapped for sharing between the loop and clients.
    pub fn new() -> Arc<Parker> {
        Arc::new(Parker::default())
    }

    /// Wake the parked loop (idempotent, never blocks).
    pub fn notify(&self) {
        let mut seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        *seq = seq.wrapping_add(1);
        self.cv.notify_all();
    }

    /// Park until notified or `timeout` elapses. Returns immediately if a
    /// notify landed since the caller last observed the sequence.
    pub fn wait(&self, timeout: Duration) {
        let seq = self.seq.lock().unwrap_or_else(|e| e.into_inner());
        let before = *seq;
        let _ = self
            .cv
            .wait_timeout_while(seq, timeout, |s| *s == before)
            .map(|(g, _)| drop(g));
    }
}

// ---------------------------------------------------------------------------
// Sim reactor
// ---------------------------------------------------------------------------

/// Readiness probe for a simulated source. Implementations inspect their
/// buffers level-triggered-style: report readable while data (or EOF) is
/// pending, writable while the peer can accept bytes.
pub trait SimSource: Send + Sync {
    /// Current readiness of this source.
    fn readiness(&self) -> Interest;
}

/// Deterministic in-process reactor. Event delivery order within a poll
/// round is a pure function of `(seed, round)`: ready tokens are sorted
/// ascending, then rotated by `splitmix64(seed ^ round) % n`. A running
/// FNV-1a digest over `(round, token, readable, writable)` captures the
/// whole delivered stream for replay assertions.
pub struct SimReactor {
    seed: u64,
    round: u64,
    sources: BTreeMap<usize, (Arc<dyn SimSource>, Interest)>,
    parker: Arc<Parker>,
    digest: Arc<AtomicU64>,
}

impl std::fmt::Debug for SimReactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimReactor")
            .field("seed", &self.seed)
            .field("round", &self.round)
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl SimReactor {
    /// New sim reactor with a fresh parker.
    pub fn new(seed: u64) -> SimReactor {
        SimReactor::with_parker(seed, Parker::new())
    }

    /// New sim reactor sleeping on a caller-provided parker (shared with
    /// the in-process network so writers can wake the loop).
    pub fn with_parker(seed: u64, parker: Arc<Parker>) -> SimReactor {
        SimReactor {
            seed,
            round: 0,
            sources: BTreeMap::new(),
            parker,
            digest: Arc::new(AtomicU64::new(FNV_OFFSET)),
        }
    }

    /// The parker this reactor sleeps on when a poll finds nothing ready.
    pub fn parker(&self) -> Arc<Parker> {
        Arc::clone(&self.parker)
    }

    /// Shared handle to the running event-log digest (readable while the
    /// loop thread owns the reactor).
    pub fn digest_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.digest)
    }

    /// Register a simulated source under `token`.
    pub fn register(&mut self, token: Token, source: Arc<dyn SimSource>, interest: Interest) {
        self.sources.insert(token.0, (source, interest));
    }

    /// Number of poll rounds that delivered at least one event.
    pub fn rounds(&self) -> u64 {
        self.round
    }
}

impl Reactor for SimReactor {
    fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut ready: Vec<Event> = Vec::new();
        for (&tok, (source, interest)) in &self.sources {
            if interest.is_none() {
                continue;
            }
            let r = source.readiness();
            let readable = interest.is_readable() && r.is_readable();
            let writable = interest.is_writable() && r.is_writable();
            if readable || writable {
                ready.push(Event {
                    token: Token(tok),
                    readable,
                    writable,
                });
            }
        }
        if ready.is_empty() {
            if let Some(d) = timeout {
                if !d.is_zero() {
                    self.parker.wait(d);
                }
            }
            return Ok(0);
        }
        // BTreeMap iteration already yields tokens ascending; the rotation
        // below is the only seed-dependent freedom, making the delivery
        // order a pure function of (seed, round).
        self.round += 1;
        let n = ready.len();
        let rot = (splitmix64(self.seed ^ self.round) as usize) % n;
        ready.rotate_left(rot);
        let mut h = self.digest.load(Ordering::SeqCst);
        for ev in &ready {
            h = fnv_fold(h, &self.round.to_le_bytes());
            h = fnv_fold(h, &(ev.token.0 as u64).to_le_bytes());
            h = fnv_fold(h, &[u8::from(ev.readable), u8::from(ev.writable)]);
            events.push(*ev);
        }
        self.digest.store(h, Ordering::SeqCst);
        Ok(events.len())
    }

    fn set_interest(&mut self, token: Token, interest: Interest) -> io::Result<()> {
        match self.sources.get_mut(&token.0) {
            Some(slot) => {
                slot.1 = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "token not registered",
            )),
        }
    }

    fn deregister(&mut self, token: Token) -> io::Result<()> {
        match self.sources.remove(&token.0) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                "token not registered",
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Deterministic deadline set keyed on whatever clock the owning loop
/// runs: wall milliseconds under epoll, logical ticks under sim. One
/// deadline per token (re-arming replaces); expiry order is
/// (deadline, token) ascending, so identical histories expire identically.
#[derive(Debug, Default)]
pub struct TimerWheel {
    deadlines: BTreeSet<(u64, usize)>,
    by_token: BTreeMap<usize, u64>,
}

impl TimerWheel {
    /// New empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Arm (or re-arm) `token` to fire at `deadline`.
    pub fn arm(&mut self, token: Token, deadline: u64) {
        if let Some(old) = self.by_token.insert(token.0, deadline) {
            self.deadlines.remove(&(old, token.0));
        }
        self.deadlines.insert((deadline, token.0));
    }

    /// Cancel `token`'s deadline if armed.
    pub fn cancel(&mut self, token: Token) {
        if let Some(old) = self.by_token.remove(&token.0) {
            self.deadlines.remove(&(old, token.0));
        }
    }

    /// Earliest pending deadline, if any.
    pub fn next_deadline(&self) -> Option<u64> {
        self.deadlines.iter().next().map(|&(d, _)| d)
    }

    /// Pop every token whose deadline is `<= now`, in deterministic
    /// (deadline, token) order.
    pub fn expire(&mut self, now: u64) -> Vec<Token> {
        let mut fired = Vec::new();
        while let Some(&(d, t)) = self.deadlines.iter().next() {
            if d > now {
                break;
            }
            self.deadlines.remove(&(d, t));
            self.by_token.remove(&t);
            fired.push(Token(t));
        }
        fired
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.deadlines.len()
    }

    /// True when no timers are armed.
    pub fn is_empty(&self) -> bool {
        self.deadlines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Scripted(Mutex<Vec<Interest>>);

    impl SimSource for Scripted {
        fn readiness(&self) -> Interest {
            let mut s = self.0.lock().unwrap();
            if s.len() > 1 {
                s.remove(0)
            } else {
                s[0]
            }
        }
    }

    fn always(interest: Interest) -> Arc<dyn SimSource> {
        Arc::new(Scripted(Mutex::new(vec![interest])))
    }

    fn run_rounds(seed: u64, rounds: usize) -> (Vec<Vec<usize>>, u64) {
        let mut r = SimReactor::new(seed);
        for t in 0..4usize {
            r.register(Token(t), always(Interest::READABLE), Interest::READABLE);
        }
        let mut evs = Events::new();
        let mut orders = Vec::new();
        for _ in 0..rounds {
            r.poll(&mut evs, None).unwrap();
            orders.push(evs.iter().map(|e| e.token.0).collect());
        }
        let digest = r.digest_handle().load(Ordering::SeqCst);
        (orders, digest)
    }

    #[test]
    fn sim_delivery_order_is_seed_deterministic() {
        let (a, da) = run_rounds(7, 5);
        let (b, db) = run_rounds(7, 5);
        assert_eq!(a, b, "same seed must replay the same delivery order");
        assert_eq!(da, db, "same seed must produce the same event digest");
        let (c, dc) = run_rounds(8, 5);
        // Orders are rotations of sorted tokens; different seeds rotate
        // differently somewhere in 5 rounds of 4 sources.
        assert!(a != c || da != dc, "distinct seeds should diverge");
    }

    #[test]
    fn sim_rotation_covers_all_sources() {
        let (orders, _) = run_rounds(3, 8);
        for round in &orders {
            let mut sorted = round.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "every ready source delivered");
        }
    }

    #[test]
    fn sim_interest_mask_filters_events() {
        let mut r = SimReactor::new(1);
        r.register(Token(0), always(Interest::READABLE), Interest::NONE);
        r.register(Token(1), always(Interest::READABLE), Interest::READABLE);
        let mut evs = Events::new();
        r.poll(&mut evs, None).unwrap();
        let tokens: Vec<usize> = evs.iter().map(|e| e.token.0).collect();
        assert_eq!(tokens, vec![1], "interest NONE suppresses delivery");
        r.set_interest(Token(0), Interest::READABLE).unwrap();
        r.poll(&mut evs, None).unwrap();
        assert_eq!(evs.len(), 2);
        r.deregister(Token(1)).unwrap();
        r.poll(&mut evs, None).unwrap();
        let tokens: Vec<usize> = evs.iter().map(|e| e.token.0).collect();
        assert_eq!(tokens, vec![0]);
    }

    #[test]
    fn timer_wheel_expires_in_deadline_token_order() {
        let mut w = TimerWheel::new();
        w.arm(Token(5), 30);
        w.arm(Token(1), 10);
        w.arm(Token(2), 10);
        w.arm(Token(9), 99);
        w.arm(Token(5), 8); // re-arm replaces
        assert_eq!(w.next_deadline(), Some(8));
        let fired = w.expire(10);
        assert_eq!(fired, vec![Token(5), Token(1), Token(2)]);
        w.cancel(Token(9));
        assert!(w.expire(1000).is_empty());
        assert!(w.is_empty());
    }

    #[test]
    fn parker_wakes_on_notify() {
        let p = Parker::new();
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || {
            p2.wait(Duration::from_secs(5));
        });
        std::thread::sleep(Duration::from_millis(10));
        p.notify();
        h.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn nonblocking_connect_completes_through_the_reactor() {
        use std::io::{Read, Write};
        use std::net::TcpListener;
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = tcp_connect_nonblocking(listener.local_addr().unwrap()).unwrap();
        let mut r = EpollReactor::new().unwrap();
        r.register_fd(stream.as_raw_fd(), Token(7), Interest::WRITABLE)
            .unwrap();
        let mut evs = Events::new();
        let n = r.poll(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert!(n >= 1, "connecting socket must become writable");
        let ev = evs.iter().next().unwrap();
        assert_eq!(ev.token, Token(7));
        assert!(ev.writable);
        take_socket_error(stream.as_raw_fd()).unwrap();
        // The stream is a live non-blocking socket: bytes round-trip.
        let (mut srv, _) = listener.accept().unwrap();
        let mut w = stream.try_clone().unwrap();
        w.write_all(b"hi").unwrap();
        let mut buf = [0u8; 2];
        srv.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hi");
        r.deregister(Token(7)).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_listener_readable_on_connect() {
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let mut r = EpollReactor::new().unwrap();
        r.register_fd(listener.as_raw_fd(), Token(0), Interest::READABLE)
            .unwrap();
        let mut evs = Events::new();
        let n = r.poll(&mut evs, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "no pending connection yet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = r.poll(&mut evs, Some(Duration::from_secs(2))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(evs.iter().next().unwrap().token, Token(0));
        assert!(evs.iter().next().unwrap().readable);
        r.deregister(Token(0)).unwrap();
    }
}
