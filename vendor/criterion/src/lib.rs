//! Offline stand-in for the subset of `criterion` 0.5 this workspace
//! uses: `Criterion`, `benchmark_group`, `bench_function`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros.
//!
//! It times each benchmark closure over `sample_size` iterations with
//! `std::time::Instant` and prints a one-line median + throughput — no
//! warm-up, outlier rejection, or HTML reports. Good enough to keep the
//! bench targets compiling, runnable, and indicative offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, once per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = f();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Run one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_one(&id.into(), self.sample_size, None, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named group sharing throughput/sample-size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the group's sample size.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    /// Close the group (kept for API parity; reporting is per-bench).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>10.1} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>10.1} elem/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{id:<40} median {median:>12.3?} ({} samples){rate}", samples.len());
}

/// Define a named benchmark suite (both the `name=/config=/targets=` form
/// and the positional `criterion_group!(name, target, ..)` form).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the listed suites. Accepts and ignores criterion's
/// CLI flags (`--bench`, filters) so `cargo bench`'s harness calls work.
#[macro_export]
macro_rules! criterion_main {
    ($($suite:path),+ $(,)?) => {
        fn main() {
            $( $suite(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure_sample_size_times() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 5);
    }

    #[test]
    fn groups_honour_overrides() {
        let mut calls = 0u32;
        let mut c = Criterion::default().sample_size(50);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| calls += 1));
        g.finish();
        assert_eq!(calls, 3);
    }

    criterion_group! {
        name = demo;
        config = Criterion::default().sample_size(2);
        targets = demo_target
    }

    fn demo_target(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| std::hint::black_box(1 + 1)));
    }

    #[test]
    fn group_macro_expands() {
        demo();
    }
}
