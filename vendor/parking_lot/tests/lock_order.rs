//! Tests for the `lock-order-check` runtime deadlock detector. The whole
//! file is gated on the feature: without it the detector does not exist
//! and guard types are plain std guards.
#![cfg(feature = "lock-order-check")]

use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

#[test]
fn feature_is_armed() {
    assert!(parking_lot::lock_order_check_enabled());
}

#[test]
fn consistent_order_is_quiet() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        handles.push(std::thread::spawn(move || {
            for _ in 0..100 {
                let ga = a.lock();
                let mut gb = b.lock();
                *gb += *ga;
            }
        }));
    }
    for h in handles {
        h.join().expect("consistent a-then-b order must not trip the detector");
    }
    assert_eq!(*b.lock(), 0);
}

#[test]
fn cycle_panics_with_both_acquisition_sites() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    // Establish the order a → b.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // Now acquire in the reverse order: the second acquisition must panic
    // (before blocking) and the message must carry both sites — the
    // acquisition being attempted and the lock already held — so both
    // point into this file.
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }))
    .expect_err("reversed order must panic");
    let msg = panic_message(err);
    assert!(msg.contains("lock order cycle"), "{msg}");
    assert!(
        msg.matches("lock_order.rs").count() >= 2,
        "both acquisition sites must be reported: {msg}"
    );
}

#[test]
fn self_relock_is_reported_as_self_deadlock() {
    let m = Mutex::new(());
    let _g = m.lock();
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _again = m.lock();
    }))
    .expect_err("re-locking a held mutex must panic, not hang");
    let msg = panic_message(err);
    assert!(msg.contains("self-deadlock"), "{msg}");
}

#[test]
fn non_lifo_release_unregisters_the_right_lock() {
    let a = Mutex::new(1);
    let b = Mutex::new(2);
    let c = Mutex::new(3);
    {
        let ga = a.lock();
        let gb = b.lock(); // order a → b
        drop(ga); // non-LIFO: a must leave the held stack, b must stay
        assert_eq!(*gb, 2);
    }
    // Both guards are gone. If the non-LIFO drop had failed to
    // unregister `a`, it would still look held here and this acquisition
    // would record the bogus edge a → c …
    let gc = c.lock();
    drop(gc);
    // … and this reverse acquisition would then (wrongly) panic. The
    // legitimate a → b edge is irrelevant: c has no recorded successors.
    let _gc = c.lock();
    let _ga = a.lock();
}

#[test]
fn rwlock_participates_in_ordering() {
    let a = RwLock::new(());
    let b = RwLock::new(());
    {
        let _ra = a.read();
        let _wb = b.write();
    }
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _rb = b.read();
        let _wa = a.write();
    }))
    .expect_err("reader/writer inversion must panic");
    let msg = panic_message(err);
    assert!(msg.contains("lock order cycle"), "{msg}");
}

#[test]
fn try_lock_orders_later_blocking_acquisitions() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    {
        // try_lock itself adds no edge, but the held lock still orders
        // the subsequent blocking acquisition: a → b.
        let _ga = a.try_lock().expect("uncontended");
        let _gb = b.lock();
    }
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }))
    .expect_err("reverse of a try_lock-established order must panic");
    assert!(panic_message(err).contains("lock order cycle"));
}
