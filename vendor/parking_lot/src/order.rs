//! Runtime lock-order (deadlock-potential) detector, enabled by the
//! `lock-order-check` feature.
//!
//! Every [`crate::Mutex`]/[`crate::RwLock`] gets a process-unique id the
//! first time it is locked. Each thread keeps a stack of the locks it
//! currently holds; a *blocking* acquisition of lock `B` while holding
//! lock `A` records the directed edge `A → B` (with the source locations
//! of both acquisitions) in a global order graph. If the new edge closes
//! a cycle, the acquiring thread panics immediately — *before* blocking —
//! with both acquisition sites in the message, so the offending pair can
//! be fixed instead of deadlocking a test run.
//!
//! Design notes:
//!
//! * Edges are only recorded for blocking acquisitions (`lock`, `read`,
//!   `write`). A successful `try_lock` cannot block, so it records the
//!   lock as held (future blocking acquisitions order against it) but
//!   adds no edge of its own.
//! * Read locks participate like write locks: two threads taking the
//!   same two `RwLock`s as readers in opposite orders is flagged even
//!   though readers alone cannot deadlock, because a write-priority
//!   implementation deadlocks that pattern as soon as a writer wedges
//!   itself between the two read acquisitions.
//! * Ids are monotonically assigned and never reused, so edges from
//!   dropped locks linger harmlessly (a dead id can never be re-acquired
//!   and thus never completes a cycle).
//! * Re-acquiring a lock the thread already holds is reported as a
//!   self-deadlock (parking_lot locks are not re-entrant).

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex as StdMutex;

/// Lazily assigned process-unique id for one lock instance.
#[derive(Debug, Default)]
pub(crate) struct LockId(AtomicUsize);

/// Ids start at 1; 0 means "not yet assigned".
static NEXT_ID: AtomicUsize = AtomicUsize::new(1);

impl LockId {
    /// Unassigned id (const so `Mutex::new` stays `const`).
    pub(crate) const fn new() -> LockId {
        LockId(AtomicUsize::new(0))
    }

    /// The id, assigning one on first use. Racing assigners agree on the
    /// winner's value.
    pub(crate) fn get(&self) -> usize {
        let current = self.0.load(Ordering::Relaxed);
        if current != 0 {
            return current;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }
}

/// One observed ordering: while `from` was held, `to` was acquired.
/// Sites are where `from` and `to` were (first) acquired when the edge
/// was recorded.
#[derive(Debug, Clone, Copy)]
struct EdgeSites {
    from_site: &'static Location<'static>,
    to_site: &'static Location<'static>,
}

#[derive(Debug, Default)]
struct OrderGraph {
    /// `from → to → first-observed sites`.
    edges: BTreeMap<usize, BTreeMap<usize, EdgeSites>>,
}

impl OrderGraph {
    /// Is `target` reachable from `start` along recorded edges?
    fn reaches(&self, start: usize, target: usize) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![start];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(&n) {
                stack.extend(next.keys().copied());
            }
        }
        false
    }
}

static GRAPH: StdMutex<Option<OrderGraph>> = StdMutex::new(None);

thread_local! {
    /// Locks this thread currently holds, with their acquisition sites.
    static HELD: RefCell<Vec<(usize, &'static Location<'static>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Called before a blocking acquisition of `id` at `site`. Records the
/// edges `held → id` and panics if any of them closes a cycle.
///
/// `reentrant_ok` is set for shared (read) acquisitions: re-reading a
/// lock this thread already holds is served by the std implementation, so
/// it is not reported as a self-deadlock (exclusive re-acquisition is).
pub(crate) fn before_blocking_acquire(
    id: usize,
    site: &'static Location<'static>,
    reentrant_ok: bool,
) {
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        if let Some(&(_, prior)) = held.iter().find(|&&(h, _)| h == id) {
            if reentrant_ok {
                return;
            }
            panic!(
                "lock-order-check: self-deadlock: lock #{id} re-acquired at \
                 {site} while already held by this thread (acquired at {prior})"
            );
        }
        // The graph mutex is poisoned if a previous violation panicked
        // while holding it; recover the inner state — the detector must
        // keep working for the rest of the process.
        let mut graph = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
        let graph = graph.get_or_insert_with(OrderGraph::default);
        for &(from, from_site) in held.iter() {
            graph
                .edges
                .entry(from)
                .or_default()
                .entry(id)
                .or_insert(EdgeSites {
                    from_site,
                    to_site: site,
                });
        }
        // A cycle exists iff the lock being acquired already reaches one
        // of the held locks: held → id (the new edges) → … → held.
        for &(back_to, back_site) in held.iter() {
            if !graph.reaches(id, back_to) {
                continue;
            }
            // The first hop of the return path carries the conflicting
            // prior order: the recorded edge out of `id` that leads back
            // to the held lock.
            let conflict = graph
                .edges
                .get(&id)
                .and_then(|m| {
                    m.iter()
                        .find(|(mid, _)| **mid == back_to || graph.reaches(**mid, back_to))
                })
                .map(|(mid, e)| {
                    format!(
                        " (conflicting prior order: while lock #{id} was held \
                         (acquired at {}), lock #{mid} was acquired at {})",
                        e.from_site, e.to_site
                    )
                })
                .unwrap_or_default();
            panic!(
                "lock-order-check: lock order cycle: acquiring lock #{id} at {site} \
                 while holding lock #{back_to} acquired at {back_site}{conflict}"
            );
        }
    });
}

/// Called after any successful acquisition (blocking or `try_lock`).
pub(crate) fn acquired(id: usize, site: &'static Location<'static>) {
    // `try_with`: guards may be dropped (and locks re-taken) during TLS
    // teardown, when the HELD cell is gone; the detector just stands down.
    let _ = HELD.try_with(|held| held.borrow_mut().push((id, site)));
}

/// Called when a guard drops. Removes the most recent entry for `id`
/// (guards need not drop in LIFO order).
pub(crate) fn released(id: usize) {
    let _ = HELD.try_with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(h, _)| h == id) {
            held.remove(pos);
        }
    });
}
