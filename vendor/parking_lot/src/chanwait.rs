//! Channel wait-for deadlock detector, the send/recv sibling of
//! [`crate::order`] (enabled by the same `lock-order-check` feature).
//!
//! Lock cycles are observable at runtime because one thread *holds* A
//! while acquiring B. Channel cycles are not: a thread blocked in
//! `recv()` holds nothing — the dependency "my recv on X completes only
//! after someone's send, and that someone is blocked on Y" lives in the
//! *code*, not in any runtime state. So this detector takes the static
//! half from gaugelint's channel wait-for graph (DESIGN.md §15): a JSON
//! artifact with one edge `from → to` whenever some function can send on
//! `from` while its completion depends on receiving from `to`.
//!
//! At runtime each thread registers the channel it is *about to block*
//! receiving on. Before blocking on channel `X`, the detector checks
//! every other blocked thread's channel `W`: if the static graph says
//! `X` reaches `W` *and* `W` reaches `X`, the two recvs can each be
//! waiting for a send the other thread would perform — a wait cycle —
//! and the acquiring thread panics with both sites before blocking,
//! exactly like the lock detector.
//!
//! The static edges load from the file named by the
//! `GAUGENN_WAITFOR_GRAPH` environment variable on first use (gaugelint
//! emits it via `--waitfor`), and tests can wire edges directly with
//! [`add_edge`] / [`load_graph_str`].

use std::collections::{BTreeMap, BTreeSet};
use std::panic::Location;
use std::sync::Mutex as StdMutex;
use std::thread::ThreadId;

#[derive(Debug, Default)]
struct ChanWait {
    /// Static wait-for edges: `from` channel → channels it waits on.
    edges: BTreeMap<String, BTreeSet<String>>,
    /// Threads currently blocked in a receive: (thread, channel, site).
    blocked: Vec<(ThreadId, String, &'static Location<'static>)>,
    /// Has the `GAUGENN_WAITFOR_GRAPH` env var been consulted?
    env_checked: bool,
}

impl ChanWait {
    /// Is `target` reachable from `start` along static edges?
    fn reaches(&self, start: &str, target: &str) -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack: Vec<&str> = vec![start];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = self.edges.get(n) {
                stack.extend(next.iter().map(String::as_str));
            }
        }
        false
    }

    fn load_env(&mut self) {
        if self.env_checked {
            return;
        }
        self.env_checked = true;
        let Ok(path) = std::env::var("GAUGENN_WAITFOR_GRAPH") else {
            return;
        };
        match std::fs::read_to_string(&path) {
            Ok(text) => self.load_str(&text),
            Err(e) => eprintln!("wait-for-check: cannot read {path}: {e} (edges not loaded)"),
        }
    }

    /// Parse gaugelint's wait-for JSON. The emitter writes one edge
    /// object per line, so a line scan with quoted-field extraction is a
    /// full parser for the format this crate promises to consume.
    fn load_str(&mut self, text: &str) {
        for line in text.lines() {
            let (Some(from), Some(to)) = (field(line, "from"), field(line, "to")) else {
                continue;
            };
            self.edges.entry(from).or_default().insert(to);
        }
    }
}

/// Extract `"key": "value"` from a single-line JSON fragment (escapes
/// left as written — channel names never contain them).
fn field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(rest[..rest.find('"')?].to_string())
}

static STATE: StdMutex<Option<ChanWait>> = StdMutex::new(None);

fn with_state<R>(f: impl FnOnce(&mut ChanWait) -> R) -> R {
    // Recover from poison like the lock detector: a violation panic while
    // holding the state must not disarm the detector for the process.
    let mut state = STATE.lock().unwrap_or_else(|e| e.into_inner());
    f(state.get_or_insert_with(ChanWait::default))
}

/// Add one static wait-for edge `from → to` ("a send on `from` can
/// depend on a recv from `to`"). Test wiring; production edges come from
/// the gaugelint artifact.
pub fn add_edge(from: &str, to: &str) {
    with_state(|s| {
        s.edges
            .entry(from.to_string())
            .or_default()
            .insert(to.to_string());
    });
}

/// Load static edges from a gaugelint `--waitfor` JSON string.
pub fn load_graph_str(text: &str) {
    with_state(|s| s.load_str(text));
}

/// Called by the channel implementation when the current thread is about
/// to *block* receiving on `chan` at `site`. Panics — before blocking —
/// if another thread is already blocked on a channel that the static
/// graph puts in a mutual wait cycle with `chan`.
pub fn before_recv(chan: &str, site: &'static Location<'static>) {
    let me = std::thread::current().id();
    with_state(|s| {
        s.load_env();
        for (tid, other, other_site) in &s.blocked {
            if *tid == me || other == chan {
                continue;
            }
            if s.reaches(chan, other) && s.reaches(other, chan) {
                panic!(
                    "wait-for-check: channel wait cycle: about to block receiving on \
                     `{chan}` at {site} while {tid:?} is blocked receiving on `{other}` \
                     at {other_site} (static wait-for edges close the cycle \
                     {chan} → {other} → {chan})"
                );
            }
        }
        s.blocked.push((me, chan.to_string(), site));
    });
}

/// Called when a blocked receive returns (with an item, a disconnect, or
/// a timeout). Removes the current thread's registration for `chan`.
pub fn after_recv(chan: &str) {
    let me = std::thread::current().id();
    with_state(|s| {
        if let Some(pos) = s
            .blocked
            .iter()
            .rposition(|(tid, c, _)| *tid == me && c == chan)
        {
            s.blocked.remove(pos);
        }
    });
}
