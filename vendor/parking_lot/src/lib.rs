//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: `Mutex` and `RwLock` with the poison-free API (lock methods
//! return guards directly, not `Result`s).
//!
//! Implemented over `std::sync` primitives; a poisoned std lock (a thread
//! panicked while holding it) is recovered with `into_inner` on the error,
//! matching parking_lot's behaviour of not propagating poison.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// Mutex guard (std's, re-exported under parking_lot's name).
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read lock is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the exclusive write lock is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
