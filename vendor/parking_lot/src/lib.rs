//! Offline stand-in for the subset of `parking_lot` 0.12 this workspace
//! uses: `Mutex` and `RwLock` with the poison-free API (lock methods
//! return guards directly, not `Result`s).
//!
//! Implemented over `std::sync` primitives; a poisoned std lock (a thread
//! panicked while holding it) is recovered with `into_inner` on the error,
//! matching parking_lot's behaviour of not propagating poison.
//!
//! # The `lock-order-check` feature
//!
//! With the (default-off) `lock-order-check` feature, every blocking
//! acquisition is recorded in a global lock-order graph keyed by
//! per-thread acquisition chains (see [`order`]'s module docs in the
//! source). Acquiring two locks in an order that — combined with any
//! order previously observed anywhere in the process — forms a cycle
//! panics immediately with both acquisition sites, turning a latent
//! deadlock into a deterministic test failure. The feature changes guard
//! *types* (they become wrappers that pop the held-lock stack on drop)
//! but not the API surface, so it can be flipped on for a test run
//! without touching calling code: `cargo test --features lock-order-check`.
//!
//! The same feature arms [`chanwait`], the channel wait-for detector:
//! send/recv cycles the lock graph cannot see (a blocked `recv` holds no
//! lock) are caught by combining gaugelint's static wait-for graph with
//! a registry of threads blocked in receives — see the module docs.

#![forbid(unsafe_code)]

/// Channel wait-for deadlock detection (see module docs). Public because
/// the vendored channel shim and tests feed it; armed by the same
/// `lock-order-check` feature as the lock detector.
#[cfg(feature = "lock-order-check")]
pub mod chanwait;
#[cfg(feature = "lock-order-check")]
mod order;

use std::sync::{self, TryLockError};

/// Whether this build of the crate has the lock-order detector armed.
/// Lets integration suites assert that the `lock-order-check` feature
/// actually reached the vendored crate through feature unification.
pub fn lock_order_check_enabled() -> bool {
    cfg!(feature = "lock-order-check")
}

/// Mutex guard (std's, re-exported under parking_lot's name).
#[cfg(not(feature = "lock-order-check"))]
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared read guard.
#[cfg(not(feature = "lock-order-check"))]
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard.
#[cfg(not(feature = "lock-order-check"))]
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutex guard that unregisters the lock from the order tracker on drop.
#[cfg(feature = "lock-order-check")]
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    lock_id: usize,
}

/// Shared read guard that unregisters the lock on drop.
#[cfg(feature = "lock-order-check")]
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    lock_id: usize,
}

/// Exclusive write guard that unregisters the lock on drop.
#[cfg(feature = "lock-order-check")]
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    lock_id: usize,
}

#[cfg(feature = "lock-order-check")]
mod guard_impls {
    use super::*;
    use std::ops::{Deref, DerefMut};

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }
    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            order::released(self.lock_id);
        }
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }
    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            order::released(self.lock_id);
        }
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }
    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            order::released(self.lock_id);
        }
    }
}

/// Poison-free mutex mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order-check")]
    id: order::LockId,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "lock-order-check")]
            id: order::LockId::new(),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    #[cfg(not(feature = "lock-order-check"))]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the lock is acquired, recording the acquisition in the
    /// global lock-order graph (panics on an order cycle — see crate docs).
    #[cfg(feature = "lock-order-check")]
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = self.id.get();
        let site = std::panic::Location::caller();
        order::before_blocking_acquire(id, site, false);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        order::acquired(id, site);
        MutexGuard { inner, lock_id: id }
    }

    /// Acquire the lock if it is free right now.
    #[cfg(not(feature = "lock-order-check"))]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquire the lock if it is free right now. A successful `try_lock`
    /// cannot block, so it registers the lock as held (later blocking
    /// acquisitions order against it) without adding an order edge.
    #[cfg(feature = "lock-order-check")]
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        let id = self.id.get();
        order::acquired(id, std::panic::Location::caller());
        Some(MutexGuard { inner, lock_id: id })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lock-order-check")]
    id: order::LockId,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "lock-order-check")]
            id: order::LockId::new(),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until a shared read lock is acquired.
    #[cfg(not(feature = "lock-order-check"))]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until a shared read lock is acquired. Read acquisitions
    /// participate in order tracking like writes: reader/reader inversions
    /// deadlock for real as soon as a write-priority writer lands between
    /// them.
    #[cfg(feature = "lock-order-check")]
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let id = self.id.get();
        let site = std::panic::Location::caller();
        order::before_blocking_acquire(id, site, true);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        order::acquired(id, site);
        RwLockReadGuard { inner, lock_id: id }
    }

    /// Block until the exclusive write lock is acquired.
    #[cfg(not(feature = "lock-order-check"))]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the exclusive write lock is acquired, recording the
    /// acquisition in the global lock-order graph.
    #[cfg(feature = "lock-order-check")]
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let id = self.id.get();
        let site = std::panic::Location::caller();
        order::before_blocking_acquire(id, site, false);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        order::acquired(id, site);
        RwLockWriteGuard { inner, lock_id: id }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = Arc::new(RwLock::new(0u32));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 0);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
